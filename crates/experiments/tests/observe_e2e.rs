//! End-to-end observatory tests: a live `tuned` server scraped mid-GA
//! session, the `observe` binary's parseable `--once` output in both
//! server and journal mode, and the `regression-gate` binary against
//! the committed baseline.

use autotune_core::Algorithm;
use autotune_service::{Client, RemoteSuggestion, ServerConfig, SessionManager, SessionSpec};
use autotune_space::Configuration;
use experiments::grid::CellKey;
use experiments::journal::OutcomeJournal;
use experiments::ExperimentOutcome;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
const STUDY: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/scale005/study_results.json"
);

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "autotune-observe-e2e-{}-{tag}-{n}.{ext}",
        std::process::id()
    ))
}

fn objective(cfg: &Configuration) -> f64 {
    cfg.values().iter().map(|&v| v as f64).sum()
}

#[test]
fn observatory_end_to_end_against_live_server() {
    let manager = Arc::new(SessionManager::in_memory());
    let config = ServerConfig {
        timeseries_interval: Some(Duration::from_millis(10)),
        ..ServerConfig::default()
    };
    let server = autotune_service::TunedServer::spawn_with("127.0.0.1:0", manager, config).unwrap();
    let addr = server.local_addr().to_string();

    // A short GA session amid metric scrapes: suggest/report with
    // deliberate pauses so the sampler thread records activity.
    let mut client = Client::connect(&addr).unwrap();
    client
        .open(
            "ga",
            SessionSpec::imagecl(Algorithm::GeneticAlgorithm, 12, 7),
        )
        .unwrap();
    for step in 0..12 {
        match client.suggest("ga").unwrap() {
            RemoteSuggestion::Evaluate(cfg) => {
                client.report("ga", objective(&cfg)).unwrap();
            }
            RemoteSuggestion::Finished(_) => break,
        }
        if step % 4 == 0 {
            let scrape = client.metrics().unwrap();
            assert!(scrape.snapshot_seq > 0);
            std::thread::sleep(Duration::from_millis(15));
        }
    }

    // The sampled series is strictly monotone in both sequence number
    // and (weakly) wall-clock, and its final point reflects the work.
    std::thread::sleep(Duration::from_millis(30));
    let points = client.timeseries().unwrap();
    assert!(
        points.len() >= 2,
        "sampler produced {} points",
        points.len()
    );
    for pair in points.windows(2) {
        assert!(pair[0].snapshot_seq < pair[1].snapshot_seq);
        assert!(pair[0].unix_ms <= pair[1].unix_ms);
        assert!(pair[0].uptime_seconds <= pair[1].uptime_seconds);
    }
    let last = points.last().unwrap();
    assert!(last.gauge("engine_reports").unwrap_or(0.0) >= 12.0);

    // `observe --once` renders one parseable frame against the server.
    let output = Command::new(env!("CARGO_BIN_EXE_observe"))
        .args(["--once", "--addr", &addr])
        .output()
        .expect("observe runs");
    assert!(output.status.success(), "observe failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.starts_with("tuned observatory:"), "{stdout}");
    // Every line of the counters section is machine-readable
    // `name value`.
    let counters: Vec<(&str, u64)> = stdout
        .lines()
        .skip_while(|l| *l != "# counters")
        .skip(1)
        .take_while(|l| !l.is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next().expect("counter name");
            let value: u64 = it.next().expect("counter value").parse().expect("u64");
            assert_eq!(it.next(), None, "exactly two tokens: {l:?}");
            (name, value)
        })
        .collect();
    assert!(counters
        .iter()
        .any(|(n, v)| *n == "engine_reports" && *v >= 12));
    assert!(counters.iter().any(|(n, _)| *n == "server_requests"));
    assert!(stdout.contains("# activity"));
    assert!(stdout.contains("# search phase time"));
    assert!(stdout.contains("# knowledge base"), "{stdout}");
    assert!(stdout.contains("# search health"), "{stdout}");
    assert!(stdout.contains("diagnostics off"), "{stdout}");

    server.stop_accepting();
}

#[test]
fn observe_replays_a_study_journal() {
    let path = temp_path("journal", "jsonl");
    let mut journal = OutcomeJournal::create(&path).unwrap();
    let cell = |algorithm, sample_size| CellKey {
        algorithm,
        benchmark: "add".into(),
        architecture: "gtx_980".into(),
        sample_size,
    };
    // Clearly separated populations so the matrix shows significance.
    for rep in 0..12 {
        let outcome = |final_ms| ExperimentOutcome {
            final_ms,
            config: Configuration::from([1, 1, 1, 2, 2, 2]),
            search_samples: 25,
        };
        journal
            .record(
                &cell(Algorithm::RandomSearch, 25),
                rep,
                &outcome(2.0 + rep as f64 * 0.01),
            )
            .unwrap();
        journal
            .record(
                &cell(Algorithm::GeneticAlgorithm, 25),
                rep,
                &outcome(1.0 + rep as f64 * 0.01),
            )
            .unwrap();
    }
    drop(journal);

    let output = Command::new(env!("CARGO_BIN_EXE_observe"))
        .args(["--once", "--journal", path.to_str().unwrap()])
        .output()
        .expect("observe runs");
    assert!(output.status.success(), "observe failed: {output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(
        stdout.contains("live study monitor: 24 observations"),
        "{stdout}"
    );
    assert!(stdout.contains("CLES vs RandomSearch"), "{stdout}");
    // Fully separated populations at n=12: CLES 1.00, significant.
    assert!(stdout.contains("1.00*"), "{stdout}");
    assert!(stdout.contains("# convergence"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn observe_rejects_bad_flag_combinations() {
    let both = Command::new(env!("CARGO_BIN_EXE_observe"))
        .args(["--once"])
        .output()
        .expect("observe runs");
    assert_eq!(both.status.code(), Some(2));
    let stderr = String::from_utf8(both.stderr).unwrap();
    assert!(stderr.contains("exactly one of"));
}

#[test]
fn diagnostics_study_detects_the_committed_ground_truth() {
    // The band detectors against the committed scale-0.05 study: the
    // paper's two pathologies must be found, GA and RS must stay quiet.
    let output = Command::new(env!("CARGO_BIN_EXE_diagnostics_study"))
        .args(["--from", STUDY, "--check"])
        .output()
        .expect("diagnostics_study runs");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(output.status.success(), "{stdout}");
    assert!(
        stdout.contains("check: BO GP 100->200 dip detected"),
        "{stdout}"
    );
    assert!(
        stdout.contains("check: RF worse-than-random detected"),
        "{stdout}"
    );
    assert!(stdout.contains("check: GA stayed quiet"), "{stdout}");
    assert!(stdout.contains("check: RS stayed quiet"), "{stdout}");
    assert!(stdout.contains("check: PASS"), "{stdout}");
}

#[test]
fn regression_gate_passes_identity_and_fails_injection() {
    // Self-comparison of the committed baseline: nothing can fire.
    let pass = Command::new(env!("CARGO_BIN_EXE_regression-gate"))
        .args(["--baseline", BASELINE, "--fresh", BASELINE])
        .output()
        .expect("gate runs");
    let stdout = String::from_utf8(pass.stdout.clone()).unwrap();
    assert_eq!(pass.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("verdict PASS"), "{stdout}");
    assert!(stdout.contains("cells compared"));

    // A uniform 20% injected slowdown must trip the gate.
    let fail = Command::new(env!("CARGO_BIN_EXE_regression-gate"))
        .args([
            "--baseline",
            BASELINE,
            "--fresh",
            BASELINE,
            "--inject",
            "1.2",
        ])
        .output()
        .expect("gate runs");
    let stdout = String::from_utf8(fail.stdout.clone()).unwrap();
    assert_eq!(fail.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("SLOWDOWN"), "{stdout}");
    assert!(stdout.contains("verdict FAIL"), "{stdout}");

    // Usage errors exit 2.
    let usage = Command::new(env!("CARGO_BIN_EXE_regression-gate"))
        .args(["--baseline", BASELINE])
        .output()
        .expect("gate runs");
    assert_eq!(usage.status.code(), Some(2));
}
