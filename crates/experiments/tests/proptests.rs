//! Property-based tests for the experiment pipeline.

use autotune_core::Algorithm;
use experiments::design::{self, ExperimentDesign};
use experiments::metrics::HeatmapPanel;
use experiments::{render, seed};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scaled_designs_preserve_monotone_experiment_counts(scale in 0.001f64..1.0) {
        let d = ExperimentDesign::scaled(scale);
        let counts: Vec<usize> = design::SAMPLE_SIZES
            .iter()
            .map(|&s| d.experiments_for(s))
            .collect();
        // Experiments never increase with sample size and never go below
        // the floor.
        prop_assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(counts.iter().all(|&c| c >= d.min_experiments));
        // At most the paper's counts.
        for (c, p) in counts.iter().zip(design::PAPER_EXPERIMENTS) {
            prop_assert!(*c <= p.max(d.min_experiments));
        }
    }

    #[test]
    fn seeds_are_sensitive_to_every_coordinate(
        study in 0u64..1000,
        s in prop::sample::select(vec![25usize, 50, 100, 200, 400]),
        rep in 0usize..100,
    ) {
        let base = seed::experiment_seed(study, "GA", "Add", "Titan V", s, rep);
        prop_assert_ne!(base, seed::experiment_seed(study ^ 1, "GA", "Add", "Titan V", s, rep));
        prop_assert_ne!(base, seed::experiment_seed(study, "RS", "Add", "Titan V", s, rep));
        prop_assert_ne!(base, seed::experiment_seed(study, "GA", "Harris", "Titan V", s, rep));
        prop_assert_ne!(base, seed::experiment_seed(study, "GA", "Add", "GTX 980", s, rep));
        prop_assert_ne!(base, seed::experiment_seed(study, "GA", "Add", "Titan V", s, rep + 1));
    }

    #[test]
    fn splitmix_is_injective_on_small_ranges(a in 0u64..100_000, b in 0u64..100_000) {
        prop_assume!(a != b);
        prop_assert_ne!(seed::splitmix64(a), seed::splitmix64(b));
    }

    #[test]
    fn heatmap_csv_row_count_matches_shape(rows in 1usize..6, cols in 1usize..6) {
        let panel = HeatmapPanel {
            benchmark: "B".into(),
            architecture: "A".into(),
            rows: (0..rows).map(|i| format!("algo{i}")).collect(),
            cols: (0..cols).map(|i| 25 * (i + 1)).collect(),
            values: vec![vec![1.0; cols]; rows],
        };
        let csv = render::heatmaps_csv(std::slice::from_ref(&panel));
        prop_assert_eq!(csv.lines().count(), 1 + rows * cols);
        let text = render::heatmap(&panel, "%");
        // Header + one line per algorithm row + title.
        prop_assert_eq!(text.lines().count(), 2 + rows);
    }

    #[test]
    fn algorithm_parse_accepts_separator_variants(algo in prop::sample::select(Algorithm::ALL.to_vec())) {
        let name = algo.name();
        prop_assert_eq!(Algorithm::parse(name), Some(algo));
        prop_assert_eq!(Algorithm::parse(&name.to_lowercase()), Some(algo));
        prop_assert_eq!(Algorithm::parse(&name.replace(' ', "_")), Some(algo));
    }
}

#[test]
fn paper_total_is_stable() {
    // Regression lock on the exact footnote reproduction.
    assert_eq!(design::paper_total_samples(), 3_019_500);
}
