//! Append-only JSONL journal for study outcomes.
//!
//! Paper-scale studies run thousands of experiments over hours; losing
//! the process means losing everything accumulated in memory. This
//! journal records each `(cell, repetition)` outcome as one JSON line
//! the moment it is produced, so an interrupted study resumes by loading
//! the journal and skipping the experiments already on disk — the same
//! write-ahead JSONL discipline (and the same [`Durability`] knob) the
//! service layer's session journals use, applied to the offline
//! pipeline.
//!
//! The default is [`Durability::Sync`]: every record is `fsync`ed, so a
//! machine crash loses at most the line being written. Studies that
//! journal thousands of cheap simulated outcomes can opt into
//! [`Durability::Buffered`] — flush to the OS only — and trade a power-
//! failure window for fewer fsyncs on the hot path; a plain process
//! crash still loses nothing buffered.

use crate::grid::CellKey;
use crate::runner::ExperimentOutcome;
pub use autotune_service::journal::Durability;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One journaled experiment: the cell it belongs to, which repetition it
/// was, and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutcomeRecord {
    /// The study cell (algorithm, benchmark, architecture, sample size).
    pub key: CellKey,
    /// Repetition index within the cell.
    pub repetition: usize,
    /// The experiment's result.
    pub outcome: ExperimentOutcome,
}

/// Appends outcome records to a JSONL file, persisting each record per
/// the configured [`Durability`] before `record` returns.
#[derive(Debug)]
pub struct OutcomeJournal {
    path: PathBuf,
    file: BufWriter<File>,
    durability: Durability,
}

impl OutcomeJournal {
    /// Creates (truncating) a fresh journal with [`Durability::Sync`].
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::create_with(path, Durability::Sync)
    }

    /// Creates (truncating) a fresh journal with an explicit durability.
    pub fn create_with(path: &Path, durability: Durability) -> std::io::Result<Self> {
        Ok(OutcomeJournal {
            path: path.to_path_buf(),
            file: BufWriter::new(File::create(path)?),
            durability,
        })
    }

    /// Opens a journal for appending with [`Durability::Sync`], creating
    /// it if missing — the resume path.
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        Self::append_to_with(path, Durability::Sync)
    }

    /// Opens a journal for appending with an explicit durability,
    /// creating it if missing.
    pub fn append_to_with(path: &Path, durability: Durability) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(OutcomeJournal {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            durability,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How far each appended record is pushed toward disk.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Appends one outcome, then flushes it to the OS and — under
    /// [`Durability::Sync`] — `fsync`s it to disk.
    pub fn record(
        &mut self,
        key: &CellKey,
        repetition: usize,
        outcome: &ExperimentOutcome,
    ) -> std::io::Result<()> {
        let record = OutcomeRecord {
            key: key.clone(),
            repetition,
            outcome: outcome.clone(),
        };
        let line = serde_json::to_string(&record).map_err(std::io::Error::other)?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        if self.durability == Durability::Sync {
            self.file.get_ref().sync_data()?;
        }
        Ok(())
    }
}

/// Loads every fully-written record, grouped by cell and ordered by
/// repetition within each cell. A torn final line (crash mid-append) is
/// dropped; corruption elsewhere is an error.
pub fn load(path: &Path) -> std::io::Result<BTreeMap<CellKey, Vec<OutcomeRecord>>> {
    let reader = BufReader::new(File::open(path)?);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let mut cells: BTreeMap<CellKey, Vec<OutcomeRecord>> = BTreeMap::new();
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<OutcomeRecord>(line) {
            Ok(record) => cells.entry(record.key.clone()).or_default().push(record),
            Err(_) if i == last => break,
            Err(e) => {
                return Err(std::io::Error::other(format!(
                    "malformed outcome record on line {}: {e}",
                    i + 1
                )))
            }
        }
    }
    for records in cells.values_mut() {
        records.sort_by_key(|r| r.repetition);
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::Algorithm;
    use autotune_space::Configuration;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "autotune-outcomes-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn key(algorithm: Algorithm, sample_size: usize) -> CellKey {
        CellKey {
            algorithm,
            benchmark: "mandelbrot".into(),
            architecture: "gtx980".into(),
            sample_size,
        }
    }

    fn outcome(final_ms: f64) -> ExperimentOutcome {
        ExperimentOutcome {
            final_ms,
            config: Configuration::from([1, 1, 1, 2, 2, 2]),
            search_samples: 25,
        }
    }

    #[test]
    fn records_group_by_cell_and_sort_by_repetition() {
        let path = temp_path("group");
        let mut journal = OutcomeJournal::create(&path).unwrap();
        let a = key(Algorithm::RandomSearch, 25);
        let b = key(Algorithm::BoTpe, 50);
        journal.record(&a, 1, &outcome(2.0)).unwrap();
        journal.record(&b, 0, &outcome(3.0)).unwrap();
        journal.record(&a, 0, &outcome(1.0)).unwrap();
        drop(journal);

        let cells = load(&path).unwrap();
        assert_eq!(cells.len(), 2);
        let reps: Vec<usize> = cells[&a].iter().map(|r| r.repetition).collect();
        assert_eq!(reps, vec![0, 1]);
        assert_eq!(cells[&a][0].outcome.final_ms, 1.0);
        assert_eq!(cells[&b].len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = temp_path("resume");
        let a = key(Algorithm::RandomSearch, 25);
        {
            let mut journal = OutcomeJournal::create(&path).unwrap();
            journal.record(&a, 0, &outcome(1.0)).unwrap();
        }
        {
            let mut journal = OutcomeJournal::append_to(&path).unwrap();
            assert_eq!(journal.path(), path.as_path());
            journal.record(&a, 1, &outcome(2.0)).unwrap();
        }
        let cells = load(&path).unwrap();
        assert_eq!(cells[&a].len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_but_mid_file_corruption_errors() {
        let path = temp_path("torn");
        let a = key(Algorithm::GeneticAlgorithm, 100);
        let mut journal = OutcomeJournal::create(&path).unwrap();
        journal.record(&a, 0, &outcome(4.0)).unwrap();
        drop(journal);

        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"key\":{\"alg").unwrap(); // torn mid-write
        drop(f);
        let cells = load(&path).unwrap();
        assert_eq!(cells[&a].len(), 1);

        // Make the torn line interior by appending a valid one after it.
        let mut journal = OutcomeJournal::append_to(&path).unwrap();
        journal.record(&a, 1, &outcome(5.0)).unwrap();
        drop(journal);
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn both_durability_modes_round_trip_and_default_is_sync() {
        let a = key(Algorithm::RandomSearch, 25);
        for durability in [Durability::Sync, Durability::Buffered] {
            let path = temp_path("durability");
            let mut journal = OutcomeJournal::create_with(&path, durability).unwrap();
            assert_eq!(journal.durability(), durability);
            journal.record(&a, 0, &outcome(1.0)).unwrap();
            drop(journal);
            let mut journal = OutcomeJournal::append_to_with(&path, durability).unwrap();
            journal.record(&a, 1, &outcome(2.0)).unwrap();
            drop(journal);
            assert_eq!(load(&path).unwrap()[&a].len(), 2);
            std::fs::remove_file(&path).unwrap();
        }
        let path = temp_path("default-sync");
        let journal = OutcomeJournal::create(&path).unwrap();
        assert_eq!(journal.durability(), Durability::Sync);
        drop(journal);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_to_creates_missing_files() {
        let path = temp_path("fresh");
        let mut journal = OutcomeJournal::append_to(&path).unwrap();
        journal
            .record(&key(Algorithm::BoGp, 200), 0, &outcome(6.0))
            .unwrap();
        drop(journal);
        assert_eq!(load(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
