//! The experimental design: sample sizes, variance-scaled experiment
//! counts, and the paper's total-sample accounting.

use serde::{Deserialize, Serialize};

/// The paper's sample sizes (§V-B).
pub const SAMPLE_SIZES: [usize; 5] = [25, 50, 100, 200, 400];

/// The paper's experiment counts, scaled inversely with sample size so
/// high-variance small-sample cells get more repetitions (§V-B: 800
/// experiments at S=25 down to 50 at S=400).
pub const PAPER_EXPERIMENTS: [usize; 5] = [800, 400, 200, 100, 50];

/// Final-configuration repetitions (§VI-A: "we test the final sample 10
/// times to compensate for runtime variance").
pub const FINAL_REPS: usize = 10;

/// Size of the pre-generated dataset per (benchmark, architecture).
pub const DATASET_SIZE: usize = 20_000;

/// A (possibly down-scaled) instance of the paper's design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentDesign {
    /// Fraction of the paper's experiment counts to run (1.0 = paper
    /// scale). Counts never drop below [`ExperimentDesign::min_experiments`].
    pub scale: f64,
    /// Lower bound on experiments per cell.
    pub min_experiments: usize,
}

impl ExperimentDesign {
    /// The paper's full-scale design.
    pub fn paper() -> Self {
        ExperimentDesign {
            scale: 1.0,
            min_experiments: 1,
        }
    }

    /// A scaled-down design.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        ExperimentDesign {
            scale,
            min_experiments: 3,
        }
    }

    /// The sample sizes of the study.
    pub fn sample_sizes(&self) -> &'static [usize] {
        &SAMPLE_SIZES
    }

    /// Number of repeated experiments for a sample size.
    ///
    /// # Panics
    ///
    /// Panics for sample sizes outside the design.
    pub fn experiments_for(&self, sample_size: usize) -> usize {
        let idx = SAMPLE_SIZES
            .iter()
            .position(|&s| s == sample_size)
            .unwrap_or_else(|| panic!("sample size {sample_size} not in the design"));
        ((PAPER_EXPERIMENTS[idx] as f64 * self.scale).round() as usize).max(self.min_experiments)
    }

    /// Objective evaluations spent by the search phase of one cell
    /// (sample size × experiments).
    pub fn cell_search_samples(&self, sample_size: usize) -> usize {
        sample_size * self.experiments_for(sample_size)
    }
}

/// The paper's §VII footnote 1 accounting: "3 SMBO algorithms, [25, 50,
/// 100, 200, 400] samples per algorithm, [800, 400, 200, 100, 50]
/// experiments + RS/RF Samples and RF predictions for 3 benchmarks on 3
/// architectures" — which works out to exactly 3,019,500:
///
/// * sequentially-sampling algorithms (GA, BO GP, BO TPE):
///   `3 × Σ sᵢ·eᵢ × 9 = 3 × 100,000 × 9 / 9… = 2,700,000`
/// * shared RS/RF datasets: `20,000 × 9 = 180,000`
/// * RF verification runs: `10 × Σ eᵢ × 9 = 139,500`
pub fn paper_total_samples() -> u64 {
    let pairs = 9u64; // 3 benchmarks x 3 architectures
    let per_algo: u64 = SAMPLE_SIZES
        .iter()
        .zip(PAPER_EXPERIMENTS)
        .map(|(&s, e)| (s * e) as u64)
        .sum();
    let sequential = 3 * per_algo * pairs;
    let datasets = DATASET_SIZE as u64 * pairs;
    let rf_verification =
        FINAL_REPS as u64 * PAPER_EXPERIMENTS.iter().map(|&e| e as u64).sum::<u64>() * pairs;
    sequential + datasets + rf_verification
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_total_matches_footnote() {
        // §VII footnote 1: "roughly 3 019 500 samples".
        assert_eq!(paper_total_samples(), 3_019_500);
    }

    #[test]
    fn per_algorithm_search_budget_is_100k() {
        let total: usize = SAMPLE_SIZES
            .iter()
            .zip(PAPER_EXPERIMENTS)
            .map(|(&s, e)| s * e)
            .sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn paper_design_reproduces_counts() {
        let d = ExperimentDesign::paper();
        assert_eq!(d.experiments_for(25), 800);
        assert_eq!(d.experiments_for(400), 50);
        assert_eq!(d.cell_search_samples(100), 100 * 200);
    }

    #[test]
    fn scaling_shrinks_but_respects_floor() {
        let d = ExperimentDesign::scaled(0.01);
        assert_eq!(d.experiments_for(25), 8);
        assert_eq!(d.experiments_for(400), 3); // floor
    }

    #[test]
    #[should_panic(expected = "not in the design")]
    fn unknown_sample_size_rejected() {
        ExperimentDesign::paper().experiments_for(123);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        let _ = ExperimentDesign::scaled(0.0);
    }

    #[test]
    fn experiment_counts_decrease_with_sample_size() {
        let d = ExperimentDesign::paper();
        let counts: Vec<usize> = SAMPLE_SIZES.iter().map(|&s| d.experiments_for(s)).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }
}
