//! Statistical regression gate: does a fresh study run show a real
//! slowdown against a committed baseline?
//!
//! Naive gates compare point estimates and flap on noise; this one only
//! fails when the evidence is statistically overwhelming *and*
//! practically large. A cell counts as a slowdown when all three hold:
//!
//! 1. one-sided Mann-Whitney U (fresh *greater* than baseline) rejects
//!    at [`GateConfig::alpha`] — the paper's test, in the slowdown
//!    direction;
//! 2. the median ratio exceeds [`GateConfig::min_ratio`] — a practical
//!    significance floor so huge samples cannot fail on microscopic
//!    shifts;
//! 3. the bootstrap confidence interval of the fresh median lies
//!    entirely above the baseline median (`ci.lo > baseline_median`) —
//!    the fresh location estimate itself is stable.
//!
//! On identical inputs nothing fires (the MWU p-value is far from
//! `alpha`); a uniform 20% injected slowdown trips well over a hundred
//! cells of the committed small-scale baseline. Speedups never fail the
//! gate — they are reported, not punished.

use crate::grid::{CellKey, StudyResults};
use autotune_stats::{bootstrap, cles, descriptive, mwu, Alternative};
use std::fmt::Write as _;

/// Thresholds and bootstrap parameters of the gate.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Significance threshold for the one-sided MWU (default `0.01`,
    /// the paper's `α`).
    pub alpha: f64,
    /// Minimum fresh/baseline median ratio for a cell to count as a
    /// slowdown (default `1.05`: at least 5% slower).
    pub min_ratio: f64,
    /// Bootstrap resamples for the fresh-median CI (default `2000`).
    pub resamples: usize,
    /// Bootstrap confidence level (default `0.95`).
    pub level: f64,
    /// Bootstrap RNG seed (per-cell seeds are derived from it, so the
    /// gate is deterministic).
    pub seed: u64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            alpha: 0.01,
            min_ratio: 1.05,
            resamples: 2000,
            level: 0.95,
            seed: 0x5EED,
        }
    }
}

/// The gate's verdict on one shared cell.
#[derive(Debug, Clone)]
pub struct CellVerdict {
    /// The cell.
    pub key: CellKey,
    /// Baseline median final runtime, ms.
    pub baseline_median: f64,
    /// Fresh median final runtime, ms.
    pub fresh_median: f64,
    /// `fresh_median / baseline_median`.
    pub ratio: f64,
    /// One-sided MWU p-value (fresh greater than baseline); `1.0` for
    /// a degenerate pool.
    pub p_value: f64,
    /// `P(fresh run slower than baseline run)` (ties half); `0.5` for
    /// a degenerate pool.
    pub cles: f64,
    /// Bootstrap CI lower bound of the fresh median.
    pub fresh_ci_lo: f64,
    /// Bootstrap CI upper bound of the fresh median.
    pub fresh_ci_hi: f64,
    /// All three slowdown conditions hold.
    pub slowdown: bool,
}

/// Everything [`compare`] found.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-cell verdicts, ordered by key.
    pub verdicts: Vec<CellVerdict>,
    /// Baseline cells absent from the fresh run.
    pub missing_in_fresh: Vec<CellKey>,
    /// Fresh cells absent from the baseline.
    pub missing_in_baseline: Vec<CellKey>,
}

impl GateReport {
    /// The cells that fired the gate.
    pub fn slowdowns(&self) -> Vec<&CellVerdict> {
        self.verdicts.iter().filter(|v| v.slowdown).collect()
    }

    /// `true` when the gate should fail the build: any statistically
    /// significant slowdown, or baseline cells the fresh run no longer
    /// covers (silent coverage loss must not pass).
    pub fn failed(&self) -> bool {
        !self.missing_in_fresh.is_empty() || self.verdicts.iter().any(|v| v.slowdown)
    }

    /// Plain-text report: one line per firing cell, then a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let slowdowns = self.slowdowns();
        for v in &slowdowns {
            let _ = writeln!(
                out,
                "SLOWDOWN {}/{}/{}/S={}: median {:.4} -> {:.4} ms \
                 (x{:.3}, p={:.2e}, CLES {:.2}, fresh CI [{:.4}, {:.4}])",
                v.key.algorithm.name(),
                v.key.benchmark,
                v.key.architecture,
                v.key.sample_size,
                v.baseline_median,
                v.fresh_median,
                v.ratio,
                v.p_value,
                v.cles,
                v.fresh_ci_lo,
                v.fresh_ci_hi,
            );
        }
        for key in &self.missing_in_fresh {
            let _ = writeln!(
                out,
                "MISSING {}/{}/{}/S={}: baseline cell absent from fresh run",
                key.algorithm.name(),
                key.benchmark,
                key.architecture,
                key.sample_size,
            );
        }
        let _ = writeln!(
            out,
            "regression gate: {} cells compared, {} slowdowns, {} missing, verdict {}",
            self.verdicts.len(),
            slowdowns.len(),
            self.missing_in_fresh.len(),
            if self.failed() { "FAIL" } else { "PASS" },
        );
        out
    }
}

/// Compares a fresh study run against a baseline cell by cell; see the
/// module docs for the firing rule.
pub fn compare(baseline: &StudyResults, fresh: &StudyResults, config: &GateConfig) -> GateReport {
    let mut verdicts = Vec::new();
    let mut missing_in_fresh = Vec::new();
    for (index, (key, base_cell)) in baseline.cells.iter().enumerate() {
        let Some(fresh_cell) = fresh.cells.get(key) else {
            missing_in_fresh.push(key.clone());
            continue;
        };
        let base = &base_cell.final_ms;
        let new = &fresh_cell.final_ms;
        let baseline_median = descriptive::median(base);
        let fresh_median = descriptive::median(new);
        let ratio = fresh_median / baseline_median;

        // The paper pipeline's degenerate-pool guard: MWU is undefined
        // when every pooled observation is identical.
        let pooled_degenerate = {
            let first = new[0];
            new.iter().chain(base.iter()).all(|&v| v == first)
        };
        let (p_value, cles) = if pooled_degenerate {
            (1.0, 0.5)
        } else {
            (
                mwu::mann_whitney_u(new, base, Alternative::Greater).p_value,
                cles::common_language_effect_size(new, base),
            )
        };
        let ci = bootstrap::percentile_ci(
            new,
            descriptive::median,
            config.resamples,
            config.level,
            config.seed.wrapping_add(index as u64),
        );
        let slowdown =
            p_value < config.alpha && ratio > config.min_ratio && ci.lo > baseline_median;
        verdicts.push(CellVerdict {
            key: key.clone(),
            baseline_median,
            fresh_median,
            ratio,
            p_value,
            cles,
            fresh_ci_lo: ci.lo,
            fresh_ci_hi: ci.hi,
            slowdown,
        });
    }
    let missing_in_baseline = fresh
        .cells
        .keys()
        .filter(|k| !baseline.cells.contains_key(*k))
        .cloned()
        .collect();
    GateReport {
        verdicts,
        missing_in_fresh,
        missing_in_baseline,
    }
}

/// Multiplies every final runtime of a results set by `factor` —
/// the gate's self-test hook (`regression-gate --inject`).
pub fn inject_slowdown(results: &mut StudyResults, factor: f64) {
    assert!(factor > 0.0, "inject factor must be positive");
    for cell in results.cells.values_mut() {
        for v in &mut cell.final_ms {
            *v *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CellResult;
    use autotune_core::Algorithm;
    use std::collections::BTreeMap;

    fn key(sample_size: usize) -> CellKey {
        CellKey {
            algorithm: Algorithm::RandomSearch,
            benchmark: "add".to_string(),
            architecture: "gtx_980".to_string(),
            sample_size,
        }
    }

    fn results(cells: Vec<(CellKey, Vec<f64>)>) -> StudyResults {
        StudyResults {
            cells: cells
                .into_iter()
                .map(|(k, final_ms)| {
                    let n = final_ms.len();
                    (
                        k,
                        CellResult {
                            final_ms,
                            percent_of_optimum: vec![100.0; n],
                        },
                    )
                })
                .collect(),
            optima: BTreeMap::new(),
            sample_sizes: vec![25],
        }
    }

    /// A noisy population around `center` (spread small vs a 20% shift).
    fn population(center: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| center * (1.0 + 0.01 * ((i % 7) as f64 - 3.0)))
            .collect()
    }

    #[test]
    fn identical_runs_pass() {
        let base = results(vec![(key(25), population(10.0, 30))]);
        let fresh = base.clone();
        let report = compare(&base, &fresh, &GateConfig::default());
        assert!(!report.failed());
        assert!(report.slowdowns().is_empty());
        assert_eq!(report.verdicts.len(), 1);
        // Identical samples: the one-sided p-value is far from alpha.
        assert!(report.verdicts[0].p_value > 0.4);
        assert!(report.render().contains("verdict PASS"));
    }

    #[test]
    fn injected_slowdown_fires() {
        let base = results(vec![(key(25), population(10.0, 30))]);
        let mut fresh = base.clone();
        inject_slowdown(&mut fresh, 1.2);
        let report = compare(&base, &fresh, &GateConfig::default());
        assert!(report.failed());
        let slow = report.slowdowns();
        assert_eq!(slow.len(), 1);
        assert!(slow[0].ratio > 1.15);
        assert!(slow[0].p_value < 0.01);
        assert!(slow[0].fresh_ci_lo > slow[0].baseline_median);
        assert!(report.render().contains("SLOWDOWN"));
        assert!(report.render().contains("verdict FAIL"));
    }

    #[test]
    fn speedups_never_fail() {
        let base = results(vec![(key(25), population(10.0, 30))]);
        let mut fresh = base.clone();
        inject_slowdown(&mut fresh, 0.5);
        let report = compare(&base, &fresh, &GateConfig::default());
        assert!(!report.failed());
        assert!(report.verdicts[0].ratio < 0.6);
    }

    #[test]
    fn small_shift_below_ratio_floor_passes() {
        // Statistically detectable (n=60, tight spread) but only 2%
        // slower: practical-significance floor must hold it back.
        let base = results(vec![(key(25), population(10.0, 60))]);
        let mut fresh = base.clone();
        inject_slowdown(&mut fresh, 1.02);
        let config = GateConfig::default();
        let report = compare(&base, &fresh, &config);
        let v = &report.verdicts[0];
        assert!(v.ratio < config.min_ratio);
        assert!(!v.slowdown);
        assert!(!report.failed());
    }

    #[test]
    fn degenerate_pools_pass() {
        let base = results(vec![(key(25), vec![3.0; 10])]);
        let fresh = base.clone();
        let report = compare(&base, &fresh, &GateConfig::default());
        let v = &report.verdicts[0];
        assert_eq!(v.p_value, 1.0);
        assert_eq!(v.cles, 0.5);
        assert!(!report.failed());
    }

    #[test]
    fn missing_baseline_cells_fail_the_gate() {
        let base = results(vec![
            (key(25), population(10.0, 10)),
            (key(50), population(10.0, 10)),
        ]);
        let fresh = results(vec![(key(25), population(10.0, 10))]);
        let report = compare(&base, &fresh, &GateConfig::default());
        assert_eq!(report.missing_in_fresh, vec![key(50)]);
        assert!(report.failed());
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn extra_fresh_cells_are_reported_but_pass() {
        let base = results(vec![(key(25), population(10.0, 10))]);
        let fresh = results(vec![
            (key(25), population(10.0, 10)),
            (key(50), population(10.0, 10)),
        ]);
        let report = compare(&base, &fresh, &GateConfig::default());
        assert_eq!(report.missing_in_baseline, vec![key(50)]);
        assert!(!report.failed());
    }

    #[test]
    fn gate_is_deterministic() {
        let base = results(vec![(key(25), population(10.0, 30))]);
        let mut fresh = base.clone();
        inject_slowdown(&mut fresh, 1.1);
        let config = GateConfig::default();
        let a = compare(&base, &fresh, &config);
        let b = compare(&base, &fresh, &config);
        for (va, vb) in a.verdicts.iter().zip(&b.verdicts) {
            assert_eq!(va.fresh_ci_lo, vb.fresh_ci_lo);
            assert_eq!(va.fresh_ci_hi, vb.fresh_ci_hi);
            assert_eq!(va.slowdown, vb.slowdown);
        }
    }
}
