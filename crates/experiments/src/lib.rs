//! The experiment pipeline reproducing every table and figure of the
//! paper.
//!
//! Pipeline (paper Fig. 1): pre-generate per-(benchmark, architecture)
//! sample datasets for the non-SMBO methods, run every (algorithm,
//! benchmark, architecture, sample size) cell for a variance-scaled
//! number of repeated experiments, re-measure each experiment's final
//! configuration 10 times, and aggregate into the paper's four result
//! artefacts:
//!
//! | artefact | paper | module | binary |
//! |---|---|---|---|
//! | median % of optimum heatmaps | Fig. 2 | [`metrics::fig2`] | `fig2` |
//! | aggregate mean ± CI line plot | Fig. 3 | [`metrics::fig3`] | `fig3` |
//! | median speedup over RS heatmaps | Fig. 4a | [`metrics::fig4a`] | `fig4a` |
//! | CLES over RS heatmaps | Fig. 4b | [`metrics::fig4b`] | `fig4b` |
//! | related-work survey table | Table I | [`table1`] | `table1` |
//!
//! Paper-scale experiment counts (800 … 50) are expensive on one core;
//! every binary accepts `--scale <fraction>` (default 0.02) or `--full`.
//!
//! The **observatory** layer watches and gates all of the above:
//! [`monitor::StudyMonitor`] folds outcomes into live per-(technique,
//! sample size) statistics while a study runs (streamed from the worker
//! pool by [`grid::run_study_monitored`] or replayed from a journal),
//! the `observe` binary renders it — or a live `tuned` server — as a
//! terminal dashboard, and [`gate::compare`] (the `regression-gate`
//! binary) turns two [`StudyResults`] into a statistical pass/fail
//! verdict for CI.
//!
//! Beyond the paper, [`warmstart`] (the `warm_start_study` binary) adds
//! a cold/warm/transfer axis: how many samples a knowledge-base-seeded
//! search needs to match a cold budget-200 incumbent.

#![warn(missing_docs)]

pub mod cli;
pub mod design;
pub mod gate;
pub mod grid;
pub mod journal;
pub mod metrics;
pub mod monitor;
pub mod multifidelity;
pub mod render;
pub mod runner;
pub mod seed;
pub mod table1;
pub mod warmstart;

pub use design::ExperimentDesign;
pub use gate::{CellVerdict, GateConfig, GateReport};
pub use grid::{run_study, run_study_monitored, CellKey, CellResult, StudyConfig, StudyResults};
pub use monitor::{CellSummary, MonitorConfig, StudyMonitor};
pub use runner::ExperimentOutcome;
pub use warmstart::{run_warm_start_study, WarmMode, WarmStartConfig, WarmStartResults};
