//! Deterministic, order-independent seed derivation.
//!
//! Every experiment's RNG seed is a splitmix64-style hash of its full
//! coordinates (algorithm, benchmark, architecture, sample size,
//! repetition, study seed), so cells can run in any order — or in
//! parallel — and still reproduce bit-identically.

/// One round of the splitmix64 output function — a strong 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Combines coordinate hashes into one seed.
pub fn combine(parts: &[u64]) -> u64 {
    let mut acc = 0x243f6a8885a308d3; // pi digits, arbitrary non-zero
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

/// Hashes a string coordinate (FNV-1a).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The seed for one experiment.
pub fn experiment_seed(
    study_seed: u64,
    algorithm: &str,
    benchmark: &str,
    architecture: &str,
    sample_size: usize,
    repetition: usize,
) -> u64 {
    combine(&[
        study_seed,
        hash_str(algorithm),
        hash_str(benchmark),
        hash_str(architecture),
        sample_size as u64,
        repetition as u64,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = experiment_seed(1, "RS", "Add", "Titan V", 25, 0);
        let b = experiment_seed(1, "RS", "Add", "Titan V", 25, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn every_coordinate_matters() {
        let base = experiment_seed(1, "RS", "Add", "Titan V", 25, 0);
        assert_ne!(base, experiment_seed(2, "RS", "Add", "Titan V", 25, 0));
        assert_ne!(base, experiment_seed(1, "GA", "Add", "Titan V", 25, 0));
        assert_ne!(base, experiment_seed(1, "RS", "Harris", "Titan V", 25, 0));
        assert_ne!(base, experiment_seed(1, "RS", "Add", "GTX 980", 25, 0));
        assert_ne!(base, experiment_seed(1, "RS", "Add", "Titan V", 50, 0));
        assert_ne!(base, experiment_seed(1, "RS", "Add", "Titan V", 25, 1));
    }

    #[test]
    fn no_collisions_over_a_realistic_grid() {
        let mut seen = std::collections::HashSet::new();
        for algo in ["RS", "RF", "GA", "BO GP", "BO TPE"] {
            for bench in ["Add", "Harris", "Mandelbrot"] {
                for arch in ["GTX 980", "Titan V", "RTX Titan"] {
                    for s in [25, 50, 100, 200, 400] {
                        for rep in 0..20 {
                            assert!(
                                seen.insert(experiment_seed(7, algo, bench, arch, s, rep)),
                                "seed collision"
                            );
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), 5 * 3 * 3 * 5 * 20);
    }

    #[test]
    fn splitmix_mixes() {
        // Adjacent inputs produce wildly different outputs.
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}
