//! Minimal flag parser shared by the figure binaries (keeping the
//! dependency set to the approved list — no clap).

use crate::grid::StudyConfig;
use autotune_core::Algorithm;
use gpu_sim::arch;
use gpu_sim::kernels::Benchmark;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Study configuration assembled from the flags.
    pub config: StudyConfig,
    /// Output directory for CSV artefacts (`--out DIR`, default
    /// `results`).
    pub out_dir: String,
    /// Skip writing CSV files (`--no-csv`).
    pub write_csv: bool,
}

/// Usage string printed on `--help` or a bad flag.
pub const USAGE: &str = "\
Options:
  --scale F        fraction of the paper's experiment counts (default 0.02)
  --full           paper scale (800..50 experiments; hours of compute)
  --smoke          tiny smoke-test configuration
  --bench NAME     restrict to one benchmark (Add|Harris|Mandelbrot)
  --arch NAME      restrict to one architecture (GTX 980|Titan V|RTX Titan)
  --algos LIST     comma-separated algorithms (default: RS,RF,GA,BO GP,BO TPE)
  --seed N         study master seed (default 0x5EED)
  --threads N      worker threads (default: available parallelism)
  --dataset N      dataset size for non-SMBO methods (default 20000)
  --oracle-stride N  oracle scan stride (default 1 = exhaustive)
  --out DIR        output directory for CSVs (default results)
  --no-csv         print to stdout only
";

/// Parses flags; returns an error message (including usage) on bad input.
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut config = StudyConfig::at_scale(0.02);
    let mut out_dir = "results".to_string();
    let mut write_csv = true;

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v: f64 = value(&mut i, "--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                config = StudyConfig {
                    design: crate::design::ExperimentDesign::scaled(v.min(1.0)),
                    ..config
                };
            }
            "--full" => {
                config.design = crate::design::ExperimentDesign::paper();
            }
            "--smoke" => {
                let keep_algos = config.algorithms.clone();
                config = StudyConfig::smoke();
                config.algorithms = keep_algos;
            }
            "--bench" => {
                let name = value(&mut i, "--bench")?;
                let b = Benchmark::parse(&name)
                    .ok_or_else(|| format!("unknown benchmark {name:?}\n{USAGE}"))?;
                config.benchmarks = vec![b];
            }
            "--arch" => {
                let name = value(&mut i, "--arch")?;
                let a = arch::by_name(&name)
                    .ok_or_else(|| format!("unknown architecture {name:?}\n{USAGE}"))?;
                config.architectures = vec![a];
            }
            "--algos" => {
                let list = value(&mut i, "--algos")?;
                let mut algos = Vec::new();
                for part in list.split(',') {
                    let a = Algorithm::parse(part)
                        .ok_or_else(|| format!("unknown algorithm {part:?}\n{USAGE}"))?;
                    algos.push(a);
                }
                if algos.is_empty() {
                    return Err(format!("--algos list is empty\n{USAGE}"));
                }
                config.algorithms = algos;
            }
            "--seed" => {
                config.seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                config.threads = value(&mut i, "--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--dataset" => {
                config.dataset_size = value(&mut i, "--dataset")?
                    .parse()
                    .map_err(|e| format!("bad --dataset: {e}"))?;
            }
            "--oracle-stride" => {
                config.oracle_stride = value(&mut i, "--oracle-stride")?
                    .parse()
                    .map_err(|e| format!("bad --oracle-stride: {e}"))?;
            }
            "--out" => out_dir = value(&mut i, "--out")?,
            "--no-csv" => write_csv = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok(Options {
        config,
        out_dir,
        write_csv,
    })
}

/// Writes `content` to `dir/name`, creating the directory; prints the
/// path on success.
pub fn write_artifact(dir: &str, name: &str, content: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = std::path::Path::new(dir).join(name);
    std::fs::write(&path, content)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.config.algorithms.len(), 5);
        assert_eq!(o.config.benchmarks.len(), 3);
        assert_eq!(o.out_dir, "results");
        assert!(o.write_csv);
    }

    #[test]
    fn scale_and_full() {
        let o = parse(&argv("--scale 0.1")).unwrap();
        assert!((o.config.design.scale - 0.1).abs() < 1e-12);
        let o = parse(&argv("--full")).unwrap();
        assert_eq!(o.config.design.scale, 1.0);
    }

    #[test]
    fn restrict_bench_arch_algos() {
        let args: Vec<String> = vec![
            "--bench".into(),
            "harris".into(),
            "--arch".into(),
            "titan v".into(),
            "--algos".into(),
            "RS,GA".into(),
        ];
        let o = parse(&args).unwrap();
        assert_eq!(o.config.benchmarks, vec![Benchmark::Harris]);
        assert_eq!(o.config.architectures[0].name, "Titan V");
        assert_eq!(
            o.config.algorithms,
            vec![Algorithm::RandomSearch, Algorithm::GeneticAlgorithm]
        );
    }

    #[test]
    fn bad_flags_error_with_usage() {
        assert!(parse(&argv("--bogus")).unwrap_err().contains("Options:"));
        assert!(parse(&argv("--bench nope"))
            .unwrap_err()
            .contains("unknown benchmark"));
        assert!(parse(&argv("--scale"))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn numeric_flags() {
        let o = parse(&argv(
            "--seed 42 --threads 2 --dataset 100 --oracle-stride 7",
        ))
        .unwrap();
        assert_eq!(o.config.seed, 42);
        assert_eq!(o.config.threads, 2);
        assert_eq!(o.config.dataset_size, 100);
        assert_eq!(o.config.oracle_stride, 7);
    }
}
