//! Running one experiment, following the paper's per-method protocols.
//!
//! * **RS** — the minimum over `S` entries drawn without replacement from
//!   the pre-generated 20k dataset (§VI-B: "we simply select the minimum
//!   runtime from the collection of S samples").
//! * **RF** — trained on `S - 10` dataset entries, then the model's top
//!   10 predictions over a feasible candidate pool are *executed* and
//!   the best measured one wins (§VI-B).
//! * **GA / BO GP / BO TPE** (and the extension techniques) — sequential
//!   runs against the simulator with a budget of exactly `S`
//!   measurements; the SMBO methods receive no constraint specification.
//!
//! Every experiment ends with the paper's final protocol: the chosen
//! configuration is re-measured 10 times and the median is reported.

use crate::seed;
use autotune_core::trace::{self, TraceRecord, TraceSink, NULL_SINK};
use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, sample, Configuration};
use autotune_surrogates::{RandomForest, RandomForestParams};
use gpu_sim::dataset::Dataset;
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::GpuArchitecture;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Result of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Median of the 10 final repetitions, ms — the paper's headline
    /// number for the experiment.
    pub final_ms: f64,
    /// The configuration the search selected.
    pub config: Configuration,
    /// Objective evaluations the search phase spent.
    pub search_samples: u64,
}

/// Runs one experiment of `algorithm` at `sample_size` on the given
/// (benchmark, architecture), with `dataset` backing the non-SMBO
/// subdivision protocol.
#[allow(clippy::too_many_arguments)] // the experiment's natural coordinates
pub fn run_experiment(
    algorithm: Algorithm,
    bench: Benchmark,
    arch: &GpuArchitecture,
    dataset: &Dataset,
    sample_size: usize,
    repetition: usize,
    study_seed: u64,
    noise: NoiseModel,
) -> ExperimentOutcome {
    run_experiment_traced(
        algorithm,
        bench,
        arch,
        dataset,
        sample_size,
        repetition,
        study_seed,
        noise,
        &NULL_SINK,
    )
}

/// [`run_experiment`] with a search-trace sink. Sequential techniques
/// stream their full flight-recorder trace (trial events, phase spans,
/// algorithm payloads); the dataset-backed RS and RF protocols emit
/// protocol-level events instead. All paths wrap the paper's final
/// 10-repetition protocol in a `final_protocol` span. The sink never
/// influences the experiment.
#[allow(clippy::too_many_arguments)] // the experiment's natural coordinates
pub fn run_experiment_traced(
    algorithm: Algorithm,
    bench: Benchmark,
    arch: &GpuArchitecture,
    dataset: &Dataset,
    sample_size: usize,
    repetition: usize,
    study_seed: u64,
    noise: NoiseModel,
    sink: &dyn TraceSink,
) -> ExperimentOutcome {
    let seed = seed::experiment_seed(
        study_seed,
        algorithm.name(),
        bench.name(),
        &arch.name,
        sample_size,
        repetition,
    );
    match algorithm {
        Algorithm::RandomSearch => run_rs(bench, arch, dataset, sample_size, seed, noise, sink),
        Algorithm::RandomForest => run_rf(bench, arch, dataset, sample_size, seed, noise, sink),
        _ => run_sequential(algorithm, bench, arch, sample_size, seed, noise, sink),
    }
}

/// RS: subdivide the dataset, take the minimum.
#[allow(clippy::too_many_arguments)] // the experiment's natural coordinates
fn run_rs(
    bench: Benchmark,
    arch: &GpuArchitecture,
    dataset: &Dataset,
    sample_size: usize,
    seed: u64,
    noise: NoiseModel,
    sink: &dyn TraceSink,
) -> ExperimentOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let picks: Vec<usize> =
        sample::indices_without_replacement(dataset.len() as u64, sample_size, &mut rng)
            .into_iter()
            .map(|i| i as usize)
            .collect();
    let best = dataset.min_over(&picks);
    let config = imagecl::space().config_at(best.config_index);
    trace::point(
        sink,
        "dataset_subdivision",
        &[("size", sample_size as f64), ("min", best.runtime_ms)],
    );
    if sink.is_enabled() {
        sink.emit(TraceRecord::Trial {
            index: 0,
            config: config.values().to_vec(),
            cost: best.runtime_ms,
            best: best.runtime_ms,
        });
    }
    let final_span = trace::span(sink, "final_protocol");
    let final_ms = final_protocol(bench, arch, &config, seed, noise);
    final_span.end();
    ExperimentOutcome {
        final_ms,
        config,
        search_samples: sample_size as u64,
    }
}

/// RF: train on `S - 10` dataset entries, execute the model's top 10.
#[allow(clippy::too_many_arguments)] // the experiment's natural coordinates
fn run_rf(
    bench: Benchmark,
    arch: &GpuArchitecture,
    dataset: &Dataset,
    sample_size: usize,
    seed: u64,
    noise: NoiseModel,
    sink: &dyn TraceSink,
) -> ExperimentOutcome {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let verify = 10.min(sample_size.saturating_sub(1)).max(1);
    let train_n = sample_size - verify;

    let picks = sample::indices_without_replacement(dataset.len() as u64, train_n, &mut rng);
    let mut train_x = Vec::with_capacity(train_n);
    let mut train_y = Vec::with_capacity(train_n);
    for &i in &picks {
        let entry = dataset.entries[i as usize];
        let cfg = space.config_at(entry.config_index);
        train_x.push(space.to_unit_features(&cfg));
        train_y.push(entry.runtime_ms);
    }
    let fit_span = trace::span(sink, "surrogate_fit");
    let forest = RandomForest::fit(
        &train_x,
        &train_y,
        &RandomForestParams::default(),
        seed ^ 0xf0f0,
    );
    fit_span.end();
    trace::point(
        sink,
        "rf_protocol",
        &[("train", train_n as f64), ("verify", verify as f64)],
    );

    // Rank a fresh feasible candidate pool; run the top `verify`.
    let rank_span = trace::span(sink, "acquisition");
    let mut candidates: Vec<Configuration> = (0..2048)
        .map(|_| sample::constrained(&space, &constraint, &mut rng))
        .collect();
    candidates.sort_by(|a, b| {
        forest
            .predict(&space.to_unit_features(a))
            .partial_cmp(&forest.predict(&space.to_unit_features(b)))
            .expect("finite predictions")
    });
    candidates.dedup();
    rank_span.end();

    let mut sim = SimulatedKernel::with_noise(bench.model(), arch.clone(), noise, seed ^ 0xabcd);
    let mut best: Option<(f64, Configuration)> = None;
    for (index, cfg) in candidates.into_iter().take(verify).enumerate() {
        let obj_span = trace::span(sink, "objective");
        let t = sim.measure(&cfg);
        obj_span.end();
        if best.as_ref().is_none_or(|(b, _)| t < *b) {
            best = Some((t, cfg.clone()));
        }
        if sink.is_enabled() {
            sink.emit(TraceRecord::Trial {
                index,
                config: cfg.values().to_vec(),
                cost: t,
                best: best.as_ref().expect("just set").0,
            });
        }
    }
    let (_, config) = best.expect("at least one verification run");
    let final_span = trace::span(sink, "final_protocol");
    let final_ms = final_protocol(bench, arch, &config, seed, noise);
    final_span.end();
    ExperimentOutcome {
        final_ms,
        config,
        search_samples: sample_size as u64,
    }
}

/// Sequential techniques: tune against the simulator with budget `S`.
fn run_sequential(
    algorithm: Algorithm,
    bench: Benchmark,
    arch: &GpuArchitecture,
    sample_size: usize,
    seed: u64,
    noise: NoiseModel,
    sink: &dyn TraceSink,
) -> ExperimentOutcome {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let mut sim = SimulatedKernel::with_noise(bench.model(), arch.clone(), noise, seed);

    let ctx = TuneContext::new(&space, sample_size, seed).with_trace(sink);
    // Paper §V-C: constraint specification only for non-SMBO methods.
    let ctx = if algorithm.is_smbo() {
        ctx
    } else {
        ctx.with_constraint(&constraint)
    };
    let result = {
        let mut objective = |cfg: &Configuration| sim.measure(cfg);
        algorithm.tuner().tune(&ctx, &mut objective)
    };
    let search_samples = sim.evaluations();
    let final_span = trace::span(sink, "final_protocol");
    let final_ms = final_protocol(bench, arch, &result.best.config, seed, noise);
    final_span.end();
    ExperimentOutcome {
        final_ms,
        config: result.best.config,
        search_samples,
    }
}

/// The paper's final protocol: 10 repetitions of the chosen
/// configuration on a fresh measurement stream, median reported.
fn final_protocol(
    bench: Benchmark,
    arch: &GpuArchitecture,
    config: &Configuration,
    seed: u64,
    noise: NoiseModel,
) -> f64 {
    let mut sim =
        SimulatedKernel::with_noise(bench.model(), arch.clone(), noise, seed ^ 0x5eed_f17a);
    sim.measure_final(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::Constraint;
    use gpu_sim::arch;

    fn dataset() -> Dataset {
        Dataset::generate(
            Benchmark::Add,
            &arch::gtx_980(),
            600,
            NoiseModel::study_default(),
            99,
        )
    }

    #[test]
    fn rs_outcome_is_reproducible_and_feasible() {
        let ds = dataset();
        let a = arch::gtx_980();
        let o1 = run_experiment(
            Algorithm::RandomSearch,
            Benchmark::Add,
            &a,
            &ds,
            25,
            0,
            7,
            NoiseModel::study_default(),
        );
        let o2 = run_experiment(
            Algorithm::RandomSearch,
            Benchmark::Add,
            &a,
            &ds,
            25,
            0,
            7,
            NoiseModel::study_default(),
        );
        assert_eq!(o1.final_ms, o2.final_ms);
        assert_eq!(o1.config, o2.config);
        assert!(imagecl::constraint().is_satisfied(&o1.config));
        assert_eq!(o1.search_samples, 25);
    }

    #[test]
    fn rs_with_more_samples_is_at_least_as_good_on_the_dataset() {
        // Dataset minimum over a superset cannot be worse. (Floyd's draws
        // for different n are not nested, so compare via the dataset
        // minimum directly.)
        let ds = dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let global_min = ds.min_over(&all).runtime_ms;
        let a = arch::gtx_980();
        let o = run_experiment(
            Algorithm::RandomSearch,
            Benchmark::Add,
            &a,
            &ds,
            400,
            1,
            7,
            NoiseModel::study_default(),
        );
        // The selected config's dataset runtime is >= global min.
        assert!(o.final_ms >= global_min * 0.8, "final {}", o.final_ms);
    }

    #[test]
    fn rf_runs_and_respects_constraint() {
        let ds = dataset();
        let a = arch::gtx_980();
        let o = run_experiment(
            Algorithm::RandomForest,
            Benchmark::Add,
            &a,
            &ds,
            50,
            2,
            7,
            NoiseModel::study_default(),
        );
        assert!(imagecl::constraint().is_satisfied(&o.config));
        assert!(o.final_ms > 0.0);
    }

    #[test]
    fn sequential_techniques_spend_the_budget() {
        let ds = dataset();
        let a = arch::titan_v();
        for algo in [Algorithm::GeneticAlgorithm, Algorithm::BoTpe] {
            let o = run_experiment(
                algo,
                Benchmark::Mandelbrot,
                &a,
                &ds,
                25,
                0,
                3,
                NoiseModel::study_default(),
            );
            assert_eq!(o.search_samples, 25, "{}", algo.name());
            assert!(o.final_ms > 0.0);
        }
    }

    #[test]
    fn traced_experiments_match_untraced_and_record_every_trial() {
        use autotune_core::trace::{trial_count, VecSink};
        let ds = dataset();
        let a = arch::gtx_980();
        for algo in [
            Algorithm::RandomSearch,
            Algorithm::RandomForest,
            Algorithm::GeneticAlgorithm,
        ] {
            let plain = run_experiment(
                algo,
                Benchmark::Add,
                &a,
                &ds,
                25,
                0,
                7,
                NoiseModel::study_default(),
            );
            let sink = VecSink::new();
            let traced = run_experiment_traced(
                algo,
                Benchmark::Add,
                &a,
                &ds,
                25,
                0,
                7,
                NoiseModel::study_default(),
                &sink,
            );
            assert_eq!(plain.final_ms, traced.final_ms, "{}", algo.name());
            assert_eq!(plain.config, traced.config, "{}", algo.name());
            let events = sink.take();
            let expected_trials = match algo {
                Algorithm::RandomSearch => 1,  // the dataset minimum
                Algorithm::RandomForest => 10, // the verification runs
                _ => 25,                       // one per budget unit
            };
            assert_eq!(trial_count(&events), expected_trials, "{}", algo.name());
            assert!(
                events.iter().any(|e| e.record.name() == "final_protocol"),
                "{} missing final_protocol span",
                algo.name()
            );
        }
    }

    #[test]
    fn different_repetitions_give_different_experiments() {
        let ds = dataset();
        let a = arch::gtx_980();
        let o0 = run_experiment(
            Algorithm::RandomSearch,
            Benchmark::Add,
            &a,
            &ds,
            25,
            0,
            7,
            NoiseModel::study_default(),
        );
        let o1 = run_experiment(
            Algorithm::RandomSearch,
            Benchmark::Add,
            &a,
            &ds,
            25,
            1,
            7,
            NoiseModel::study_default(),
        );
        assert_ne!(o0.final_ms, o1.final_ms);
    }
}
