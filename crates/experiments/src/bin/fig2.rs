//! Reproduces **Fig. 2**: heatmaps of the median percent-of-optimum per
//! algorithm and sample size, one panel per (benchmark, architecture).

use experiments::{cli, grid, metrics, render};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let results = grid::run_study(&opts.config);
    let panels = metrics::fig2(&results);
    for p in &panels {
        print!("{}", render::heatmap(p, "%"));
        println!();
    }
    if opts.write_csv {
        cli::write_artifact(&opts.out_dir, "fig2.csv", &render::heatmaps_csv(&panels))
            .expect("write fig2.csv");
    }
}
