//! `diagnostics_study` — validates the search-health band detectors
//! against the committed ground truth.
//!
//! ```text
//! diagnostics_study [--from FILE] [--check]
//! ```
//!
//! Runs [`BandDetector`] over a saved `study_results.json` (default: the
//! committed scale-0.05 study) and prints every fired verdict:
//!
//! * **Overfitting dips** — adjacent sample-size bands of the same cell
//!   where the *higher*-budget runtimes are significantly worse, the
//!   paper's Fig. 4 BO GP 100→200 signature.
//! * **Worse than random** — cells losing to the RS cell at the same
//!   (benchmark, architecture, sample size) on effect size alone.
//!
//! With `--check` the scan becomes the CI assertion: BO GP must dip in
//! the 100→200 band, Random Forest must go worse-than-random somewhere,
//! and Genetic Algorithm and Random Search must both stay completely
//! quiet (zero false positives). Exit 1 on any miss.

use autotune_core::{Algorithm, BandDetector};
use experiments::grid::{CellKey, StudyResults};
use std::collections::BTreeMap;
use std::process::exit;

const DEFAULT_RESULTS: &str = "results/scale005/study_results.json";

fn usage(code: i32) -> ! {
    eprintln!("usage: diagnostics_study [--from FILE] [--check]");
    eprintln!();
    eprintln!("  --from FILE  saved study_results.json (default {DEFAULT_RESULTS})");
    eprintln!("  --check      assert the committed ground truth: BO GP overfits in");
    eprintln!("               the 100->200 band, RF goes worse-than-random, GA and");
    eprintln!("               RS stay quiet; exit 1 otherwise");
    exit(code)
}

/// One fired verdict, kept for the summary and the `--check` gate.
struct Finding {
    algorithm: Algorithm,
    benchmark: String,
    architecture: String,
    /// `(lower, higher)` band for dips; `(S, S)` for worse-than-random.
    band: (usize, usize),
    p_value: f64,
    cles: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut from = DEFAULT_RESULTS.to_string();
    let mut check = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--from" => match it.next() {
                Some(path) => from = path.clone(),
                None => usage(2),
            },
            "--check" => check = true,
            "--help" | "-h" => usage(0),
            _ => usage(2),
        }
    }

    let json = std::fs::read_to_string(&from).unwrap_or_else(|e| {
        eprintln!("diagnostics_study: cannot read {from}: {e}");
        exit(2);
    });
    let results = StudyResults::from_json(&json).unwrap_or_else(|e| {
        eprintln!("diagnostics_study: {from} is not a study_results.json: {e}");
        exit(2);
    });

    let detector = BandDetector::default();
    let algorithms = results.algorithms();
    let pairs = results.pairs();
    let sizes = &results.sample_sizes;
    println!(
        "search-health band scan: {} algorithms x {} panels x {} sample sizes from {from}",
        algorithms.len(),
        pairs.len(),
        sizes.len()
    );

    let key = |algorithm: Algorithm, bench: &str, arch_name: &str, s: usize| CellKey {
        algorithm,
        benchmark: bench.to_string(),
        architecture: arch_name.to_string(),
        sample_size: s,
    };

    // Overfitting dips: every adjacent sample-size band of every cell.
    let mut dips: Vec<Finding> = Vec::new();
    println!("\n# overfitting dips (higher-budget runtimes significantly worse)");
    for &algorithm in &algorithms {
        for (bench, arch_name) in &pairs {
            for window in sizes.windows(2) {
                let (lo, hi) = (window[0], window[1]);
                let (Some(at_lo), Some(at_hi)) = (
                    results.cell(&key(algorithm, bench, arch_name, lo)),
                    results.cell(&key(algorithm, bench, arch_name, hi)),
                ) else {
                    continue;
                };
                let v = detector.overfitting_dip(&at_lo.final_ms, &at_hi.final_ms);
                if v.fired {
                    println!(
                        "{:<18} {bench:<12} {arch_name:<10} {lo:>3}->{hi:<3}  p={:.4} cles={:.3}",
                        algorithm.name(),
                        v.p_value,
                        v.cles
                    );
                    dips.push(Finding {
                        algorithm,
                        benchmark: bench.clone(),
                        architecture: arch_name.clone(),
                        band: (lo, hi),
                        p_value: v.p_value,
                        cles: v.cles,
                    });
                }
            }
        }
    }
    if dips.is_empty() {
        println!("(none)");
    }

    // Worse-than-random: every non-RS cell against its RS counterpart.
    let mut wtr: Vec<Finding> = Vec::new();
    println!(
        "\n# worse than random (CLES vs the RS cell >= {:.2})",
        detector.cles_threshold
    );
    for &algorithm in &algorithms {
        if algorithm == Algorithm::RandomSearch {
            continue;
        }
        for (bench, arch_name) in &pairs {
            for &s in sizes {
                let (Some(alg), Some(rs)) = (
                    results.cell(&key(algorithm, bench, arch_name, s)),
                    results.cell(&key(Algorithm::RandomSearch, bench, arch_name, s)),
                ) else {
                    continue;
                };
                let v = detector.worse_than_random(&alg.final_ms, &rs.final_ms);
                if v.fired {
                    println!(
                        "{:<18} {bench:<12} {arch_name:<10} S={s:<4}  cles={:.3} (p={:.2})",
                        algorithm.name(),
                        v.cles,
                        v.p_value
                    );
                    wtr.push(Finding {
                        algorithm,
                        benchmark: bench.clone(),
                        architecture: arch_name.clone(),
                        band: (s, s),
                        p_value: v.p_value,
                        cles: v.cles,
                    });
                }
            }
        }
    }
    if wtr.is_empty() {
        println!("(none)");
    }

    let mut per_algo: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for f in &dips {
        per_algo.entry(f.algorithm.name()).or_default().0 += 1;
    }
    for f in &wtr {
        per_algo.entry(f.algorithm.name()).or_default().1 += 1;
    }
    println!("\n# summary (dips / worse-than-random per algorithm)");
    for (name, (d, w)) in &per_algo {
        println!("{name:<18} {d} / {w}");
    }

    if !check {
        return;
    }
    let mut failures = Vec::new();
    let bogp_dip = dips
        .iter()
        .find(|f| f.algorithm == Algorithm::BoGp && f.band == (100, 200));
    match bogp_dip {
        Some(f) => println!(
            "\ncheck: BO GP 100->200 dip detected on {}/{} (p={:.4}, cles={:.3})",
            f.benchmark, f.architecture, f.p_value, f.cles
        ),
        None => failures.push("BO GP 100->200 overfitting dip not detected".to_string()),
    }
    let rf_wtr = wtr.iter().find(|f| f.algorithm == Algorithm::RandomForest);
    match rf_wtr {
        Some(f) => println!(
            "check: RF worse-than-random detected on {}/{} at S={} (cles={:.3})",
            f.benchmark, f.architecture, f.band.0, f.cles
        ),
        None => failures.push("RF worse-than-random not detected".to_string()),
    }
    for quiet in [Algorithm::GeneticAlgorithm, Algorithm::RandomSearch] {
        let fired = dips
            .iter()
            .chain(wtr.iter())
            .filter(|f| f.algorithm == quiet)
            .count();
        if fired == 0 {
            println!("check: {} stayed quiet (0 verdicts)", quiet.name());
        } else {
            failures.push(format!(
                "{} fired {fired} verdict(s); expected zero false positives",
                quiet.name()
            ));
        }
    }
    if failures.is_empty() {
        println!("check: PASS");
    } else {
        for f in &failures {
            eprintln!("diagnostics_study: FAIL: {f}");
        }
        exit(1);
    }
}
