//! Extension experiment: anytime convergence trajectories.
//!
//! The paper compares algorithms at five discrete sample sizes; this
//! binary instead runs each technique once per repetition at the largest
//! budget (400) and reports the *incumbent* quality after every paper
//! checkpoint — the anytime view of the same data, which makes the
//! regime hand-off (BO early, GA late) visible within single runs.
//!
//! Note the caveat the paper's design deliberately avoids: a technique's
//! incumbent at sample 25 of a 400-budget run is not identical to a
//! dedicated 25-budget run (e.g. BO GP's 8% initialization differs), so
//! this figure complements rather than replaces Fig. 2/3.
//!
//! ```text
//! cargo run --release -p experiments --bin convergence [-- --reps N]
//! ```

use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration};
use autotune_stats::descriptive;
use gpu_sim::kernels::Benchmark;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::{arch, oracle};

const CHECKPOINTS: [usize; 5] = [25, 50, 100, 200, 400];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    let bench = Benchmark::Harris;
    let gpu = arch::gtx_980();
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let optimum = oracle::strided_optimum(bench.model().as_ref(), &gpu, 1);
    println!(
        "{} on {} — incumbent percent-of-optimum at each checkpoint of a 400-sample run\n",
        bench.name(),
        gpu.name
    );
    print!("{:<8}", "algo");
    for c in CHECKPOINTS {
        print!("{:>10}", format!("@{c}"));
    }
    println!();

    for algo in Algorithm::PAPER_FIVE {
        // Per-checkpoint populations across repetitions.
        let mut at: Vec<Vec<f64>> = vec![Vec::new(); CHECKPOINTS.len()];
        for rep in 0..reps {
            let seed = 5_000 + rep as u64;
            let mut sim = SimulatedKernel::new(bench.model(), gpu.clone(), seed);
            let ctx = TuneContext::new(&space, 400, seed);
            let ctx = if algo.is_smbo() {
                ctx
            } else {
                ctx.with_constraint(&constraint)
            };
            let result = algo
                .tuner()
                .tune(&ctx, &mut |cfg: &Configuration| sim.measure(cfg));
            let traj = result.history.incumbent_trajectory();
            for (slot, &cp) in at.iter_mut().zip(CHECKPOINTS.iter()) {
                let incumbent = traj[cp.min(traj.len()) - 1];
                slot.push(oracle::percent_of_optimum(optimum.time_ms, incumbent));
            }
        }
        print!("{:<8}", algo.name());
        for pop in &at {
            print!("{:>9.1}%", descriptive::median(pop));
        }
        println!();
    }
    println!(
        "\nReading across a row shows each technique's anytime behaviour; reading \
         down a column approximates the paper's per-sample-size comparison."
    );
}
