//! Generates the pre-computed sample datasets (paper section VI-B: 20,000
//! samples per benchmark and architecture) and writes them as JSON.

use experiments::cli;
use gpu_sim::dataset;
use gpu_sim::dataset::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    for &bench in &opts.config.benchmarks {
        for gpu in &opts.config.architectures {
            let seed = dataset::dataset_seed(bench, &gpu.name);
            let ds = Dataset::generate(
                bench,
                gpu,
                opts.config.dataset_size,
                opts.config.noise,
                seed,
            );
            let min = ds
                .entries
                .iter()
                .map(|e| e.runtime_ms)
                .fold(f64::INFINITY, f64::min);
            println!(
                "{} on {}: {} samples, best {:.4} ms",
                bench.name(),
                gpu.name,
                ds.len(),
                min
            );
            if opts.write_csv {
                let name = format!(
                    "dataset_{}_{}.json",
                    bench.name().to_lowercase(),
                    gpu.name.to_lowercase().replace(' ', "_")
                );
                cli::write_artifact(&opts.out_dir, &name, &ds.to_json()).expect("write dataset");
            }
        }
    }
}
