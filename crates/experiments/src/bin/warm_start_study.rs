//! The knowledge-base warm-start study: how many samples a seeded
//! search needs to match a cold budget-200 incumbent, per technique,
//! seeding mode (cold / warm / transfer) and sample size. Reported
//! beside the Fig. 4 artefacts; see `EXPERIMENTS.md`.

use experiments::cli;
use experiments::warmstart::{self, WarmStartConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = WarmStartConfig::from_study(&opts.config);
    eprintln!(
        "warm-start study: {} technique(s), {} benchmark(s), {} architecture(s), \
         {} reps/cell, donor budget {}",
        config.algorithms.len(),
        config.benchmarks.len(),
        config.architectures.len(),
        config.repetitions,
        config.donor_budget,
    );
    let results = warmstart::run_warm_start_study(&config);
    print!("{}", warmstart::warm_table(&results));
    if opts.write_csv {
        cli::write_artifact(
            &opts.out_dir,
            "warm_start.csv",
            &warmstart::warm_csv(&results),
        )
        .expect("write warm_start.csv");
        let json = serde_json::to_string_pretty(&results).expect("serialize results");
        cli::write_artifact(&opts.out_dir, "warm_start.json", &json)
            .expect("write warm_start.json");
    }
}
