//! Search-trace profiling: one traced 400-sample run per technique,
//! rendered three ways from a single command.
//!
//! * A per-budget convergence table — the incumbent's percent-of-optimum
//!   at the paper's sample sizes (25/50/100/200/400), read off each
//!   run's trial events. This is the anytime view of Fig. 4: BO GP's
//!   mid-budget dip shows up as a flat stretch of its row where GA and
//!   BO TPE keep improving.
//! * A where-did-the-time-go breakdown — total wall time per recorded
//!   phase span (`surrogate_fit`, `acquisition`, `objective`, ...),
//!   making visible that the SMBO methods spend their time in the model,
//!   not the objective.
//! * One Chrome-trace JSON file per technique under the output
//!   directory, loadable in chrome://tracing or Perfetto.
//!
//! ```text
//! cargo run --release -p experiments --bin profile [-- --out DIR --seed N]
//! ```

use autotune_core::trace::{self, TraceRecord, VecSink};
use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration};
use gpu_sim::kernels::Benchmark;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::{arch, oracle};
use std::path::PathBuf;
use std::time::Instant;

const CHECKPOINTS: [usize; 5] = [25, 50, 100, 200, 400];
const BUDGET: usize = 400;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn slug(name: &str) -> String {
    name.to_lowercase().replace(' ', "_")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = PathBuf::from(flag(&args, "--out").unwrap_or("results/profile"));
    let seed: u64 = flag(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9_000);
    std::fs::create_dir_all(&out).expect("create output directory");

    let bench = Benchmark::Harris;
    let gpu = arch::gtx_980();
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let optimum = oracle::strided_optimum(bench.model().as_ref(), &gpu, 1);

    println!(
        "{} on {} — one traced {BUDGET}-sample run per technique (seed {seed})\n",
        bench.name(),
        gpu.name
    );
    print!("{:<8}", "algo");
    for c in CHECKPOINTS {
        print!("{:>10}", format!("@{c}"));
    }
    println!();

    // (name, wall, phase durations), gathered for the breakdown section.
    let mut profiles = Vec::new();
    for algo in Algorithm::ALL {
        let sink = VecSink::new();
        let mut sim = SimulatedKernel::new(bench.model(), gpu.clone(), seed);
        let ctx = TuneContext::new(&space, BUDGET, seed).with_trace(&sink);
        let ctx = if algo.is_smbo() {
            ctx
        } else {
            ctx.with_constraint(&constraint)
        };
        let started = Instant::now();
        let _ = algo
            .tuner()
            .tune(&ctx, &mut |cfg: &Configuration| sim.measure(cfg));
        let wall = started.elapsed();
        let events = sink.take();

        // Incumbent trajectory straight off the trial events.
        let bests: Vec<f64> = events
            .iter()
            .filter_map(|e| match &e.record {
                TraceRecord::Trial { best, .. } => Some(*best),
                _ => None,
            })
            .collect();
        print!("{:<8}", algo.name());
        for cp in CHECKPOINTS {
            let incumbent = bests[cp.min(bests.len()) - 1];
            print!(
                "{:>9.1}%",
                oracle::percent_of_optimum(optimum.time_ms, incumbent)
            );
        }
        println!();

        let path = out.join(format!("trace_{}.json", slug(algo.name())));
        std::fs::write(&path, trace::chrome_trace_json(&events)).expect("write chrome trace");
        profiles.push((algo.name(), wall, trace::phase_durations(&events)));
    }

    println!("\nWhere the time goes (per phase, totals over the whole run):");
    for (name, wall, phases) in &profiles {
        let wall_us = wall.as_micros().max(1) as f64;
        print!("  {:<8} wall {:>8.1}ms |", name, wall_us / 1e3);
        if phases.is_empty() {
            print!(" (no spans recorded)");
        }
        for (phase, stat) in phases {
            print!(
                " {phase} {}x {:.1}ms ({:.0}%)",
                stat.count,
                stat.total_us as f64 / 1e3,
                100.0 * stat.total_us as f64 / wall_us
            );
        }
        println!();
    }
    println!(
        "\nChrome traces written to {} (open in chrome://tracing or Perfetto).\n\
         Reading the BO GP row against GA/BO TPE between @50 and @200 shows the\n\
         paper's Fig. 4 GP dip as a stalled anytime curve.",
        out.display()
    );
}
