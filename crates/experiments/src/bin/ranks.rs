//! Extension analysis: Friedman rank test across the study grid.
//!
//! The paper tests each cell against RS with Mann-Whitney U; the natural
//! whole-grid question — *is any algorithm's advantage consistent across
//! benchmarks and architectures?* — is the textbook use case for the
//! Friedman rank test with Nemenyi post-hoc critical differences
//! (Demšar 2006). Blocks are the nine (benchmark, architecture) panels,
//! treatments the algorithms, costs the per-panel median runtimes.
//!
//! Reads a saved `study_results.json` when given one, otherwise runs a
//! fresh study at the requested scale:
//!
//! ```text
//! cargo run --release -p experiments --bin ranks -- --from results/study_results.json
//! cargo run --release -p experiments --bin ranks -- --scale 0.02
//! ```

use autotune_stats::friedman;
use experiments::cli;
use experiments::grid::{run_study, CellKey, StudyResults};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let results: StudyResults = if let Some(i) = args.iter().position(|a| a == "--from") {
        let path = args.get(i + 1).expect("--from needs a path");
        let json =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        StudyResults::from_json(&json).expect("valid study_results.json")
    } else {
        let opts = match cli::parse(&args) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        run_study(&opts.config)
    };

    let algos = results.algorithms();
    let pairs = results.pairs();
    if pairs.len() < 2 {
        eprintln!(
            "Friedman needs at least 2 (benchmark, architecture) panels; got {}",
            pairs.len()
        );
        std::process::exit(2);
    }
    println!(
        "Friedman rank analysis over {} panels x {} algorithms (lower rank = faster)\n",
        pairs.len(),
        algos.len()
    );

    for &s in &results.sample_sizes {
        // Cost matrix: one row per panel, one column per algorithm.
        let costs: Vec<Vec<f64>> = pairs
            .iter()
            .map(|(bench, arch_name)| {
                algos
                    .iter()
                    .map(|&algorithm| {
                        results
                            .cell(&CellKey {
                                algorithm,
                                benchmark: bench.clone(),
                                architecture: arch_name.clone(),
                                sample_size: s,
                            })
                            .map(|c| c.median_ms())
                            .expect("complete grid")
                    })
                    .collect()
            })
            .collect();
        let r = friedman::friedman_test(&costs);
        let cd = r.nemenyi_critical_difference();
        print!(
            "S={s:<4} chi2={:<7.2} p={:<9.2e} CD={cd:.2} | ",
            r.statistic, r.p_value
        );
        let mut ranked: Vec<(usize, f64)> = r.mean_ranks.iter().cloned().enumerate().collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ranks"));
        let best_rank = ranked[0].1;
        for (idx, rank) in ranked {
            // Mark algorithms statistically indistinguishable from the
            // leader (within the critical difference).
            let marker = if rank - best_rank <= cd { "*" } else { " " };
            print!("{}={rank:.2}{marker} ", algos[idx].name());
        }
        println!();
    }
    println!("\n'*' marks algorithms within the Nemenyi critical difference of the leader.");
}
