//! Reproduces **Table I**: the survey of previous experimental designs,
//! with this study's row derived from the implemented design.

use experiments::design::ExperimentDesign;
use experiments::table1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let design = if args.iter().any(|a| a == "--full") {
        ExperimentDesign::paper()
    } else {
        // Table I describes the paper's design; default to full scale.
        ExperimentDesign::paper()
    };
    print!("{}", table1::render(&design));
}
