//! Reproduces **Fig. 4b**: Common Language Effect Size over Random
//! Search (probability an algorithm's run beats an RS run), with
//! Mann-Whitney U significance at the paper's alpha = 0.01.

use experiments::{cli, grid, metrics, render};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let results = grid::run_study(&opts.config);
    let panels = metrics::fig4b(&results);
    for (p, cells) in &panels {
        print!("{}", render::cles_heatmap(p, cells));
        println!();
    }
    if opts.write_csv {
        cli::write_artifact(&opts.out_dir, "fig4b.csv", &render::cles_csv(&panels))
            .expect("write fig4b.csv");
    }
}
