//! `observe` — plain-ANSI terminal dashboard for the observatory.
//!
//! ```text
//! observe (--addr HOST:PORT | --journal FILE) [--once] [--interval MS]
//! ```
//!
//! Two data sources:
//!
//! * `--addr` polls a live `tuned` server's `metrics`, `timeseries`,
//!   `health`, and `logs` ops: counters as parseable `name value`
//!   lines, request/report activity sparklines from the sampled time
//!   series, a per-phase search time breakdown from the
//!   `search_phase_seconds_*` histograms, the scheduler's shard depths
//!   and park/resume counters, the server's self-assessed health (SLO
//!   budgets, availability, write-path status), and the newest
//!   structured log records with their correlation ids.
//! * `--journal` replays a study outcome journal through a live
//!   [`StudyMonitor`](experiments::StudyMonitor): convergence medians
//!   per cell and the running CLES/significance matrix against Random
//!   Search, exactly as the running study would have shown it.
//!
//! With `--once` the dashboard renders a single frame to stdout and
//! exits (the scripting path: every counter line is `name value`);
//! otherwise it clears the screen and refreshes every `--interval` ms
//! (default 1000), reconnecting per tick so a restarted server is
//! picked up.

use autotune_kb::KbStats;
use autotune_service::metrics::MetricsSnapshot;
use autotune_service::{Client, HealthReport, HealthStatus, LogRecord, TimePoint, SHARD_COUNT};
use experiments::journal;
use experiments::monitor::StudyMonitor;
use experiments::render::sparkline;
use std::fmt::Write as _;
use std::path::Path;
use std::process::exit;
use std::time::Duration;

struct Args {
    addr: Option<String>,
    journal: Option<String>,
    once: bool,
    interval: Duration,
}

fn usage(code: i32) -> ! {
    eprintln!("usage: observe (--addr HOST:PORT | --journal FILE) [--once] [--interval MS]");
    eprintln!();
    eprintln!("  --addr HOST:PORT  poll a tuned server's metrics + timeseries ops");
    eprintln!("  --journal FILE    replay a study outcome journal into a live monitor");
    eprintln!("  --once            render one frame to stdout and exit");
    eprintln!("  --interval MS     refresh period in live mode (default 1000)");
    exit(code)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(parsed) => parsed,
        None => {
            eprintln!("observe: {flag} needs a valid value");
            usage(2)
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        journal: None,
        once: false,
        interval: Duration::from_millis(1000),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => match argv.next() {
                Some(v) => args.addr = Some(v),
                None => usage(2),
            },
            "--journal" => match argv.next() {
                Some(v) => args.journal = Some(v),
                None => usage(2),
            },
            "--once" => args.once = true,
            "--interval" => {
                args.interval = Duration::from_millis(parse(&flag, argv.next()));
            }
            "--help" | "-h" => usage(0),
            _ => usage(2),
        }
    }
    if args.addr.is_some() == args.journal.is_some() {
        eprintln!("observe: exactly one of --addr / --journal is required");
        usage(2)
    }
    args
}

/// The gauges whose per-sample deltas make useful activity sparklines.
const ACTIVITY_GAUGES: [&str; 3] = ["server_requests", "engine_suggests", "engine_reports"];

/// At most this many trailing samples feed each sparkline.
const SPARK_WINDOW: usize = 60;

/// How many of the newest log records the dashboard shows.
const LOG_TAIL: usize = 8;

/// One dashboard frame for a live server.
fn render_server_frame(
    snapshot: &MetricsSnapshot,
    points: &[TimePoint],
    health: Option<&HealthReport>,
    logs: &[LogRecord],
    kb: Option<&KbStats>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tuned observatory: uptime {:.1}s, snapshot {}, samples {}",
        snapshot.uptime_seconds,
        snapshot.snapshot_seq,
        points.len()
    );

    out.push_str("\n# counters\n");
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "{name} {value}");
    }

    out.push_str("\n# activity (per-sample deltas, oldest left)\n");
    let window_start = points.len().saturating_sub(SPARK_WINDOW + 1);
    let window = &points[window_start..];
    for gauge in ACTIVITY_GAUGES {
        let deltas: Vec<f64> = window
            .windows(2)
            .map(|pair| pair[1].gauge(gauge).unwrap_or(0.0) - pair[0].gauge(gauge).unwrap_or(0.0))
            .collect();
        if deltas.is_empty() {
            let _ = writeln!(out, "{gauge:<24} (waiting for samples)");
        } else {
            let _ = writeln!(out, "{gauge:<24} {}", sparkline(&deltas));
        }
    }

    out.push_str("\n# search phase time\n");
    let _ = writeln!(
        out,
        "{:<28}{:>10}{:>14}{:>14}",
        "phase", "count", "total_s", "mean_s"
    );
    for (name, hist) in &snapshot.histograms {
        let Some(phase) = name.strip_prefix("search_phase_seconds_") else {
            continue;
        };
        let mean = if hist.count > 0 {
            hist.sum_seconds / hist.count as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{phase:<28}{:>10}{:>14.6}{:>14.6}",
            hist.count, hist.sum_seconds, mean
        );
    }

    out.push_str("\n# scheduler\n");
    let depths: Vec<f64> = (0..SHARD_COUNT)
        .map(|i| {
            snapshot
                .counter(&format!("scheduler_shard_depth_{i}"))
                .unwrap_or(0) as f64
        })
        .collect();
    let _ = writeln!(
        out,
        "shard_depth              {} (total {})",
        sparkline(&depths),
        depths.iter().sum::<f64>() as u64
    );
    for counter in [
        "scheduler_resident_engines",
        "scheduler_parked_sessions",
        "sessions_parked",
        "sessions_resumed",
        "engine_batch_suggests",
        "engine_batch_reports",
    ] {
        let _ = writeln!(
            out,
            "{counter:<24} {}",
            snapshot.counter(counter).unwrap_or(0)
        );
    }

    // Older servers predate the WAL and export none of its
    // instruments; the panel disappears instead of rendering zeros.
    if let Some(appends) = snapshot.counter("wal_appends") {
        out.push_str("\n# write path (wal)\n");
        let fsyncs = snapshot.counter("wal_fsyncs").unwrap_or(0);
        let amortization = if fsyncs > 0 {
            appends as f64 / fsyncs as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "appends {appends}, fsyncs {fsyncs} ({amortization:.1} records/fsync)"
        );
        if let Some(batches) = snapshot.histogram("wal_batch_records") {
            // observe_value stores the batch size in the "seconds"
            // slot, so sum_seconds is total records across batches.
            let mean = if batches.count > 0 {
                batches.sum_seconds / batches.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "group-commit batches {} (mean size {mean:.1})",
                batches.count
            );
        }
        let _ = writeln!(
            out,
            "checkpoints {}, segments compacted {}, sealed {}, active {} B, checkpoint age {} s",
            snapshot.counter("checkpoints_total").unwrap_or(0),
            snapshot.counter("segments_compacted").unwrap_or(0),
            snapshot.counter("wal_segments_sealed").unwrap_or(0),
            snapshot.counter("wal_active_segment_bytes").unwrap_or(0),
            snapshot.counter("wal_checkpoint_age_seconds").unwrap_or(0),
        );
    }

    // Knowledge-base traffic plus (when the `kb` op answers) the store's
    // shape. Pre-kb servers export neither and the panel disappears.
    if let Some(hits) = snapshot.counter("kb_hits") {
        out.push_str("\n# knowledge base\n");
        let _ = writeln!(
            out,
            "hits {hits}, misses {}, seeded sessions {}, append failures {}",
            snapshot.counter("kb_misses").unwrap_or(0),
            snapshot.counter("kb_seeded_sessions").unwrap_or(0),
            snapshot.counter("kb_append_failures").unwrap_or(0),
        );
        if let Some(stats) = kb {
            let _ = writeln!(
                out,
                "store: {} studies ({} converged), {} problems, {} families, {} evaluations",
                stats.studies,
                stats.converged_studies,
                stats.problems,
                stats.families,
                stats.evaluations
            );
        }
    }

    // Per-session search-health rollup; absent on pre-diagnostics
    // servers.
    if let Some(pathologies) = snapshot.counter("search_health_pathologies") {
        out.push_str("\n# search health\n");
        let enabled = health
            .and_then(|h| h.search.as_ref())
            .map(|s| s.enabled)
            .unwrap_or(false);
        let _ = writeln!(
            out,
            "diagnostics {}: {} diagnose(s) served, {pathologies} pathology verdict(s), {} session(s) flagged",
            if enabled { "on" } else { "off" },
            snapshot.counter("search_health_diagnoses").unwrap_or(0),
            snapshot
                .counter("search_health_sessions_flagged")
                .unwrap_or(0),
        );
    }

    if let Some(health) = health {
        out.push_str("\n# health\n");
        let status = match health.status {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "DEGRADED",
        };
        let _ = writeln!(
            out,
            "status {status}, live {}, ready {}, availability {:.3}% over {} request(s){}",
            health.live,
            health.ready,
            health.availability.ratio * 100.0,
            health.availability.window_requests,
            if health.availability.rolling {
                " (rolling)"
            } else {
                " (lifetime)"
            }
        );
        for slo in &health.slos {
            let p99 = slo
                .p99_seconds
                .map_or_else(|| "inf".to_string(), |p| format!("{p:.4}s"));
            let _ = writeln!(
                out,
                "slo {:<28} p99 {p99:>9} target {:.3}s budget {:>5.1}%{}",
                slo.histogram,
                slo.target_seconds,
                slo.budget_remaining * 100.0,
                if slo.breached { "  BREACHED" } else { "" }
            );
        }
        let sat = &health.saturation;
        let _ = writeln!(
            out,
            "engines {}/{} ({:.0}% utilized), {} open, {} parked, max shard depth {}",
            sat.resident_engines,
            sat.max_resident,
            sat.utilization * 100.0,
            sat.open_sessions,
            sat.parked_sessions,
            sat.max_shard_depth
        );
        let w = &health.writes;
        let _ = writeln!(
            out,
            "writes {}: journal {}/{} failed, kb {} failed, log sink {} failed",
            if w.healthy { "healthy" } else { "FAILING" },
            w.journal_append_failures,
            w.journal_appends,
            w.kb_append_failures,
            w.log_sink_failures
        );
        if let Some(age) = w.wal_checkpoint_age_seconds {
            let _ = writeln!(
                out,
                "wal: {} appends, checkpoint age {age:.0}s{}",
                w.wal_appends,
                if w.wal_stale { "  STALE" } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "log: {} records, {} rate-dropped, {} slow ops",
            health.log.logged, health.log.dropped, health.log.slow_ops
        );
    }

    if !logs.is_empty() {
        out.push_str("\n# log tail (newest last)\n");
        for record in logs {
            let session = record
                .session
                .as_deref()
                .map_or_else(String::new, |s| format!(" {s}:"));
            let rid = record
                .rid
                .as_deref()
                .map_or_else(String::new, |r| format!(" (rid {r})"));
            let _ = writeln!(
                out,
                "[{:>5} {}]{session} {}{rid}",
                record.seq, record.level, record.message
            );
        }
    }
    out
}

fn server_frame(addr: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let snapshot = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    let points = client
        .timeseries()
        .map_err(|e| format!("timeseries: {e}"))?;
    // Pre-correlation servers answer these with protocol errors; the
    // frame degrades to the classic panels instead of failing.
    let health = client.health().ok();
    let logs = client.log_tail(LOG_TAIL).unwrap_or_default();
    let kb = client.kb_stats().ok();
    Ok(render_server_frame(
        &snapshot,
        &points,
        health.as_ref(),
        &logs,
        kb.as_ref(),
    ))
}

fn journal_frame(path: &str) -> Result<String, String> {
    let cells = journal::load(Path::new(path)).map_err(|e| format!("load {path}: {e}"))?;
    let monitor = StudyMonitor::default();
    // Deterministic replay order; the monitor's test statistics are
    // order-independent, so this only pins the P² quantile estimates.
    let mut records: Vec<_> = cells.values().flatten().collect();
    records.sort_by_key(|r| (r.key.clone(), r.repetition));
    for record in &records {
        monitor.observe_record(record);
    }
    let mut out = monitor.render();
    out.push_str("\n# convergence (final runtimes in journal order, oldest left)\n");
    let series: Vec<f64> = records.iter().map(|r| r.outcome.final_ms).collect();
    let tail = &series[series.len().saturating_sub(SPARK_WINDOW)..];
    let _ = writeln!(out, "final_ms {}", sparkline(tail));
    Ok(out)
}

fn frame(args: &Args) -> Result<String, String> {
    match (&args.addr, &args.journal) {
        (Some(addr), None) => server_frame(addr),
        (None, Some(path)) => journal_frame(path),
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() {
    let args = parse_args();
    if args.once {
        match frame(&args) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("observe: {e}");
                exit(1);
            }
        }
        return;
    }
    loop {
        match frame(&args) {
            Ok(text) => {
                // Clear screen + home, then the frame.
                print!("\x1b[2J\x1b[H{text}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Err(e) => eprintln!("observe: {e} (retrying)"),
        }
        std::thread::sleep(args.interval);
    }
}
