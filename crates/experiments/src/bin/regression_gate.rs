//! `regression-gate` — statistical pass/fail comparison of two study
//! result files for CI.
//!
//! ```text
//! regression-gate --baseline FILE --fresh FILE
//!                 [--inject F] [--alpha A] [--min-ratio R]
//!                 [--resamples N] [--seed N]
//! ```
//!
//! Both files are `StudyResults` JSON as written by the `study` binary
//! (and committed as `BENCH_baseline.json`). A cell fails only when the
//! slowdown is statistically significant (one-sided Mann-Whitney U),
//! practically large (median ratio above the floor), and stable (the
//! bootstrap CI of the fresh median clears the baseline median) — see
//! the `gate` module docs. `--inject F` multiplies every fresh runtime
//! by `F` before comparing: the self-test hook CI uses to prove the
//! gate actually trips.
//!
//! Exit status: `0` pass, `1` statistically significant slowdown (or
//! lost cell coverage), `2` usage or I/O error.

use experiments::gate::{self, GateConfig};
use experiments::StudyResults;
use std::process::exit;

struct Args {
    baseline: Option<String>,
    fresh: Option<String>,
    inject: Option<f64>,
    config: GateConfig,
}

fn usage(code: i32) -> ! {
    let defaults = GateConfig::default();
    eprintln!("usage: regression-gate --baseline FILE --fresh FILE");
    eprintln!("                       [--inject F] [--alpha A] [--min-ratio R]");
    eprintln!("                       [--resamples N] [--seed N]");
    eprintln!();
    eprintln!("  --baseline FILE  committed StudyResults JSON to compare against");
    eprintln!("  --fresh FILE     freshly produced StudyResults JSON");
    eprintln!("  --inject F       multiply fresh runtimes by F first (self-test)");
    eprintln!(
        "  --alpha A        one-sided MWU significance threshold (default {})",
        defaults.alpha
    );
    eprintln!(
        "  --min-ratio R    median-ratio slowdown floor (default {})",
        defaults.min_ratio
    );
    eprintln!(
        "  --resamples N    bootstrap resamples for the fresh-median CI (default {})",
        defaults.resamples
    );
    eprintln!(
        "  --seed N         bootstrap RNG seed (default {})",
        defaults.seed
    );
    exit(code)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(parsed) => parsed,
        None => {
            eprintln!("regression-gate: {flag} needs a valid value");
            usage(2)
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: None,
        fresh: None,
        inject: None,
        config: GateConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--baseline" => match argv.next() {
                Some(v) => args.baseline = Some(v),
                None => usage(2),
            },
            "--fresh" => match argv.next() {
                Some(v) => args.fresh = Some(v),
                None => usage(2),
            },
            "--inject" => args.inject = Some(parse(&flag, argv.next())),
            "--alpha" => args.config.alpha = parse(&flag, argv.next()),
            "--min-ratio" => args.config.min_ratio = parse(&flag, argv.next()),
            "--resamples" => args.config.resamples = parse(&flag, argv.next()),
            "--seed" => args.config.seed = parse(&flag, argv.next()),
            "--help" | "-h" => usage(0),
            _ => usage(2),
        }
    }
    if args.baseline.is_none() || args.fresh.is_none() {
        eprintln!("regression-gate: --baseline and --fresh are both required");
        usage(2)
    }
    args
}

fn load(path: &str) -> StudyResults {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("regression-gate: cannot read {path}: {e}");
            exit(2);
        }
    };
    match StudyResults::from_json(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("regression-gate: {path} is not StudyResults JSON: {e}");
            exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let baseline = load(args.baseline.as_deref().expect("validated"));
    let mut fresh = load(args.fresh.as_deref().expect("validated"));
    if let Some(factor) = args.inject {
        if factor <= 0.0 {
            eprintln!("regression-gate: --inject must be positive");
            usage(2)
        }
        eprintln!("regression-gate: injecting a uniform x{factor} slowdown into the fresh run");
        gate::inject_slowdown(&mut fresh, factor);
    }
    let report = gate::compare(&baseline, &fresh, &args.config);
    print!("{}", report.render());
    exit(if report.failed() { 1 } else { 0 })
}
