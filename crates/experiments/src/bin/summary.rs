//! Runs the whole study once and emits every figure and table, plus the
//! raw per-cell results as JSON — the one-command reproduction driver.

use experiments::design;
use experiments::{cli, grid, metrics, render, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "study: {} algorithms x {} benchmarks x {} architectures, scale {} (paper total would be {} samples)",
        opts.config.algorithms.len(),
        opts.config.benchmarks.len(),
        opts.config.architectures.len(),
        opts.config.design.scale,
        design::paper_total_samples(),
    );

    let results = grid::run_study(&opts.config);

    println!("\n################ Table I ################");
    print!("{}", table1::render(&opts.config.design));

    println!("\n################ Fig. 2: percent of optimum ################");
    let fig2 = metrics::fig2(&results);
    for p in &fig2 {
        print!("{}", render::heatmap(p, "%"));
        println!();
    }

    println!("################ Fig. 3: aggregate mean ± CI ################");
    let fig3 = metrics::fig3(&results, 0.95, opts.config.seed);
    print!("{}", render::aggregate_table(&fig3));

    println!("\n################ Fig. 4a: median speedup over RS ################");
    let fig4a = metrics::fig4a(&results);
    for p in &fig4a {
        print!("{}", render::heatmap(p, "x"));
        println!();
    }

    println!("################ Fig. 4b: CLES over RS ################");
    let fig4b = metrics::fig4b(&results);
    for (p, cells) in &fig4b {
        print!("{}", render::cles_heatmap(p, cells));
        println!();
    }

    if opts.write_csv {
        cli::write_artifact(&opts.out_dir, "fig2.csv", &render::heatmaps_csv(&fig2)).unwrap();
        cli::write_artifact(&opts.out_dir, "fig3.csv", &render::aggregate_csv(&fig3)).unwrap();
        cli::write_artifact(&opts.out_dir, "fig4a.csv", &render::heatmaps_csv(&fig4a)).unwrap();
        cli::write_artifact(&opts.out_dir, "fig4b.csv", &render::cles_csv(&fig4b)).unwrap();
        cli::write_artifact(&opts.out_dir, "study_results.json", &results.to_json()).unwrap();
        cli::write_artifact(
            &opts.out_dir,
            "table1.txt",
            &table1::render(&opts.config.design),
        )
        .unwrap();
    }
}
