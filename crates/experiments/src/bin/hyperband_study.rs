//! Future-work experiment: HyperBand and BOHB against the paper's
//! roster at equivalent budgets.
//!
//! The paper's §VIII-A names "HyperBand(HB) and Bayesian Optimization
//! HyperBand (BOHB)" as the techniques of special interest for follow-up
//! work. This binary runs them (with problem-size fidelity, see
//! `experiments::multifidelity`) next to RS / GA / BO GP / BO TPE at the
//! same full-evaluation-equivalent budgets and prints median
//! percent-of-optimum per budget.
//!
//! ```text
//! cargo run --release -p experiments --bin hyperband_study [-- --reps N]
//! ```

use autotune_core::bohb::Bohb;
use autotune_core::hyperband::HyperBand;
use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration};
use autotune_stats::descriptive;
use experiments::multifidelity::MfSimulatedKernel;
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::{arch, oracle};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);

    let bench = Benchmark::Mandelbrot;
    let gpu = arch::titan_v();
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let optimum = oracle::strided_optimum(bench.model().as_ref(), &gpu, 1);
    println!(
        "{} on {} — optimum {:.4} ms; {reps} repetitions per cell\n",
        bench.name(),
        gpu.name,
        optimum.time_ms
    );

    let budgets = [25usize, 50, 100, 200];
    print!("{:<10}", "technique");
    for b in budgets {
        print!("{:>10}", format!("B={b}"));
    }
    println!();

    // Classic single-fidelity techniques.
    for algo in [
        Algorithm::RandomSearch,
        Algorithm::GeneticAlgorithm,
        Algorithm::BoGp,
        Algorithm::BoTpe,
    ] {
        print!("{:<10}", algo.name());
        for budget in budgets {
            let mut pct = Vec::with_capacity(reps);
            for rep in 0..reps {
                let seed = 9_000 + rep as u64;
                let mut sim = SimulatedKernel::new(bench.model(), gpu.clone(), seed);
                let ctx = TuneContext::new(&space, budget, seed);
                let ctx = if algo.is_smbo() {
                    ctx
                } else {
                    ctx.with_constraint(&constraint)
                };
                let r = algo
                    .tuner()
                    .tune(&ctx, &mut |cfg: &Configuration| sim.measure(cfg));
                let final_ms = sim.measure_final(&r.best.config);
                pct.push(oracle::percent_of_optimum(optimum.time_ms, final_ms));
            }
            print!("{:>9.1}%", descriptive::median(&pct));
        }
        println!();
    }

    // Multi-fidelity techniques at the same full-evaluation budgets.
    for mf_name in ["HB", "BOHB"] {
        print!("{mf_name:<10}");
        for budget in budgets {
            let mut pct = Vec::with_capacity(reps);
            for rep in 0..reps {
                let seed = 9_000 + rep as u64;
                let mut mf =
                    MfSimulatedKernel::new(bench, gpu.clone(), NoiseModel::study_default(), seed);
                let r = match mf_name {
                    "HB" => HyperBand::default().tune_mf(&space, &mut mf, budget as f64, seed),
                    _ => Bohb::default().tune_mf(&space, &mut mf, budget as f64, seed),
                };
                // Final protocol on the full-size problem.
                let mut sim = SimulatedKernel::new(bench.model(), gpu.clone(), seed ^ 0xf1);
                let final_ms = sim.measure_final(&r.best.config);
                pct.push(oracle::percent_of_optimum(optimum.time_ms, final_ms));
            }
            print!("{:>9.1}%", descriptive::median(&pct));
        }
        println!();
    }
    println!(
        "\nHB/BOHB spend the same full-evaluation-equivalent budget spread over \
         cheap small-image runs (paper future work, §VIII-A)."
    );
}
