//! Quality ablations for the design choices DESIGN.md calls out.
//!
//! For each variant of a design choice, runs the affected tuner several
//! times on a fixed (benchmark, architecture) pair and reports the
//! median percent-of-optimum — the *quality* counterpart to the *cost*
//! measurements in `crates/bench/benches/ablations.rs`.
//!
//! ```text
//! cargo run --release -p experiments --bin ablations [-- --reps N --budget N]
//! ```

use autotune_core::bo_gp::{BayesOptGp, BoGpParams};
use autotune_core::bo_tpe::{BayesOptTpe, TpeParams};
use autotune_core::ga::{GaParams, GeneticAlgorithm};
use autotune_core::{TuneContext, Tuner};
use autotune_space::{imagecl, Configuration};
use autotune_stats::descriptive;
use autotune_surrogates::acquisition::Acquisition;
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::{arch, oracle, SimulatedKernel};

struct Fixture {
    bench: Benchmark,
    gpu: gpu_sim::GpuArchitecture,
    optimum_ms: f64,
    budget: usize,
    reps: usize,
}

impl Fixture {
    fn median_pct(&self, tuner: &dyn Tuner, constrained: bool, noise: NoiseModel) -> f64 {
        let space = imagecl::space();
        let constraint = imagecl::constraint();
        let runs: Vec<f64> = (0..self.reps)
            .map(|rep| {
                let seed = 7_000 + rep as u64;
                let mut sim =
                    SimulatedKernel::with_noise(self.bench.model(), self.gpu.clone(), noise, seed);
                let ctx = TuneContext::new(&space, self.budget, seed);
                let ctx = if constrained {
                    ctx.with_constraint(&constraint)
                } else {
                    ctx
                };
                let result = tuner.tune(&ctx, &mut |cfg: &Configuration| sim.measure(cfg));
                let final_ms = sim.measure_final(&result.best.config);
                oracle::percent_of_optimum(self.optimum_ms, final_ms)
            })
            .collect();
        descriptive::median(&runs)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let bench = Benchmark::Harris;
    let gpu = arch::gtx_980();
    let optimum = oracle::strided_optimum(bench.model().as_ref(), &gpu, 1);
    let fx = Fixture {
        bench,
        gpu: gpu.clone(),
        optimum_ms: optimum.time_ms,
        budget: get("--budget", 50),
        reps: get("--reps", 9),
    };
    println!(
        "ablations on {} / {} at budget {} ({} reps); optimum {:.4} ms\n",
        fx.bench.name(),
        fx.gpu.name,
        fx.budget,
        fx.reps,
        fx.optimum_ms
    );

    println!("-- BO GP hyperparameter refit cadence --");
    for refit in [5usize, 10, 25, 50] {
        let t = BayesOptGp {
            params: BoGpParams {
                refit_every: refit,
                ..BoGpParams::default()
            },
        };
        println!(
            "  refit_every={refit:<3} -> {:.1}% of optimum",
            fx.median_pct(&t, false, NoiseModel::study_default())
        );
    }

    println!("-- BO GP acquisition function (paper uses EI) --");
    let acqs: [(&str, Acquisition); 3] = [
        ("EI ", Acquisition::ExpectedImprovement { xi: 0.01 }),
        ("LCB", Acquisition::LowerConfidenceBound { kappa: 1.96 }),
        ("POI", Acquisition::ProbabilityOfImprovement { xi: 0.01 }),
    ];
    for (name, acq) in acqs {
        let t = BayesOptGp {
            params: BoGpParams {
                acquisition: acq,
                ..BoGpParams::default()
            },
        };
        println!(
            "  {name} -> {:.1}% of optimum",
            fx.median_pct(&t, false, NoiseModel::study_default())
        );
    }

    println!("-- BO GP initialization: i.i.d. vs Latin hypercube --");
    for lhs in [false, true] {
        let t = BayesOptGp {
            params: BoGpParams {
                lhs_init: lhs,
                ..BoGpParams::default()
            },
        };
        println!(
            "  lhs_init={lhs:<5} -> {:.1}% of optimum",
            fx.median_pct(&t, false, NoiseModel::study_default())
        );
    }

    println!("-- TPE gamma quantile (HyperOpt uses 0.25) --");
    for gamma in [0.10f64, 0.15, 0.25, 0.50] {
        let t = BayesOptTpe {
            params: TpeParams {
                gamma,
                ..TpeParams::default()
            },
        };
        println!(
            "  gamma={gamma:<5} -> {:.1}% of optimum",
            fx.median_pct(&t, false, NoiseModel::study_default())
        );
    }

    println!("-- GA population size / mutation rate --");
    for (pop, mutation) in [
        (10usize, 0.1f64),
        (20, 0.1),
        (40, 0.1),
        (20, 0.02),
        (20, 0.3),
    ] {
        let t = GeneticAlgorithm {
            params: GaParams {
                population: pop,
                mutation_rate: mutation,
                ..GaParams::default()
            },
        };
        println!(
            "  pop={pop:<3} mut={mutation:<5} -> {:.1}% of optimum",
            fx.median_pct(&t, true, NoiseModel::study_default())
        );
    }

    println!("-- constraint specification for GA (the paper's non-SMBO design point) --");
    let ga = GeneticAlgorithm::default();
    println!(
        "  with constraint    -> {:.1}% of optimum",
        fx.median_pct(&ga, true, NoiseModel::study_default())
    );
    println!(
        "  without constraint -> {:.1}% of optimum",
        fx.median_pct(&ga, false, NoiseModel::study_default())
    );

    println!("-- measurement-noise level vs GA result quality --");
    for scale in [0.0f64, 0.5, 1.0, 2.0, 4.0] {
        println!(
            "  noise x{scale:<4} -> {:.1}% of optimum",
            fx.median_pct(&ga, true, NoiseModel::scaled(scale))
        );
    }
}
