//! Future-work experiment: sensitivity to the input data size.
//!
//! The paper fixes `X = Y = 8192` and asks (§VIII-A) whether "different
//! input data sets to the benchmarks could provide insightful results".
//! This binary sweeps the image size from 1024² to 8192², reports how
//! the oracle optimum *configuration* drifts, and re-ranks the search
//! techniques at a fixed budget per size.
//!
//! ```text
//! cargo run --release -p experiments --bin input_sizes [-- --reps N --budget N]
//! ```

use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration};
use autotune_stats::descriptive;
use gpu_sim::kernels::Benchmark;
use gpu_sim::launch::ProblemSize;
use gpu_sim::noise::NoiseModel;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::{arch, model};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let reps = get("--reps", 7);
    let budget = get("--budget", 50);

    let bench = Benchmark::Harris;
    let gpu = arch::rtx_titan();
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let roster = [
        Algorithm::RandomSearch,
        Algorithm::GeneticAlgorithm,
        Algorithm::BoGp,
        Algorithm::BoTpe,
    ];

    println!(
        "{} on {} — input-size sweep, budget {budget}, {reps} reps\n",
        bench.name(),
        gpu.name
    );

    for edge in [1024u64, 2048, 4096, 8192] {
        let problem = ProblemSize::new_2d(edge, edge);
        let kernel = bench.model_with_problem(problem);

        // Oracle optimum for this size (strided for the smaller scan).
        let mut best = f64::INFINITY;
        let mut best_cfg = None;
        let mut idx = 0;
        while idx < space.size() {
            let cfg = space.config_at(idx);
            let t = model::kernel_time_ms(kernel.as_ref(), &gpu, &cfg);
            if t < best {
                best = t;
                best_cfg = Some(cfg);
            }
            idx += 17;
        }
        let best_cfg = best_cfg.expect("non-empty space");
        println!("--- {edge}x{edge}: optimum {best:.4} ms at {best_cfg} ---");

        print!("    ");
        for algo in roster {
            let mut pct = Vec::with_capacity(reps);
            for rep in 0..reps {
                let seed = edge ^ (rep as u64) << 8;
                let mut sim =
                    SimulatedKernel::new(bench.model_with_problem(problem), gpu.clone(), seed);
                let ctx = TuneContext::new(&space, budget, seed);
                let ctx = if algo.is_smbo() {
                    ctx
                } else {
                    ctx.with_constraint(&constraint)
                };
                let r = algo
                    .tuner()
                    .tune(&ctx, &mut |cfg: &Configuration| sim.measure(cfg));
                let final_ms = {
                    let mut fresh = SimulatedKernel::with_noise(
                        bench.model_with_problem(problem),
                        gpu.clone(),
                        NoiseModel::study_default(),
                        seed ^ 0xf1,
                    );
                    fresh.measure_final(&r.best.config)
                };
                pct.push(100.0 * best / final_ms);
            }
            print!("{}={:>5.1}%  ", algo.name(), descriptive::median(&pct));
        }
        println!("\n");
    }
    println!(
        "Smaller images shrink the grid: tail-wave quantization moves the \
         optimum toward smaller tiles, and the algorithm ranking shifts with it."
    );
}
