//! Extension experiment: how robust is each search technique to
//! measurement noise?
//!
//! The paper's protocol deliberately samples each configuration once
//! during the search "to ... test the models for how well they handle
//! noise in the samples" (§VI-A). This binary makes that stress explicit:
//! it sweeps the measurement-noise scale from 0 (oracle-clean) to 4x the
//! study default and reports each technique's median percent-of-optimum,
//! showing which searchers degrade gracefully.
//!
//! ```text
//! cargo run --release -p experiments --bin noise_study [-- --reps N --budget N]
//! ```

use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration};
use autotune_stats::descriptive;
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::{arch, oracle};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let reps = get("--reps", 9);
    let budget = get("--budget", 50);

    let bench = Benchmark::Add;
    let gpu = arch::gtx_980();
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let optimum = oracle::strided_optimum(bench.model().as_ref(), &gpu, 1);
    println!(
        "{} on {} — noise sweep at budget {budget}, {reps} reps; optimum {:.4} ms\n",
        bench.name(),
        gpu.name,
        optimum.time_ms
    );

    let scales = [0.0f64, 0.5, 1.0, 2.0, 4.0];
    print!("{:<8}", "algo");
    for s in scales {
        print!("{:>10}", format!("noise x{s}"));
    }
    println!();

    for algo in Algorithm::PAPER_FIVE {
        print!("{:<8}", algo.name());
        for scale in scales {
            let noise = NoiseModel::scaled(scale);
            let mut pct = Vec::with_capacity(reps);
            for rep in 0..reps {
                let seed = 11_000 + rep as u64;
                let mut sim = SimulatedKernel::with_noise(bench.model(), gpu.clone(), noise, seed);
                let ctx = TuneContext::new(&space, budget, seed);
                let ctx = if algo.is_smbo() {
                    ctx
                } else {
                    ctx.with_constraint(&constraint)
                };
                let r = algo
                    .tuner()
                    .tune(&ctx, &mut |cfg: &Configuration| sim.measure(cfg));
                // Judge the selected configuration by its *true* time:
                // noise should not be allowed to flatter the selection.
                let true_ms = sim.true_time_ms(&r.best.config);
                pct.push(oracle::percent_of_optimum(optimum.time_ms, true_ms));
            }
            print!("{:>9.1}%", descriptive::median(&pct));
        }
        println!();
    }
    println!(
        "\nColumns further right are noisier testbeds; techniques whose row decays \
         slowly are the noise-robust ones (judged on true runtimes, so lucky noisy \
         measurements cannot flatter a selection)."
    );
}
