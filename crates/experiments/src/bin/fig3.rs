//! Reproduces **Fig. 3**: mean ± confidence interval of the percent of
//! optimum aggregated across all benchmarks and architectures.

use experiments::{cli, grid, metrics, render};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let results = grid::run_study(&opts.config);
    let lines = metrics::fig3(&results, 0.95, opts.config.seed);
    print!("{}", render::aggregate_table(&lines));
    if opts.write_csv {
        cli::write_artifact(&opts.out_dir, "fig3.csv", &render::aggregate_csv(&lines))
            .expect("write fig3.csv");
    }
}
