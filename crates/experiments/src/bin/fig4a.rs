//! Reproduces **Fig. 4a**: heatmaps of the median speedup over Random
//! Search per algorithm, sample size, benchmark and architecture.

use experiments::{cli, grid, metrics, render};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let results = grid::run_study(&opts.config);
    let panels = metrics::fig4a(&results);
    for p in &panels {
        print!("{}", render::heatmap(p, "x"));
        println!();
    }
    if opts.write_csv {
        cli::write_artifact(&opts.out_dir, "fig4a.csv", &render::heatmaps_csv(&panels))
            .expect("write fig4a.csv");
    }
}
