//! The warm-start experiment axis: cold vs. warm vs. transfer.
//!
//! The paper measures search techniques from a standing start. The
//! knowledge base (`autotune-kb`) changes the protocol: a new study of a
//! known problem can be seeded with prior evidence. This module
//! quantifies what that buys, per technique and sample size, under
//! three seeding modes:
//!
//! * **cold** — no prior; the paper's protocol, the baseline.
//! * **warm** — the prior assembled by [`KbStore::prior_for`] from a
//!   converged donor study of the *same* (benchmark, architecture).
//! * **transfer** — the donor pool *excludes* the target architecture,
//!   so only down-weighted family-fingerprint evidence from sibling
//!   GPUs is available.
//!
//! Protocol: one cold donor study per (technique, benchmark,
//! architecture) runs at [`WarmStartConfig::donor_budget`] and is
//! appended to real on-disk stores (the full machinery — fingerprints,
//! JSONL segments, recency/similarity weighting — is exercised, not
//! simulated). Each recipient experiment then reruns the search at
//! sample size `S` and we record how many fresh evaluations it needs to
//! match the donor's incumbent (within a small noise tolerance). The
//! headline table reports, beside the Fig. 4 artefacts, the median
//! samples-to-target and the fraction of runs that reach it at all.
//!
//! Seeds are shared across modes — for a given (technique, benchmark,
//! architecture, `S`, repetition) the cold, warm and transfer runs use
//! the same RNG stream, so any difference is attributable to the prior
//! alone.

use crate::grid::StudyConfig;
use crate::seed;
use autotune_core::{Algorithm, PriorHistory, TuneContext, TuneResult};
use autotune_kb::{canonical, family, KbStore, PriorWeighting, ProblemTag, StudyRecord};
use autotune_space::{imagecl, Configuration};
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::GpuArchitecture;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Repetition coordinate reserved for donor studies, far above any
/// recipient repetition index so donor and recipient RNG streams never
/// coincide.
const DONOR_REPETITION: usize = 1_000_000;

/// How a recipient experiment is seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WarmMode {
    /// No prior — the paper's protocol.
    Cold,
    /// Exact-fingerprint prior from a same-architecture donor.
    Warm,
    /// Family-fingerprint prior from sibling architectures only.
    Transfer,
}

impl WarmMode {
    /// All modes, in reporting order.
    pub const ALL: [WarmMode; 3] = [WarmMode::Cold, WarmMode::Warm, WarmMode::Transfer];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WarmMode::Cold => "cold",
            WarmMode::Warm => "warm",
            WarmMode::Transfer => "transfer",
        }
    }
}

/// Configuration of a warm-start study.
#[derive(Debug, Clone)]
pub struct WarmStartConfig {
    /// Techniques to compare. Only sequential techniques make sense
    /// here (RS and RF follow the dataset-subdivision protocol, which
    /// has no surrogate to seed); others are skipped with a note.
    pub algorithms: Vec<Algorithm>,
    /// Benchmarks.
    pub benchmarks: Vec<Benchmark>,
    /// Architectures (transfer mode needs at least two).
    pub architectures: Vec<GpuArchitecture>,
    /// Recipient sample sizes (the paper's S axis).
    pub sample_sizes: Vec<usize>,
    /// Repetitions per (technique, benchmark, architecture, mode, S).
    pub repetitions: usize,
    /// Budget of the cold donor studies whose incumbent is the target.
    pub donor_budget: usize,
    /// Measurement noise.
    pub noise: NoiseModel,
    /// Study master seed.
    pub seed: u64,
    /// A recipient "reaches the target" when its running best is within
    /// this multiple of the donor incumbent (compensates measurement
    /// noise; 1.05 = within 5%).
    pub tolerance: f64,
    /// Recency / architecture-similarity weighting for priors.
    pub weighting: PriorWeighting,
    /// Directory holding the study's knowledge-base segment files.
    /// Recreated from scratch on every run.
    pub kb_dir: PathBuf,
}

impl WarmStartConfig {
    /// Derives a warm-start study from a figure-study configuration:
    /// same benchmarks, architectures, noise and seed; the SMBO subset
    /// of its techniques; donor budget 200 (the paper's second-largest
    /// S — the budget the acceptance comparison is anchored to); and
    /// the design's S=400 experiment count as the repetition count.
    pub fn from_study(config: &StudyConfig) -> Self {
        let algorithms: Vec<Algorithm> = config
            .algorithms
            .iter()
            .copied()
            .filter(|a| a.is_smbo())
            .collect();
        let algorithms = if algorithms.is_empty() {
            vec![Algorithm::BoGp, Algorithm::BoTpe]
        } else {
            algorithms
        };
        WarmStartConfig {
            algorithms,
            benchmarks: config.benchmarks.clone(),
            architectures: config.architectures.clone(),
            sample_sizes: config.design.sample_sizes().to_vec(),
            repetitions: config.design.experiments_for(400),
            donor_budget: 200,
            noise: config.noise,
            seed: config.seed,
            tolerance: 1.05,
            weighting: PriorWeighting::default(),
            kb_dir: std::env::temp_dir().join(format!(
                "autotune-warmstart-{:x}-{}",
                config.seed,
                std::process::id()
            )),
        }
    }
}

/// Coordinates of one warm-start cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WarmCellKey {
    /// Search technique.
    pub algorithm: Algorithm,
    /// Seeding mode.
    pub mode: WarmMode,
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture name.
    pub architecture: String,
    /// Recipient sample size.
    pub sample_size: usize,
}

/// Per-repetition outcomes of one warm-start cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmCellResult {
    /// The donor incumbent this cell is chasing, ms.
    pub target_ms: f64,
    /// Best measured cost per repetition, ms.
    pub best_ms: Vec<f64>,
    /// Fresh evaluations until the running best entered the tolerance
    /// band around the target; `None` when the repetition never did.
    pub samples_to_target: Vec<Option<u64>>,
    /// Prior points the recipient was seeded with (0 in cold mode).
    pub prior_points: usize,
}

/// All cells of a warm-start study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartResults {
    /// Outcomes keyed by cell coordinates.
    pub cells: BTreeMap<WarmCellKey, WarmCellResult>,
    /// The S axis, in column order.
    pub sample_sizes: Vec<usize>,
    /// Donor budget the targets were tuned at.
    pub donor_budget: usize,
    /// Target tolerance multiplier.
    pub tolerance: f64,
}

/// One sequential tuning run, optionally warm-started.
fn tune_once(
    algorithm: Algorithm,
    bench: Benchmark,
    arch: &GpuArchitecture,
    budget: usize,
    run_seed: u64,
    noise: NoiseModel,
    prior: Option<&PriorHistory>,
) -> TuneResult {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let mut sim = SimulatedKernel::with_noise(bench.model(), arch.clone(), noise, run_seed);
    let ctx = TuneContext::new(&space, budget, run_seed);
    // Paper §V-C: constraint specification only for non-SMBO methods.
    let ctx = if algorithm.is_smbo() {
        ctx
    } else {
        ctx.with_constraint(&constraint)
    };
    let ctx = match prior {
        Some(p) => ctx.with_prior(p),
        None => ctx,
    };
    let mut objective = |cfg: &Configuration| sim.measure(cfg);
    algorithm.tuner().tune(&ctx, &mut objective)
}

/// Fresh evaluations until the running best is `<= target * tolerance`
/// (1-based); `None` when the run never gets there.
fn samples_to_target(result: &TuneResult, target: f64, tolerance: f64) -> Option<u64> {
    let bar = target * tolerance;
    let mut best = f64::INFINITY;
    for (i, eval) in result.history.evaluations().iter().enumerate() {
        best = best.min(eval.value);
        if best <= bar {
            return Some(i as u64 + 1);
        }
    }
    None
}

/// Opens a segment file under `dir`, deleting any leftover from an
/// earlier run so reruns do not double the donor pool.
fn fresh_store(dir: &Path, name: &str) -> KbStore {
    let path = dir.join(format!("{name}.kb.jsonl"));
    match std::fs::remove_file(&path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => panic!("cannot clear kb segment {path:?}: {e}"),
    }
    KbStore::open(&path).unwrap_or_else(|e| panic!("cannot open kb segment {path:?}: {e}"))
}

/// A filename-safe slug for an architecture name.
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Runs the full cold/warm/transfer study.
///
/// # Panics
///
/// Panics when the knowledge-base directory is unusable or a donor
/// record cannot be appended — the study is meaningless without its
/// donor pool.
pub fn run_warm_start_study(config: &WarmStartConfig) -> WarmStartResults {
    let space = imagecl::space();
    let constraint = imagecl::constraint();

    // Donor phase: one converged cold study per (technique, benchmark,
    // architecture), appended to the full store and to every holdout
    // store that excludes the donor's own architecture.
    let mut full = fresh_store(&config.kb_dir, "full");
    let mut holdouts: BTreeMap<String, KbStore> = config
        .architectures
        .iter()
        .map(|a| {
            let store = fresh_store(&config.kb_dir, &format!("holdout-{}", slug(&a.name)));
            (a.name.clone(), store)
        })
        .collect();
    let mut targets: BTreeMap<(String, String, String), f64> = BTreeMap::new();

    for &algorithm in &config.algorithms {
        if matches!(algorithm, Algorithm::RandomSearch | Algorithm::RandomForest) {
            eprintln!(
                "warm-start: skipping {} (dataset protocol, no surrogate to seed)",
                algorithm.name()
            );
            continue;
        }
        for &bench in &config.benchmarks {
            for arch in &config.architectures {
                let donor_seed = seed::experiment_seed(
                    config.seed,
                    algorithm.name(),
                    bench.name(),
                    &arch.name,
                    config.donor_budget,
                    DONOR_REPETITION,
                );
                let result = tune_once(
                    algorithm,
                    bench,
                    arch,
                    config.donor_budget,
                    donor_seed,
                    config.noise,
                    None,
                );
                let tag = ProblemTag::new(bench.name(), &arch.name);
                let record = StudyRecord {
                    fingerprint: canonical(&tag, &space, Some(&constraint)),
                    family: family(&tag, &space, Some(&constraint)),
                    problem: tag,
                    session: format!(
                        "donor-{}-{}-{}",
                        slug(algorithm.name()),
                        slug(bench.name()),
                        slug(&arch.name)
                    ),
                    seed: donor_seed,
                    recorded_at_ms: 0, // synthetic donors; age ranking is per-study
                    algorithm: algorithm.name().to_string(),
                    budget: config.donor_budget,
                    converged: true,
                    best: result.best.clone(),
                    evaluations: result.history.evaluations().to_vec(),
                };
                full.append(record.clone()).expect("append donor study");
                for (holdout_arch, store) in holdouts.iter_mut() {
                    if holdout_arch != &arch.name {
                        store.append(record.clone()).expect("append donor study");
                    }
                }
                targets.insert(
                    (
                        algorithm.name().to_string(),
                        bench.name().to_string(),
                        arch.name.clone(),
                    ),
                    result.best.value,
                );
            }
        }
    }

    // Recipient phase: same seeds across modes; only the prior differs.
    let mut cells = BTreeMap::new();
    for &algorithm in &config.algorithms {
        if matches!(algorithm, Algorithm::RandomSearch | Algorithm::RandomForest) {
            continue;
        }
        for &bench in &config.benchmarks {
            for arch in &config.architectures {
                let tag = ProblemTag::new(bench.name(), &arch.name);
                let fp = canonical(&tag, &space, Some(&constraint));
                let fam = family(&tag, &space, Some(&constraint));
                let target = targets[&(
                    algorithm.name().to_string(),
                    bench.name().to_string(),
                    arch.name.clone(),
                )];
                for mode in WarmMode::ALL {
                    let prior = match mode {
                        WarmMode::Cold => None,
                        WarmMode::Warm => full.prior_for(fp, fam, &config.weighting),
                        WarmMode::Transfer => {
                            holdouts[&arch.name].prior_for(fp, fam, &config.weighting)
                        }
                    };
                    for &sample_size in &config.sample_sizes {
                        let mut best_ms = Vec::with_capacity(config.repetitions);
                        let mut reached = Vec::with_capacity(config.repetitions);
                        for rep in 0..config.repetitions {
                            let run_seed = seed::experiment_seed(
                                config.seed,
                                algorithm.name(),
                                bench.name(),
                                &arch.name,
                                sample_size,
                                rep,
                            );
                            let result = tune_once(
                                algorithm,
                                bench,
                                arch,
                                sample_size,
                                run_seed,
                                config.noise,
                                prior.as_ref(),
                            );
                            best_ms.push(result.best.value);
                            reached.push(samples_to_target(&result, target, config.tolerance));
                        }
                        cells.insert(
                            WarmCellKey {
                                algorithm,
                                mode,
                                benchmark: bench.name().to_string(),
                                architecture: arch.name.clone(),
                                sample_size,
                            },
                            WarmCellResult {
                                target_ms: target,
                                best_ms,
                                samples_to_target: reached,
                                prior_points: prior.as_ref().map_or(0, |p| p.len()),
                            },
                        );
                    }
                }
            }
        }
    }

    WarmStartResults {
        cells,
        sample_sizes: config.sample_sizes.clone(),
        donor_budget: config.donor_budget,
        tolerance: config.tolerance,
    }
}

/// One aggregate row: (technique, mode) across all benchmarks and
/// architectures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmAggregate {
    /// Search technique.
    pub algorithm: Algorithm,
    /// Seeding mode.
    pub mode: WarmMode,
    /// Per sample size: median samples-to-target over the runs that
    /// reached it (`None` when none did).
    pub median_samples: Vec<Option<f64>>,
    /// Per sample size: fraction of runs that reached the target.
    pub hit_rate: Vec<f64>,
}

/// Aggregates cells over benchmarks, architectures and repetitions.
pub fn aggregate(results: &WarmStartResults) -> Vec<WarmAggregate> {
    let mut rows: BTreeMap<(Algorithm, WarmMode), WarmAggregate> = BTreeMap::new();
    for (s_idx, &s) in results.sample_sizes.iter().enumerate() {
        for ((algorithm, mode), row) in results
            .cells
            .iter()
            .filter(|(k, _)| k.sample_size == s)
            .fold(
                BTreeMap::<(Algorithm, WarmMode), (Vec<f64>, usize, usize)>::new(),
                |mut acc, (k, r)| {
                    let entry = acc.entry((k.algorithm, k.mode)).or_default();
                    for sample in &r.samples_to_target {
                        entry.2 += 1;
                        if let Some(n) = sample {
                            entry.0.push(*n as f64);
                            entry.1 += 1;
                        }
                    }
                    acc
                },
            )
        {
            let agg = rows
                .entry((algorithm, mode))
                .or_insert_with(|| WarmAggregate {
                    algorithm,
                    mode,
                    median_samples: vec![None; results.sample_sizes.len()],
                    hit_rate: vec![0.0; results.sample_sizes.len()],
                });
            let (mut hits, hit_count, total) = row;
            if !hits.is_empty() {
                hits.sort_by(|a, b| a.partial_cmp(b).expect("finite counts"));
                agg.median_samples[s_idx] = Some(autotune_stats::descriptive::median(&hits));
            }
            agg.hit_rate[s_idx] = if total == 0 {
                0.0
            } else {
                hit_count as f64 / total as f64
            };
        }
    }
    rows.into_values().collect()
}

/// Renders the aggregate rows as the study's headline table: median
/// samples to reach the cold donor incumbent (and the hit rate), per
/// technique, mode and sample size.
pub fn warm_table(results: &WarmStartResults) -> String {
    let rows = aggregate(results);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== samples to reach the cold budget-{} incumbent (median, hit rate) ===",
        results.donor_budget
    );
    let _ = write!(out, "{:<10}{:<10}", "technique", "mode");
    for s in &results.sample_sizes {
        let _ = write!(out, "{s:>14}");
    }
    let _ = writeln!(out);
    for row in &rows {
        let _ = write!(out, "{:<10}{:<10}", row.algorithm.name(), row.mode.name());
        for (median, hit) in row.median_samples.iter().zip(&row.hit_rate) {
            let cell = match median {
                Some(m) => format!("{m:>5.0} ({:>3.0}%)", hit * 100.0),
                None => format!("{:>5} ({:>3.0}%)", "-", hit * 100.0),
            };
            let _ = write!(out, "{cell:>14}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Full per-cell CSV (one row per cell repetition summary).
pub fn warm_csv(results: &WarmStartResults) -> String {
    let mut out = String::from(
        "algorithm,mode,benchmark,architecture,sample_size,target_ms,\
         reps,hits,median_samples_to_target,median_best_ms,prior_points\n",
    );
    for (key, cell) in &results.cells {
        let mut hits: Vec<f64> = cell
            .samples_to_target
            .iter()
            .flatten()
            .map(|&n| n as f64)
            .collect();
        hits.sort_by(|a, b| a.partial_cmp(b).expect("finite counts"));
        let median_hit = if hits.is_empty() {
            String::new()
        } else {
            format!("{}", autotune_stats::descriptive::median(&hits))
        };
        let mut best = cell.best_ms.clone();
        best.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            key.algorithm.name(),
            key.mode.name(),
            key.benchmark,
            key.architecture,
            key.sample_size,
            cell.target_ms,
            cell.samples_to_target.len(),
            hits.len(),
            median_hit,
            autotune_stats::descriptive::median(&best),
            cell.prior_points,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    fn tiny_config(tag: &str) -> WarmStartConfig {
        WarmStartConfig {
            algorithms: vec![Algorithm::BoTpe],
            benchmarks: vec![Benchmark::Add],
            architectures: vec![arch::gtx_980(), arch::titan_v()],
            sample_sizes: vec![10],
            repetitions: 2,
            donor_budget: 30,
            noise: NoiseModel::study_default(),
            seed: 7,
            tolerance: 1.05,
            weighting: PriorWeighting::default(),
            kb_dir: std::env::temp_dir().join(format!(
                "autotune-warmstart-test-{tag}-{}",
                std::process::id()
            )),
        }
    }

    #[test]
    fn study_covers_every_mode_and_reuses_seeds_across_modes() {
        let config = tiny_config("cover");
        let results = run_warm_start_study(&config);
        // 1 algo x 1 bench x 2 arch x 3 modes x 1 sample size.
        assert_eq!(results.cells.len(), 6);
        for (key, cell) in &results.cells {
            assert_eq!(cell.best_ms.len(), 2, "{key:?}");
            assert!(cell.target_ms.is_finite());
            match key.mode {
                WarmMode::Cold => assert_eq!(cell.prior_points, 0),
                _ => assert!(cell.prior_points > 0, "{key:?} got no prior"),
            }
        }
        // Deterministic end to end (fresh stores every run).
        let again = run_warm_start_study(&config);
        assert_eq!(results, again);
    }

    #[test]
    fn warm_runs_reach_the_donor_incumbent_faster_than_cold() {
        let config = tiny_config("faster");
        let results = run_warm_start_study(&config);
        let rows = aggregate(&results);
        let find = |mode: WarmMode| {
            rows.iter()
                .find(|r| r.mode == mode)
                .expect("mode present")
                .clone()
        };
        let warm = find(WarmMode::Warm);
        let cold = find(WarmMode::Cold);
        // The warm prior contains the donor incumbent itself, so the
        // seeded surrogate should hit the target band at least as often
        // as the cold run does — or, when both hit, get there in no
        // more samples.
        let faster = match (warm.median_samples[0], cold.median_samples[0]) {
            (Some(w), Some(c)) => w <= c,
            (Some(_), None) => true,
            _ => false,
        };
        assert!(
            warm.hit_rate[0] >= cold.hit_rate[0] || faster,
            "warm {warm:?} vs cold {cold:?}"
        );
    }

    #[test]
    fn renderers_cover_every_cell() {
        let config = tiny_config("render");
        let results = run_warm_start_study(&config);
        let table = warm_table(&results);
        assert!(table.contains("cold"));
        assert!(table.contains("warm"));
        assert!(table.contains("transfer"));
        let csv = warm_csv(&results);
        assert_eq!(csv.lines().count(), 1 + results.cells.len());
        assert!(csv.starts_with("algorithm,mode,"));
    }

    #[test]
    fn samples_to_target_counts_fresh_evaluations() {
        let config = tiny_config("count");
        let result = tune_once(
            Algorithm::BoTpe,
            Benchmark::Add,
            &arch::gtx_980(),
            10,
            42,
            NoiseModel::study_default(),
            None,
        );
        // A target equal to the run's own best is reached exactly when
        // the best was measured; an unreachable target never is.
        let n = samples_to_target(&result, result.best.value, 1.0).expect("own best reached");
        assert!(n >= 1 && n <= 10);
        assert_eq!(samples_to_target(&result, 0.0, config.tolerance), None);
    }
}
