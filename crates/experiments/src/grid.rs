//! The full study grid: every (algorithm, benchmark, architecture,
//! sample size) cell, run with a crossbeam worker pool and aggregated
//! into per-cell result populations.
//!
//! The worker pool is instrumented with the service layer's std-only
//! metrics primitives — see [`grid_metrics`] for the process-wide
//! experiment counters and latency histogram.

use crate::design::ExperimentDesign;
use crate::monitor::StudyMonitor;
use crate::runner::{run_experiment_traced, ExperimentOutcome};
use autotune_core::trace::{self, VecSink};
use autotune_core::Algorithm;
use autotune_service::metrics::{Counter, Histogram, MetricsSnapshot};
use crossbeam::queue::SegQueue;
use gpu_sim::dataset::{Dataset, DatasetStore};
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::{arch, oracle, GpuArchitecture};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-wide counters for the experiment worker pool, built on the
/// same atomic primitives as the service layer's
/// [`ServiceMetrics`](autotune_service::ServiceMetrics).
#[derive(Debug, Default)]
pub struct GridMetrics {
    /// Completed [`run_study`] invocations.
    pub studies: Counter,
    /// Individual experiments the worker pool has finished.
    pub experiments: Counter,
    /// Wall time of one experiment (tune + final median measurement).
    pub experiment_seconds: Histogram,
    /// Per-phase search time, one observation per experiment per phase
    /// (the experiment's *total* time in that phase, derived from its
    /// flight-recorder trace). Dynamic like the service layer's
    /// `search_phase_seconds` registry; snapshotted as
    /// `grid_search_phase_seconds_{phase}`.
    search_phase_seconds: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl GridMetrics {
    /// Records one experiment's total time in `phase`.
    pub fn observe_phase(&self, phase: &str, d: std::time::Duration) {
        let hist = {
            let mut map = self.search_phase_seconds.lock();
            match map.get(phase) {
                Some(h) => h.clone(),
                None => {
                    let h = Arc::new(Histogram::latency());
                    map.insert(phase.to_string(), h.clone());
                    h
                }
            }
        };
        hist.observe(d);
    }

    /// Copies the instruments into a serializable snapshot using the
    /// same naming scheme (and Prometheus rendering) as the service.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .counters
            .insert("grid_studies".to_string(), self.studies.get());
        snapshot
            .counters
            .insert("grid_experiments".to_string(), self.experiments.get());
        snapshot.histograms.insert(
            "grid_experiment_seconds".to_string(),
            self.experiment_seconds.snapshot(),
        );
        for (phase, hist) in self.search_phase_seconds.lock().iter() {
            snapshot.histograms.insert(
                format!("grid_search_phase_seconds_{phase}"),
                hist.snapshot(),
            );
        }
        snapshot
    }
}

/// The process-wide [`GridMetrics`] registry every [`run_study`] call
/// reports into.
pub fn grid_metrics() -> &'static GridMetrics {
    static METRICS: OnceLock<GridMetrics> = OnceLock::new();
    METRICS.get_or_init(GridMetrics::default)
}

/// Identifies one cell of the study grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellKey {
    /// Search technique.
    pub algorithm: Algorithm,
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture name.
    pub architecture: String,
    /// Sample size (the paper's S).
    pub sample_size: usize,
}

/// The result population of one cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Final (median-of-10) runtimes of every repeated experiment, ms.
    pub final_ms: Vec<f64>,
    /// The same runs as percent-of-optimum values (100 = optimal).
    pub percent_of_optimum: Vec<f64>,
}

impl CellResult {
    /// Median final runtime of the cell.
    pub fn median_ms(&self) -> f64 {
        autotune_stats::descriptive::median(&self.final_ms)
    }

    /// Median percent-of-optimum of the cell.
    pub fn median_percent(&self) -> f64 {
        autotune_stats::descriptive::median(&self.percent_of_optimum)
    }
}

/// Configuration of a study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The (scaled) experimental design.
    pub design: ExperimentDesign,
    /// Techniques to compare (default: the paper's five).
    pub algorithms: Vec<Algorithm>,
    /// Benchmarks (default: all three).
    pub benchmarks: Vec<Benchmark>,
    /// Architectures (default: all three).
    pub architectures: Vec<GpuArchitecture>,
    /// Measurement noise.
    pub noise: NoiseModel,
    /// Dataset size for the non-SMBO protocols.
    pub dataset_size: usize,
    /// Study master seed.
    pub seed: u64,
    /// Worker threads (defaults to available parallelism).
    pub threads: usize,
    /// Oracle scan stride (1 = exhaustive; larger = approximate, faster).
    pub oracle_stride: u64,
}

impl StudyConfig {
    /// The study at a given scale with the paper's roster.
    pub fn at_scale(scale: f64) -> Self {
        StudyConfig {
            design: if scale >= 1.0 {
                ExperimentDesign::paper()
            } else {
                ExperimentDesign::scaled(scale)
            },
            algorithms: Algorithm::PAPER_FIVE.to_vec(),
            benchmarks: Benchmark::ALL.to_vec(),
            architectures: arch::study_architectures(),
            noise: NoiseModel::study_default(),
            dataset_size: crate::design::DATASET_SIZE,
            seed: 0x5EED,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            oracle_stride: 1,
        }
    }

    /// A fast smoke-test configuration (tiny datasets, strided oracle).
    pub fn smoke() -> Self {
        let mut c = StudyConfig::at_scale(0.005);
        c.dataset_size = 1_000;
        c.oracle_stride = 509;
        c
    }
}

/// All cell results of a study run.
#[derive(Debug, Clone)]
pub struct StudyResults {
    /// Per-cell populations, ordered by key.
    pub cells: BTreeMap<CellKey, CellResult>,
    /// True optima per (benchmark, architecture), ms.
    pub optima: BTreeMap<(String, String), f64>,
    /// The sample sizes of the design (column order for figures).
    pub sample_sizes: Vec<usize>,
}

impl StudyResults {
    /// The cell for a key.
    pub fn cell(&self, key: &CellKey) -> Option<&CellResult> {
        self.cells.get(key)
    }

    /// All (benchmark, architecture) pairs present.
    pub fn pairs(&self) -> Vec<(String, String)> {
        self.optima.keys().cloned().collect()
    }

    /// All algorithms present, ordered.
    pub fn algorithms(&self) -> Vec<Algorithm> {
        let mut v: Vec<Algorithm> = self.cells.keys().map(|k| k.algorithm).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Serializes to JSON (maps flattened to entry lists, since JSON
    /// object keys must be strings).
    pub fn to_json(&self) -> String {
        let dto = StudyResultsDto {
            cells: self
                .cells
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            optima: self.optima.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            sample_sizes: self.sample_sizes.clone(),
        };
        serde_json::to_string(&dto).expect("results serialize")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<StudyResults, serde_json::Error> {
        let dto: StudyResultsDto = serde_json::from_str(s)?;
        Ok(StudyResults {
            cells: dto.cells.into_iter().collect(),
            optima: dto.optima.into_iter().collect(),
            sample_sizes: dto.sample_sizes,
        })
    }
}

/// JSON wire format: entry lists instead of struct-keyed maps.
#[derive(Serialize, Deserialize)]
struct StudyResultsDto {
    cells: Vec<(CellKey, CellResult)>,
    optima: Vec<((String, String), f64)>,
    sample_sizes: Vec<usize>,
}

/// Runs the full study grid.
///
/// # Panics
///
/// Panics when `config.dataset_size` is smaller than the largest sample
/// size — the RS protocol draws that many *distinct* dataset entries.
pub fn run_study(config: &StudyConfig) -> StudyResults {
    run_study_monitored(config, None)
}

/// Runs the full study grid, optionally streaming every finished
/// repetition into a live [`StudyMonitor`] as workers complete it.
///
/// The monitor sees outcomes in completion order (nondeterministic
/// under `threads > 1`), but its test statistics depend only on the
/// observation multisets, so the final monitor state matches a batch
/// pass over the returned [`StudyResults`].
///
/// # Panics
///
/// Panics when `config.dataset_size` is smaller than the largest sample
/// size — the RS protocol draws that many *distinct* dataset entries.
pub fn run_study_monitored(config: &StudyConfig, monitor: Option<&StudyMonitor>) -> StudyResults {
    let max_s = config
        .design
        .sample_sizes()
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    assert!(
        config.dataset_size >= max_s,
        "dataset_size {} must cover the largest sample size {max_s}",
        config.dataset_size
    );
    // Stage 1: datasets and oracle optima per (benchmark, architecture).
    let store = DatasetStore::new(config.dataset_size, config.noise);
    let mut datasets: BTreeMap<(String, String), Arc<Dataset>> = BTreeMap::new();
    let mut optima: BTreeMap<(String, String), f64> = BTreeMap::new();
    for &bench in &config.benchmarks {
        for gpu in &config.architectures {
            let key = (bench.name().to_string(), gpu.name.clone());
            datasets.insert(key.clone(), store.get(bench, gpu));
            let kernel = bench.model();
            let opt = oracle::strided_optimum(kernel.as_ref(), gpu, config.oracle_stride);
            optima.insert(key, opt.time_ms);
        }
    }

    // Stage 2: enumerate all experiments as work items.
    struct WorkItem {
        algorithm: Algorithm,
        bench: Benchmark,
        gpu: GpuArchitecture,
        sample_size: usize,
        repetition: usize,
        dataset: Arc<Dataset>,
    }
    let queue: SegQueue<WorkItem> = SegQueue::new();
    for &algorithm in &config.algorithms {
        for &bench in &config.benchmarks {
            for gpu in &config.architectures {
                let key = (bench.name().to_string(), gpu.name.clone());
                let dataset = Arc::clone(&datasets[&key]);
                for &sample_size in config.design.sample_sizes() {
                    for repetition in 0..config.design.experiments_for(sample_size) {
                        queue.push(WorkItem {
                            algorithm,
                            bench,
                            gpu: gpu.clone(),
                            sample_size,
                            repetition,
                            dataset: Arc::clone(&dataset),
                        });
                    }
                }
            }
        }
    }

    // Stage 3: drain the queue with a worker pool. Seeds are derived from
    // the item coordinates, so completion order is irrelevant.
    type Gathered = Vec<(CellKey, ExperimentOutcome)>;
    let gathered: Mutex<Gathered> = Mutex::new(Vec::new());
    let workers = config.threads.max(1);
    let metrics = grid_metrics();
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local: Gathered = Vec::new();
                while let Some(item) = queue.pop() {
                    let started = Instant::now();
                    let sink = VecSink::new();
                    let outcome = run_experiment_traced(
                        item.algorithm,
                        item.bench,
                        &item.gpu,
                        &item.dataset,
                        item.sample_size,
                        item.repetition,
                        config.seed,
                        config.noise,
                        &sink,
                    );
                    metrics.experiment_seconds.observe(started.elapsed());
                    metrics.experiments.inc();
                    // Fold the repetition's trace into the per-phase time
                    // breakdown (one observation per phase: this
                    // experiment's total time in it).
                    for (phase, stat) in trace::phase_durations(&sink.take()) {
                        metrics
                            .observe_phase(&phase, std::time::Duration::from_micros(stat.total_us));
                    }
                    let key = CellKey {
                        algorithm: item.algorithm,
                        benchmark: item.bench.name().to_string(),
                        architecture: item.gpu.name.clone(),
                        sample_size: item.sample_size,
                    };
                    if let Some(monitor) = monitor {
                        monitor.observe(&key, outcome.final_ms);
                    }
                    local.push((key, outcome));
                }
                gathered.lock().extend(local);
            });
        }
    })
    .expect("worker pool does not panic");

    // Stage 4: fold outcomes into per-cell populations (sorted by
    // repetition-independent coordinates for determinism).
    let mut all = gathered.into_inner();
    all.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.final_ms.partial_cmp(&b.1.final_ms).expect("finite"))
    });
    let mut cells: BTreeMap<CellKey, CellResult> = BTreeMap::new();
    for (key, outcome) in all {
        let opt = optima[&(key.benchmark.clone(), key.architecture.clone())];
        let cell = cells.entry(key).or_insert_with(|| CellResult {
            final_ms: Vec::new(),
            percent_of_optimum: Vec::new(),
        });
        cell.final_ms.push(outcome.final_ms);
        cell.percent_of_optimum
            .push(oracle::percent_of_optimum(opt, outcome.final_ms));
    }

    metrics.studies.inc();
    StudyResults {
        cells,
        optima,
        sample_sizes: config.design.sample_sizes().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal but complete grid: 2 algorithms, 1 benchmark, 1 arch.
    fn tiny_config() -> StudyConfig {
        let mut c = StudyConfig::smoke();
        c.algorithms = vec![Algorithm::RandomSearch, Algorithm::GeneticAlgorithm];
        c.benchmarks = vec![Benchmark::Add];
        c.architectures = vec![arch::gtx_980()];
        c.dataset_size = 500;
        c.oracle_stride = 1009;
        c
    }

    #[test]
    fn study_produces_every_cell() {
        let config = tiny_config();
        let results = run_study(&config);
        // 2 algorithms x 1 bench x 1 arch x 5 sample sizes.
        assert_eq!(results.cells.len(), 2 * 5);
        for (key, cell) in &results.cells {
            let expected = config.design.experiments_for(key.sample_size);
            assert_eq!(cell.final_ms.len(), expected, "{key:?}");
            assert!(cell.final_ms.iter().all(|&t| t > 0.0));
            assert!(cell
                .percent_of_optimum
                .iter()
                .all(|&p| p > 0.0 && p <= 110.0));
        }
        assert_eq!(results.optima.len(), 1);
    }

    #[test]
    fn study_is_reproducible_regardless_of_thread_count() {
        let mut c1 = tiny_config();
        c1.threads = 1;
        let mut c2 = tiny_config();
        c2.threads = 4;
        let r1 = run_study(&c1);
        let r2 = run_study(&c2);
        for (key, cell) in &r1.cells {
            let other = r2.cell(key).expect("same cells");
            assert_eq!(cell.final_ms, other.final_ms, "{key:?}");
        }
    }

    #[test]
    fn results_round_trip_through_json() {
        let r = run_study(&tiny_config());
        let back = StudyResults::from_json(&r.to_json()).unwrap();
        assert_eq!(back.cells.len(), r.cells.len());
        for (key, cell) in &r.cells {
            assert_eq!(back.cell(key).unwrap().final_ms, cell.final_ms);
        }
    }

    #[test]
    fn worker_pool_reports_into_grid_metrics() {
        // The registry is process-wide and other tests also run studies,
        // so assert on deltas, not absolutes.
        let before = grid_metrics().snapshot();
        let config = tiny_config();
        let results = run_study(&config);
        let after = grid_metrics().snapshot();

        let expected: u64 = results
            .cells
            .values()
            .map(|cell| cell.final_ms.len() as u64)
            .sum();
        let ran = after.counter("grid_experiments").unwrap()
            - before.counter("grid_experiments").unwrap();
        assert!(ran >= expected, "{ran} < {expected}");
        assert!(after.counter("grid_studies").unwrap() > before.counter("grid_studies").unwrap());
        let observed = after.histogram("grid_experiment_seconds").unwrap().count
            - before.histogram("grid_experiment_seconds").unwrap().count;
        assert!(observed >= expected);
        assert!(after
            .render_prometheus()
            .contains("autotune_grid_experiments"));
        // Every experiment wraps the final protocol in a span, so its
        // phase histogram advanced by at least the experiment count.
        let phase_delta = after
            .histogram("grid_search_phase_seconds_final_protocol")
            .unwrap()
            .count
            - before
                .histogram("grid_search_phase_seconds_final_protocol")
                .map_or(0, |h| h.count);
        assert!(phase_delta >= expected, "{phase_delta} < {expected}");
        // The GA half of the grid contributes algorithm phases too.
        assert!(after
            .histogram("grid_search_phase_seconds_objective")
            .is_some());
    }

    #[test]
    fn live_monitor_agrees_with_batch_statistics() {
        use autotune_stats::{cles, mwu, Alternative};

        let mut config = tiny_config();
        config.threads = 4;
        let monitor = StudyMonitor::default();
        let results = run_study_monitored(&config, Some(&monitor));

        let total: u64 = results
            .cells
            .values()
            .map(|c| c.final_ms.len() as u64)
            .sum();
        assert_eq!(monitor.observations(), total);

        // Pool each technique's observations per sample size across the
        // grid (trivially one bench x one arch here) and compare the
        // monitor's running test statistics against the batch Fig. 4b
        // computation over the completed results. MWU and CLES depend
        // only on the observation multisets, so completion order under
        // 4 worker threads must not matter.
        for &s in &results.sample_sizes {
            let pooled = |algorithm: Algorithm| -> Vec<f64> {
                results
                    .cells
                    .iter()
                    .filter(|(k, _)| k.algorithm == algorithm && k.sample_size == s)
                    .flat_map(|(_, c)| c.final_ms.iter().copied())
                    .collect()
            };
            let ga = pooled(Algorithm::GeneticAlgorithm);
            let rs = pooled(Algorithm::RandomSearch);
            let cmp = monitor
                .summary(Algorithm::GeneticAlgorithm, s)
                .expect("cell observed")
                .comparison
                .expect("baseline observed");
            assert_eq!(cmp.baseline_count, rs.len() as u64);
            let pooled_degenerate = {
                let first = ga[0];
                ga.iter().chain(rs.iter()).all(|&v| v == first)
            };
            if pooled_degenerate {
                assert_eq!(cmp.cles, 0.5);
                assert_eq!(cmp.p_value, 1.0);
            } else {
                assert_eq!(cmp.cles, cles::probability_of_superiority_min(&ga, &rs));
                assert_eq!(
                    cmp.p_value,
                    mwu::mann_whitney_u(&ga, &rs, Alternative::TwoSided).p_value
                );
            }
        }
    }

    #[test]
    fn cell_statistics_are_consistent() {
        let r = run_study(&tiny_config());
        for cell in r.cells.values() {
            let med = cell.median_ms();
            let min = cell.final_ms.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = cell.final_ms.iter().cloned().fold(0.0_f64, f64::max);
            assert!(med >= min && med <= max);
            assert!(cell.median_percent() <= 110.0);
        }
    }
}
