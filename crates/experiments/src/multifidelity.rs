//! Bridging the simulator to the multi-fidelity techniques.
//!
//! For a GPU kernel, the natural cheap fidelity is a *smaller problem*:
//! running the same configuration on a `2048 x 2048` image costs ~1/16 of
//! the `8192 x 8192` run and correlates strongly — but not perfectly —
//! with the full-size ranking (tile-quantization and wave effects shift
//! with the problem size, which is exactly the rank noise HyperBand is
//! designed to survive).

use autotune_core::fidelity::MultiFidelityObjective;
use autotune_space::Configuration;
use gpu_sim::kernels::Benchmark;
use gpu_sim::launch::{ProblemSize, PAPER_PROBLEM};
use gpu_sim::noise::NoiseModel;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::GpuArchitecture;

/// A simulated kernel whose fidelity axis is the image size.
pub struct MfSimulatedKernel {
    bench: Benchmark,
    arch: GpuArchitecture,
    noise: NoiseModel,
    seed: u64,
    cost: f64,
    evaluations: u64,
}

impl MfSimulatedKernel {
    /// Creates the multi-fidelity runner.
    pub fn new(bench: Benchmark, arch: GpuArchitecture, noise: NoiseModel, seed: u64) -> Self {
        MfSimulatedKernel {
            bench,
            arch,
            noise,
            seed,
            cost: 0.0,
            evaluations: 0,
        }
    }

    /// The problem size used for a fidelity: edge lengths scale with
    /// `sqrt(fidelity)` so the element count (and so the cost) scales
    /// linearly, floored at 256 px.
    pub fn problem_for(fidelity: f64) -> ProblemSize {
        let edge = ((PAPER_PROBLEM.x as f64) * fidelity.sqrt()).round() as u64;
        ProblemSize::new_2d(edge.max(256), edge.max(256))
    }

    /// Number of measurements taken (any fidelity).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

impl MultiFidelityObjective for MfSimulatedKernel {
    fn evaluate_at(&mut self, cfg: &Configuration, fidelity: f64) -> f64 {
        assert!(
            fidelity > 0.0 && fidelity <= 1.0,
            "fidelity must be in (0,1], got {fidelity}"
        );
        self.cost += fidelity;
        self.evaluations += 1;
        // A fresh kernel model at the scaled size; the measurement seed
        // folds in the evaluation counter so repeats stay noisy.
        let problem = Self::problem_for(fidelity);
        let kernel = self.bench.model_with_problem(problem);
        let mut sim = SimulatedKernel::with_noise(
            kernel,
            self.arch.clone(),
            self.noise,
            self.seed ^ self.evaluations.wrapping_mul(0x9e3779b97f4a7c15),
        );
        sim.measure(cfg)
    }

    fn cost_spent(&self) -> f64 {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch;

    #[test]
    fn fidelity_scales_the_problem() {
        let full = MfSimulatedKernel::problem_for(1.0);
        assert_eq!(full.x, 8192);
        let quarter = MfSimulatedKernel::problem_for(0.25);
        assert_eq!(quarter.x, 4096);
        let tiny = MfSimulatedKernel::problem_for(1e-6);
        assert_eq!(tiny.x, 256, "floor prevents degenerate problems");
    }

    #[test]
    fn low_fidelity_is_cheaper_in_model_time() {
        let mut mf = MfSimulatedKernel::new(Benchmark::Add, arch::titan_v(), NoiseModel::none(), 1);
        let cfg = Configuration::from([1, 1, 1, 8, 4, 1]);
        let cheap = mf.evaluate_at(&cfg, 1.0 / 16.0);
        let full = mf.evaluate_at(&cfg, 1.0);
        assert!(full > 8.0 * cheap, "full {full} vs 1/16 {cheap}");
        assert!((mf.cost_spent() - (1.0 / 16.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn low_fidelity_ranking_correlates_with_full() {
        // Among a few configurations, the cheap ranking should agree
        // with the full ranking most of the time (Kendall-tau-ish check).
        let mut mf =
            MfSimulatedKernel::new(Benchmark::Harris, arch::gtx_980(), NoiseModel::none(), 2);
        let configs = [
            Configuration::from([1, 2, 1, 8, 4, 1]),
            Configuration::from([1, 1, 1, 2, 2, 1]),
            Configuration::from([4, 4, 1, 8, 8, 1]),
            Configuration::from([16, 16, 1, 1, 1, 1]),
        ];
        let cheap: Vec<f64> = configs.iter().map(|c| mf.evaluate_at(c, 0.0625)).collect();
        let full: Vec<f64> = configs.iter().map(|c| mf.evaluate_at(c, 1.0)).collect();
        let mut concordant = 0;
        let mut total = 0;
        for i in 0..configs.len() {
            for j in (i + 1)..configs.len() {
                total += 1;
                if (cheap[i] < cheap[j]) == (full[i] < full[j]) {
                    concordant += 1;
                }
            }
        }
        assert!(
            concordant * 3 >= total * 2,
            "only {concordant}/{total} pairs concordant"
        );
    }

    #[test]
    fn hyperband_runs_on_the_simulator() {
        use autotune_core::hyperband::HyperBand;
        let space = autotune_space::imagecl::space();
        let mut mf = MfSimulatedKernel::new(
            Benchmark::Add,
            arch::rtx_titan(),
            NoiseModel::study_default(),
            3,
        );
        let r = HyperBand::default().tune_mf(&space, &mut mf, 30.0, 3);
        assert!(r.best.value > 0.0);
        assert!(mf.cost_spent() <= 40.0);
    }
}
