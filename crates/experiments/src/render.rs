//! Text renderers: ASCII heatmaps for the terminal and CSV files for
//! plotting, one per figure.

use crate::metrics::{AggregateLine, ClesCell, HeatmapPanel};
use std::fmt::Write as _;

/// Renders one heatmap panel as an aligned ASCII table. `unit` is a
/// suffix for the values (e.g. `"%"`, `"x"`).
pub fn heatmap(panel: &HeatmapPanel, unit: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {} on {} ===", panel.benchmark, panel.architecture);
    let _ = write!(out, "{:<8}", "");
    for c in &panel.cols {
        let _ = write!(out, "{:>10}", format!("S={c}"));
    }
    let _ = writeln!(out);
    for (r, name) in panel.rows.iter().enumerate() {
        let _ = write!(out, "{name:<8}");
        for v in &panel.values[r] {
            if v.is_nan() {
                let _ = write!(out, "{:>10}", "-");
            } else {
                let _ = write!(out, "{:>10}", format!("{v:.1}{unit}"));
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a CLES panel with significance stars (`*` marks cells
/// significant at the paper's α = 0.01).
pub fn cles_heatmap(panel: &HeatmapPanel, cells: &[Vec<ClesCell>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== {} on {} (CLES vs RS; * = MWU p < 0.01) ===",
        panel.benchmark, panel.architecture
    );
    let _ = write!(out, "{:<8}", "");
    for c in &panel.cols {
        let _ = write!(out, "{:>10}", format!("S={c}"));
    }
    let _ = writeln!(out);
    for (r, name) in panel.rows.iter().enumerate() {
        let _ = write!(out, "{name:<8}");
        for cell in &cells[r] {
            if cell.cles.is_nan() {
                let _ = write!(out, "{:>10}", "-");
            } else {
                let star = if cell.significant { "*" } else { " " };
                let _ = write!(out, "{:>10}", format!("{:.2}{star}", cell.cles));
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the aggregate Fig. 3 lines as a table with CI half-widths.
pub fn aggregate_table(lines: &[AggregateLine]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Mean percent-of-optimum across all benchmarks and architectures ==="
    );
    if lines.is_empty() {
        return out;
    }
    let _ = write!(out, "{:<8}", "");
    for s in &lines[0].sample_sizes {
        let _ = write!(out, "{:>16}", format!("S={s}"));
    }
    let _ = writeln!(out);
    for line in lines {
        let _ = write!(out, "{:<8}", line.algorithm);
        for (m, ci) in line.mean.iter().zip(&line.ci) {
            let _ = write!(out, "{:>16}", format!("{m:.1} ±{:.1}", ci.half_width()));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a series as a one-line Unicode sparkline (eight block
/// heights, min-to-max scaled). Non-finite values and flat series
/// render as the lowest block; empty input renders empty.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let range = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() || range <= 0.0 {
                BLOCKS[0]
            } else {
                let level = ((v - min) / range * 7.0).round() as usize;
                BLOCKS[level.min(7)]
            }
        })
        .collect()
}

/// CSV for a set of heatmap panels: long format
/// `benchmark,architecture,algorithm,sample_size,value`.
pub fn heatmaps_csv(panels: &[HeatmapPanel]) -> String {
    let mut out = String::from("benchmark,architecture,algorithm,sample_size,value\n");
    for p in panels {
        for (r, name) in p.rows.iter().enumerate() {
            for (c, s) in p.cols.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    p.benchmark, p.architecture, name, s, p.values[r][c]
                );
            }
        }
    }
    out
}

/// CSV for the Fig. 3 aggregate lines:
/// `algorithm,sample_size,mean,ci_lo,ci_hi`.
pub fn aggregate_csv(lines: &[AggregateLine]) -> String {
    let mut out = String::from("algorithm,sample_size,mean,ci_lo,ci_hi\n");
    for line in lines {
        for ((s, m), ci) in line.sample_sizes.iter().zip(&line.mean).zip(&line.ci) {
            let _ = writeln!(out, "{},{},{},{},{}", line.algorithm, s, m, ci.lo, ci.hi);
        }
    }
    out
}

/// CSV for the Fig. 4b CLES cells:
/// `benchmark,architecture,algorithm,sample_size,cles,p_value,significant`.
pub fn cles_csv(panels: &[(HeatmapPanel, Vec<Vec<ClesCell>>)]) -> String {
    let mut out =
        String::from("benchmark,architecture,algorithm,sample_size,cles,p_value,significant\n");
    for (p, cells) in panels {
        for (r, name) in p.rows.iter().enumerate() {
            for (c, s) in p.cols.iter().enumerate() {
                let cell = cells[r][c];
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{}",
                    p.benchmark, p.architecture, name, s, cell.cles, cell.p_value, cell.significant
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_stats::bootstrap::ConfidenceInterval;

    fn sample_panel() -> HeatmapPanel {
        HeatmapPanel {
            benchmark: "Add".into(),
            architecture: "Titan V".into(),
            rows: vec!["RS".into(), "GA".into()],
            cols: vec![25, 50],
            values: vec![vec![80.0, 90.0], vec![85.0, f64::NAN]],
        }
    }

    #[test]
    fn heatmap_renders_all_cells() {
        let s = heatmap(&sample_panel(), "%");
        assert!(s.contains("Add on Titan V"));
        assert!(s.contains("80.0%"));
        assert!(s.contains("S=50"));
        assert!(s.contains('-'), "NaN renders as dash");
    }

    #[test]
    fn cles_heatmap_marks_significance() {
        let panel = sample_panel();
        let cells = vec![
            vec![
                ClesCell {
                    cles: 0.5,
                    p_value: 1.0,
                    significant: false,
                },
                ClesCell {
                    cles: 0.9,
                    p_value: 0.001,
                    significant: true,
                },
            ],
            vec![
                ClesCell {
                    cles: 0.7,
                    p_value: 0.02,
                    significant: false,
                },
                ClesCell {
                    cles: f64::NAN,
                    p_value: f64::NAN,
                    significant: false,
                },
            ],
        ];
        let s = cles_heatmap(&panel, &cells);
        assert!(s.contains("0.90*"));
        assert!(s.contains("0.70 "));
    }

    #[test]
    fn sparkline_scales_min_to_max() {
        let s = sparkline(&[0.0, 3.5, 7.0]);
        assert_eq!(s, "▁▄█");
        assert_eq!(sparkline(&[]), "");
        // Flat and non-finite series degrade to the lowest block.
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▁▁▁");
        assert_eq!(sparkline(&[0.0, f64::NAN, 1.0]), "▁▁█");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = heatmaps_csv(&[sample_panel()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "benchmark,architecture,algorithm,sample_size,value"
        );
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[1].starts_with("Add,Titan V,RS,25,80"));
    }

    #[test]
    fn aggregate_table_and_csv() {
        let line = AggregateLine {
            algorithm: "GA".into(),
            sample_sizes: vec![25, 50],
            mean: vec![70.0, 80.0],
            ci: vec![
                ConfidenceInterval {
                    lo: 65.0,
                    estimate: 70.0,
                    hi: 75.0,
                    level: 0.95,
                },
                ConfidenceInterval {
                    lo: 78.0,
                    estimate: 80.0,
                    hi: 82.0,
                    level: 0.95,
                },
            ],
        };
        let t = aggregate_table(std::slice::from_ref(&line));
        assert!(t.contains("70.0 ±5.0"));
        let csv = aggregate_csv(&[line]);
        assert!(csv.contains("GA,25,70,65,75"));
    }
}
