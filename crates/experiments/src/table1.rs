//! Table I — the paper's survey of previous experimental designs — plus
//! this study's own row, which is *derived* from the implemented design
//! so the table stays consistent with the code.

use crate::design::{ExperimentDesign, FINAL_REPS, SAMPLE_SIZES};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyRow {
    /// Authors as cited in the paper.
    pub author: &'static str,
    /// Samples / experiments / final evaluations, as formatted in the paper.
    pub samples_experiments_evaluations: String,
    /// Significance test the work used.
    pub significance_test: &'static str,
    /// Research field label.
    pub field: &'static str,
    /// Algorithms the work evaluated.
    pub algorithms: &'static str,
}

/// The static survey rows (everything above the "Tørring" row).
pub fn survey_rows() -> Vec<SurveyRow> {
    let row = |author, see: &str, sig, field, algos| SurveyRow {
        author,
        samples_experiments_evaluations: see.to_string(),
        significance_test: sig,
        field,
        algorithms: algos,
    };
    vec![
        row(
            "Hutter et al.",
            "30-300 Min / 25 / 1000",
            "Mann-Whitney U",
            "AlgConf",
            "SMAC, ROAR, TB-SPO, GGA(GA)",
        ),
        row(
            "Eggensperger et al.",
            "Varies (50 to 200) / 10 / n/a",
            "Unpaired t-test",
            "AlgConf",
            "BO TPE, SMAC, Spearmint",
        ),
        row(
            "Falkner et al.",
            "Varies / Varies",
            "n/a",
            "AlgConf",
            "RS, BO TPE, BO GP, HB, HB-LCNet and BOHB",
        ),
        row(
            "Snoek et al.",
            "Varies (1-50,1-100) / 100 / n/a",
            "n/a",
            "HypOpt",
            "BO GP, Grid search",
        ),
        row(
            "Bergstra et al.",
            "230 / 20 / n/a",
            "n/a",
            "HypOpt",
            "RS, BO TPE, BO GP, Manual",
        ),
        row(
            "Bergstra et al.",
            "1-128 / 256-2 / n/a",
            "n/a",
            "HypOpt",
            "RS, Grid Search(GS)",
        ),
        row(
            "Bergstra et al.",
            "10-200 / n/a / n/a",
            "n/a",
            "HypOpt",
            "Boosted Regression Trees, GS, Hill Climbing",
        ),
        row(
            "Falch and Elster",
            "100-6000 / 20 / n/a",
            "n/a",
            "Autotuning",
            "NN, SVR, Regression Tree",
        ),
        row(
            "van Werkhoven",
            "Varies / 32 / 7",
            "n/a",
            "Autotuning",
            "Many Metaheuristic Methods",
        ),
        row(
            "Willemsen et al.",
            "20-220 / 35 / n/a",
            "n/a",
            "Autotuning",
            "BO, RS, SA, MLS and GA",
        ),
        row(
            "Ansel et al.",
            "Varies / 30 / n/a",
            "n/a",
            "Autotuning",
            "Multi-armed bandit, Manual",
        ),
        row(
            "Nugteren et al.",
            "Varies (107 or 117) / 128 / n/a",
            "n/a",
            "Autotuning",
            "RS, SA, PSO",
        ),
        row(
            "Akiba et al.",
            "Varies / 30 / n/a",
            "\"Paired MWU\"",
            "Autotuning",
            "RS, HyperOpt, SMAC3, GPyOpt, TPE+CMA-ES",
        ),
        row(
            "Grebhahn et al.",
            "50, 125 / Unclear / n/a",
            "\"Wilcox test\"",
            "SBSE",
            "RF, SVR, kNN, CART, KRR, MR",
        ),
    ]
}

/// This study's row, derived from the implemented [`ExperimentDesign`].
pub fn our_row(design: &ExperimentDesign) -> SurveyRow {
    let s_lo = SAMPLE_SIZES[0];
    let s_hi = SAMPLE_SIZES[SAMPLE_SIZES.len() - 1];
    let e_hi = design.experiments_for(s_lo);
    let e_lo = design.experiments_for(s_hi);
    SurveyRow {
        author: "Tørring",
        samples_experiments_evaluations: format!("{s_lo}-{s_hi} / {e_hi}-{e_lo} / {FINAL_REPS}"),
        significance_test: "Mann-Whitney U",
        field: "Autotuning",
        algorithms: "RS, BO TPE, BO GP, RF, GA",
    }
}

/// Renders the complete table (survey + our derived row).
pub fn render(design: &ExperimentDesign) -> String {
    let mut rows = survey_rows();
    rows.push(our_row(design));
    let mut out = String::new();
    out.push_str(
        "Table I: Overview of previous experimental designs for empirical optimizations.\n",
    );
    out.push_str(&format!(
        "{:<22} | {:<32} | {:<16} | {:<10} | {}\n",
        "Author", "Samples/Experiments/Evals", "Significance", "Field", "Algorithms"
    ));
    out.push_str(&"-".repeat(130));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<22} | {:<32} | {:<16} | {:<10} | {}\n",
            r.author, r.samples_experiments_evaluations, r.significance_test, r.field, r.algorithms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_all_fourteen_prior_works() {
        assert_eq!(survey_rows().len(), 14);
    }

    #[test]
    fn our_row_matches_paper_at_full_scale() {
        let r = our_row(&ExperimentDesign::paper());
        assert_eq!(r.samples_experiments_evaluations, "25-400 / 800-50 / 10");
        assert_eq!(r.significance_test, "Mann-Whitney U");
        assert_eq!(r.field, "Autotuning");
    }

    #[test]
    fn our_row_reflects_scaling() {
        let r = our_row(&ExperimentDesign::scaled(0.1));
        assert_eq!(r.samples_experiments_evaluations, "25-400 / 80-5 / 10");
    }

    #[test]
    fn render_includes_every_author() {
        let t = render(&ExperimentDesign::paper());
        for r in survey_rows() {
            assert!(t.contains(r.author), "missing {}", r.author);
        }
        assert!(t.contains("Tørring"));
        assert!(t.contains("800-50"));
    }
}
