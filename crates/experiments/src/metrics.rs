//! Per-figure aggregation of the study results.

use crate::grid::{CellKey, StudyResults};
use autotune_core::Algorithm;
use autotune_stats::bootstrap::{self, ConfidenceInterval};
use autotune_stats::{cles, descriptive, mwu, Alternative};
use serde::{Deserialize, Serialize};

/// One heatmap panel: rows = algorithms, columns = sample sizes, for one
/// (benchmark, architecture) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeatmapPanel {
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture name.
    pub architecture: String,
    /// Row labels (algorithm display names).
    pub rows: Vec<String>,
    /// Column labels (sample sizes).
    pub cols: Vec<usize>,
    /// `values[r][c]`, NaN when a cell is missing.
    pub values: Vec<Vec<f64>>,
}

impl HeatmapPanel {
    /// Value at (algorithm row, sample-size column) by labels.
    pub fn value(&self, algo: &str, sample_size: usize) -> Option<f64> {
        let r = self.rows.iter().position(|a| a == algo)?;
        let c = self.cols.iter().position(|&s| s == sample_size)?;
        let v = self.values[r][c];
        (!v.is_nan()).then_some(v)
    }
}

fn panel_grid(results: &StudyResults, metric: impl Fn(&CellKey) -> f64) -> Vec<HeatmapPanel> {
    let algos = results.algorithms();
    results
        .pairs()
        .into_iter()
        .map(|(benchmark, architecture)| {
            let values = algos
                .iter()
                .map(|&algorithm| {
                    results
                        .sample_sizes
                        .iter()
                        .map(|&sample_size| {
                            metric(&CellKey {
                                algorithm,
                                benchmark: benchmark.clone(),
                                architecture: architecture.clone(),
                                sample_size,
                            })
                        })
                        .collect()
                })
                .collect();
            HeatmapPanel {
                benchmark,
                architecture,
                rows: algos.iter().map(|a| a.name().to_string()).collect(),
                cols: results.sample_sizes.clone(),
                values,
            }
        })
        .collect()
}

/// **Fig. 2** — median percent-of-optimum per algorithm and sample size,
/// one panel per (benchmark, architecture).
pub fn fig2(results: &StudyResults) -> Vec<HeatmapPanel> {
    panel_grid(results, |key| {
        results.cell(key).map_or(f64::NAN, |c| c.median_percent())
    })
}

/// One algorithm's aggregate line in **Fig. 3**.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateLine {
    /// Algorithm display name.
    pub algorithm: String,
    /// Sample sizes (x-axis).
    pub sample_sizes: Vec<usize>,
    /// Mean of the per-(benchmark, architecture) median
    /// percent-of-optimum values.
    pub mean: Vec<f64>,
    /// Bootstrap confidence interval of that mean.
    pub ci: Vec<ConfidenceInterval>,
}

/// **Fig. 3** — mean ± CI of the Fig. 2 heatmap values across all
/// (benchmark, architecture) panels.
pub fn fig3(results: &StudyResults, ci_level: f64, seed: u64) -> Vec<AggregateLine> {
    let panels = fig2(results);
    results
        .algorithms()
        .into_iter()
        .map(|algo| {
            let mut mean = Vec::new();
            let mut ci = Vec::new();
            for &s in &results.sample_sizes {
                let vals: Vec<f64> = panels
                    .iter()
                    .filter_map(|p| p.value(algo.name(), s))
                    .collect();
                assert!(!vals.is_empty(), "no panels carry {} at S={s}", algo.name());
                mean.push(descriptive::Summary::of(&vals).mean);
                ci.push(bootstrap::mean_ci(&vals, 1000, ci_level, seed));
            }
            AggregateLine {
                algorithm: algo.name().to_string(),
                sample_sizes: results.sample_sizes.clone(),
                mean,
                ci,
            }
        })
        .collect()
}

/// **Fig. 4a** — median speedup over Random Search:
/// `median(RS runtimes) / median(algo runtimes)` per cell (>1 means the
/// algorithm beats RS).
///
/// # Panics
///
/// Panics if the results do not include RS.
pub fn fig4a(results: &StudyResults) -> Vec<HeatmapPanel> {
    let grid = panel_grid(results, |key| {
        let rs_key = CellKey {
            algorithm: Algorithm::RandomSearch,
            ..key.clone()
        };
        let (Some(cell), Some(rs)) = (results.cell(key), results.cell(&rs_key)) else {
            return f64::NAN;
        };
        rs.median_ms() / cell.median_ms()
    });
    assert!(
        results.algorithms().contains(&Algorithm::RandomSearch),
        "Fig. 4a requires RS in the roster"
    );
    grid
}

/// One CLES cell of **Fig. 4b** with its significance test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClesCell {
    /// `P(algo run beats RS run)` (smaller runtime wins, ties half).
    pub cles: f64,
    /// Two-sided Mann-Whitney U p-value against RS.
    pub p_value: f64,
    /// Significant at the paper's `α = 0.01`?
    pub significant: bool,
}

/// **Fig. 4b** — Common Language Effect Size over Random Search per cell,
/// with MWU significance at the paper's `α = 0.01`. Returned as panels of
/// CLES values plus a parallel significance map.
pub fn fig4b(results: &StudyResults) -> Vec<(HeatmapPanel, Vec<Vec<ClesCell>>)> {
    let algos = results.algorithms();
    results
        .pairs()
        .into_iter()
        .map(|(benchmark, architecture)| {
            let mut values = Vec::new();
            let mut cells = Vec::new();
            for &algorithm in &algos {
                let mut row_vals = Vec::new();
                let mut row_cells = Vec::new();
                for &sample_size in &results.sample_sizes {
                    let key = CellKey {
                        algorithm,
                        benchmark: benchmark.clone(),
                        architecture: architecture.clone(),
                        sample_size,
                    };
                    let rs_key = CellKey {
                        algorithm: Algorithm::RandomSearch,
                        ..key.clone()
                    };
                    let cell = match (results.cell(&key), results.cell(&rs_key)) {
                        (Some(c), Some(rs)) => {
                            let cles_v =
                                cles::probability_of_superiority_min(&c.final_ms, &rs.final_ms);
                            // Degenerate populations (all values equal
                            // across both samples) make the test
                            // undefined; report CLES 0.5, no significance.
                            let pooled_distinct = c
                                .final_ms
                                .iter()
                                .chain(&rs.final_ms)
                                .any(|&v| v != c.final_ms[0]);
                            let p_value = if pooled_distinct {
                                mwu::mann_whitney_u(
                                    &c.final_ms,
                                    &rs.final_ms,
                                    Alternative::TwoSided,
                                )
                                .p_value
                            } else {
                                1.0
                            };
                            ClesCell {
                                cles: cles_v,
                                p_value,
                                significant: p_value < 0.01,
                            }
                        }
                        _ => ClesCell {
                            cles: f64::NAN,
                            p_value: f64::NAN,
                            significant: false,
                        },
                    };
                    row_vals.push(cell.cles);
                    row_cells.push(cell);
                }
                values.push(row_vals);
                cells.push(row_cells);
            }
            (
                HeatmapPanel {
                    benchmark,
                    architecture,
                    rows: algos.iter().map(|a| a.name().to_string()).collect(),
                    cols: results.sample_sizes.clone(),
                    values,
                },
                cells,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{run_study, StudyConfig};
    use gpu_sim::{arch, kernels::Benchmark};

    fn small_results() -> StudyResults {
        let mut c = StudyConfig::smoke();
        c.algorithms = vec![Algorithm::RandomSearch, Algorithm::GeneticAlgorithm];
        c.benchmarks = vec![Benchmark::Add];
        c.architectures = vec![arch::titan_v()];
        c.dataset_size = 400;
        c.oracle_stride = 2003;
        run_study(&c)
    }

    #[test]
    fn fig2_panels_have_full_shape() {
        let r = small_results();
        let panels = fig2(&r);
        assert_eq!(panels.len(), 1);
        let p = &panels[0];
        assert_eq!(p.rows, vec!["RS", "GA"]);
        assert_eq!(p.cols, vec![25, 50, 100, 200, 400]);
        for row in &p.values {
            for v in row {
                assert!(v.is_finite() && *v > 0.0);
            }
        }
    }

    #[test]
    fn fig3_lines_have_cis_containing_means() {
        let r = small_results();
        let lines = fig3(&r, 0.95, 1);
        assert_eq!(lines.len(), 2);
        for line in lines {
            for (m, ci) in line.mean.iter().zip(&line.ci) {
                assert!(ci.lo <= *m + 1e-9 && *m <= ci.hi + 1e-9);
            }
        }
    }

    #[test]
    fn fig4a_rs_row_is_unity() {
        let r = small_results();
        let panels = fig4a(&r);
        let p = &panels[0];
        let rs_row = p.rows.iter().position(|a| a == "RS").unwrap();
        for v in &p.values[rs_row] {
            assert!(
                (v - 1.0).abs() < 1e-12,
                "RS speedup over itself is 1, got {v}"
            );
        }
    }

    #[test]
    fn fig4b_rs_against_itself_is_half() {
        let r = small_results();
        let panels = fig4b(&r);
        let (p, cells) = &panels[0];
        let rs_row = p.rows.iter().position(|a| a == "RS").unwrap();
        for cell in &cells[rs_row] {
            assert!((cell.cles - 0.5).abs() < 1e-12);
            assert!(!cell.significant, "RS cannot significantly beat itself");
        }
    }

    #[test]
    fn cles_values_are_probabilities() {
        let r = small_results();
        for (_, cells) in fig4b(&r) {
            for row in cells {
                for c in row {
                    assert!((0.0..=1.0).contains(&c.cles));
                    assert!((0.0..=1.0).contains(&c.p_value));
                }
            }
        }
    }
}
