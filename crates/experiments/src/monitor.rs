//! Live study monitor: the paper's significance analysis materializing
//! while the study runs.
//!
//! [`StudyMonitor`] consumes trial outcomes one repeat at a time — from
//! the worker pool via [`run_study_monitored`](crate::grid::run_study_monitored)
//! or from a study journal — and maintains, per (technique, sample
//! size), live best-cost statistics (Welford mean/variance, P²
//! quartiles, min/max) plus a running Mann-Whitney U p-value and CLES
//! against the Random Search baseline, pooled across benchmarks and
//! architectures. The statistical conventions match the offline Fig. 4b
//! pipeline exactly: CLES in the runtime-minimization direction,
//! two-sided MWU, degenerate pools reported as `p = 1.0` / CLES 0.5,
//! significance at the paper's `α = 0.01`.
//!
//! An **early-significance signal** latches once the p-value stays below
//! `α` for [`MonitorConfig::stable_repeats`] consecutive observations of
//! a cell — the "you can already see the Fig. 4 dip forming" moment,
//! hours before the study completes.

use crate::grid::CellKey;
use crate::journal::OutcomeRecord;
use autotune_core::Algorithm;
use autotune_stats::streaming::{Extrema, P2Quantile, StreamingMwu, Welford};
use autotune_stats::Alternative;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tuning knobs of a [`StudyMonitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Significance threshold (the paper's `α = 0.01`).
    pub alpha: f64,
    /// Consecutive observations with `p < alpha` before the
    /// early-significance signal latches.
    pub stable_repeats: u32,
    /// The baseline technique every other technique is compared
    /// against (the paper compares against Random Search).
    pub baseline: Algorithm,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            alpha: 0.01,
            stable_repeats: 5,
            baseline: Algorithm::RandomSearch,
        }
    }
}

/// Live state of one (technique, sample size) cell.
struct CellState {
    welford: Welford,
    extrema: Extrema,
    q25: P2Quantile,
    median: P2Quantile,
    q75: P2Quantile,
    /// Incremental test vs the baseline (`a` = this technique, `b` =
    /// baseline); `None` for the baseline's own cells.
    mwu: Option<StreamingMwu>,
    /// Current run of consecutive observations with `p < alpha`.
    stable: u32,
    /// Latched once `stable` reaches the configured threshold.
    signalled: bool,
}

impl CellState {
    fn new(comparable: bool) -> CellState {
        CellState {
            welford: Welford::new(),
            extrema: Extrema::new(),
            q25: P2Quantile::new(0.25),
            median: P2Quantile::median(),
            q75: P2Quantile::new(0.75),
            mwu: comparable.then(StreamingMwu::new),
            stable: 0,
            signalled: false,
        }
    }

    /// Re-evaluates the running test after either side of the
    /// comparison grew.
    fn update_signal(&mut self, config: &MonitorConfig) {
        let Some(mwu) = &self.mwu else { return };
        if mwu.is_empty() {
            return;
        }
        let p = if mwu.degenerate() {
            1.0
        } else {
            mwu.result(Alternative::TwoSided).p_value
        };
        if p < config.alpha {
            self.stable += 1;
            if self.stable >= config.stable_repeats {
                self.signalled = true;
            }
        } else {
            self.stable = 0;
        }
    }
}

/// The running comparison of one technique cell against the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineComparison {
    /// Baseline observations pooled into the comparison so far.
    pub baseline_count: u64,
    /// `P(technique run beats baseline run)` (smaller runtime wins,
    /// ties half) — the Fig. 4b direction.
    pub cles: f64,
    /// Two-sided Mann-Whitney U p-value (1.0 while the pool is
    /// degenerate).
    pub p_value: f64,
    /// `p_value < α` right now.
    pub significant: bool,
    /// Current run of consecutive observations with `p < α`.
    pub stable: u32,
    /// The early signal: `p < α` held for
    /// [`MonitorConfig::stable_repeats`] consecutive observations at
    /// some point (latched).
    pub early_signal: bool,
}

/// Point-in-time summary of one (technique, sample size) cell.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Search technique.
    pub algorithm: Algorithm,
    /// Sample size (the paper's S).
    pub sample_size: usize,
    /// Observations folded in so far.
    pub count: u64,
    /// Running mean of final runtimes, ms.
    pub mean: f64,
    /// Running sample standard deviation.
    pub std_dev: f64,
    /// Best (minimum) final runtime seen.
    pub min: f64,
    /// Worst (maximum) final runtime seen.
    pub max: f64,
    /// P² estimate of the 25th percentile.
    pub q25: f64,
    /// P² estimate of the median.
    pub median: f64,
    /// P² estimate of the 75th percentile.
    pub q75: f64,
    /// The running baseline comparison; `None` for the baseline's own
    /// cells and while no baseline observation has arrived.
    pub comparison: Option<BaselineComparison>,
}

struct Inner {
    cells: BTreeMap<(Algorithm, usize), CellState>,
    /// Baseline observations per sample size, kept so technique cells
    /// created *after* baseline repeats arrived can backfill — the
    /// worker pool completes cells in nondeterministic order.
    baseline_seen: BTreeMap<usize, Vec<f64>>,
    observations: u64,
}

/// Thread-safe live aggregator of study outcomes; see the module docs.
pub struct StudyMonitor {
    config: MonitorConfig,
    inner: Mutex<Inner>,
}

impl Default for StudyMonitor {
    fn default() -> StudyMonitor {
        StudyMonitor::new(MonitorConfig::default())
    }
}

impl StudyMonitor {
    /// A monitor with explicit knobs.
    pub fn new(config: MonitorConfig) -> StudyMonitor {
        StudyMonitor {
            config,
            inner: Mutex::new(Inner {
                cells: BTreeMap::new(),
                baseline_seen: BTreeMap::new(),
                observations: 0,
            }),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Feeds one finished experiment in. Observations pool across
    /// benchmarks and architectures into (technique, sample size)
    /// cells; arrival order does not affect the resulting statistics
    /// (the quantile estimates are order-sensitive approximations, the
    /// test statistics are exact).
    ///
    /// # Panics
    ///
    /// Panics if `final_ms` is not finite.
    pub fn observe(&self, key: &CellKey, final_ms: f64) {
        assert!(final_ms.is_finite(), "monitor: non-finite outcome");
        let mut inner = self.inner.lock();
        inner.observations += 1;
        let sample_size = key.sample_size;
        if key.algorithm == self.config.baseline {
            inner
                .baseline_seen
                .entry(sample_size)
                .or_default()
                .push(final_ms);
            // The baseline's own descriptive cell.
            let cell = inner
                .cells
                .entry((key.algorithm, sample_size))
                .or_insert_with(|| CellState::new(false));
            push_stats(cell, final_ms);
            // Every technique cell at this sample size gains a baseline
            // observation.
            for ((algorithm, s), cell) in inner.cells.iter_mut() {
                if *s == sample_size && *algorithm != self.config.baseline {
                    if let Some(mwu) = &mut cell.mwu {
                        mwu.push_b(final_ms);
                    }
                    cell.update_signal(&self.config);
                }
            }
        } else {
            let config = &self.config;
            let baseline_seen = &inner.baseline_seen;
            // Split-borrow workaround: look the backfill up before the
            // entry call borrows `cells` mutably.
            let backfill: Vec<f64> = baseline_seen.get(&sample_size).cloned().unwrap_or_default();
            let cell = inner
                .cells
                .entry((key.algorithm, sample_size))
                .or_insert_with(|| {
                    let mut fresh = CellState::new(true);
                    if let Some(mwu) = &mut fresh.mwu {
                        for &b in &backfill {
                            mwu.push_b(b);
                        }
                    }
                    fresh
                });
            push_stats(cell, final_ms);
            if let Some(mwu) = &mut cell.mwu {
                mwu.push_a(final_ms);
            }
            cell.update_signal(config);
        }
    }

    /// Feeds one journaled outcome in.
    pub fn observe_record(&self, record: &OutcomeRecord) {
        self.observe(&record.key, record.outcome.final_ms);
    }

    /// Total observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.inner.lock().observations
    }

    /// Point-in-time summary of one cell.
    pub fn summary(&self, algorithm: Algorithm, sample_size: usize) -> Option<CellSummary> {
        let inner = self.inner.lock();
        inner
            .cells
            .get(&(algorithm, sample_size))
            .map(|cell| summarize(algorithm, sample_size, cell, self.config.alpha))
    }

    /// Summaries of every cell, ordered by (technique, sample size).
    pub fn summaries(&self) -> Vec<CellSummary> {
        let inner = self.inner.lock();
        inner
            .cells
            .iter()
            .map(|((algorithm, sample_size), cell)| {
                summarize(*algorithm, *sample_size, cell, self.config.alpha)
            })
            .collect()
    }

    /// Renders the live significance matrix as plain text: one median
    /// table over all techniques, one CLES-vs-baseline table with `*`
    /// marking `p < α` and `!` marking the latched early signal.
    pub fn render(&self) -> String {
        let summaries = self.summaries();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "live study monitor: {} observations, alpha {}",
            self.observations(),
            self.config.alpha
        );
        if summaries.is_empty() {
            out.push_str("(no observations yet)\n");
            return out;
        }
        let mut sample_sizes: Vec<usize> = summaries.iter().map(|s| s.sample_size).collect();
        sample_sizes.sort_unstable();
        sample_sizes.dedup();
        let mut algorithms: Vec<Algorithm> = summaries.iter().map(|s| s.algorithm).collect();
        algorithms.sort();
        algorithms.dedup();
        let by_key: BTreeMap<(Algorithm, usize), &CellSummary> = summaries
            .iter()
            .map(|s| ((s.algorithm, s.sample_size), s))
            .collect();

        out.push_str("\nmedian final runtime (ms)\n");
        let _ = write!(out, "{:<22}", "technique");
        for s in &sample_sizes {
            let _ = write!(out, "{:>10}", format!("S={s}"));
        }
        out.push('\n');
        for &algorithm in &algorithms {
            let _ = write!(out, "{:<22}", algorithm.name());
            for &s in &sample_sizes {
                match by_key.get(&(algorithm, s)) {
                    Some(cell) => {
                        let _ = write!(out, "{:>10.4}", cell.median);
                    }
                    None => {
                        let _ = write!(out, "{:>10}", "-");
                    }
                }
            }
            out.push('\n');
        }

        let _ = writeln!(
            out,
            "\nCLES vs {} ('*' p < {}, '!' early signal)",
            self.config.baseline.name(),
            self.config.alpha
        );
        let _ = write!(out, "{:<22}", "technique");
        for s in &sample_sizes {
            let _ = write!(out, "{:>10}", format!("S={s}"));
        }
        out.push('\n');
        for &algorithm in &algorithms {
            if algorithm == self.config.baseline {
                continue;
            }
            let _ = write!(out, "{:<22}", algorithm.name());
            for &s in &sample_sizes {
                let rendered = match by_key.get(&(algorithm, s)).and_then(|c| c.comparison) {
                    Some(cmp) => {
                        let mut v = format!("{:.2}", cmp.cles);
                        if cmp.significant {
                            v.push('*');
                        }
                        if cmp.early_signal {
                            v.push('!');
                        }
                        v
                    }
                    None => "-".to_string(),
                };
                let _ = write!(out, "{rendered:>10}");
            }
            out.push('\n');
        }
        out
    }
}

/// Folds one observation into a cell's descriptive accumulators.
fn push_stats(cell: &mut CellState, final_ms: f64) {
    cell.welford.push(final_ms);
    cell.extrema.push(final_ms);
    cell.q25.push(final_ms);
    cell.median.push(final_ms);
    cell.q75.push(final_ms);
}

fn summarize(
    algorithm: Algorithm,
    sample_size: usize,
    cell: &CellState,
    alpha: f64,
) -> CellSummary {
    let comparison = cell.mwu.as_ref().and_then(|mwu| {
        if mwu.is_empty() {
            return None;
        }
        let (cles, p_value) = if mwu.degenerate() {
            (0.5, 1.0)
        } else {
            (
                mwu.superiority_min(),
                mwu.result(Alternative::TwoSided).p_value,
            )
        };
        Some(BaselineComparison {
            baseline_count: mwu.len_b() as u64,
            cles,
            p_value,
            significant: p_value < alpha,
            stable: cell.stable,
            early_signal: cell.signalled,
        })
    });
    CellSummary {
        algorithm,
        sample_size,
        count: cell.welford.count(),
        mean: cell.welford.mean(),
        std_dev: cell.welford.std_dev(),
        min: cell.extrema.min().unwrap_or(f64::NAN),
        max: cell.extrema.max().unwrap_or(f64::NAN),
        q25: cell.q25.quantile(),
        median: cell.median.quantile(),
        q75: cell.q75.quantile(),
        comparison,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_stats::{cles, mwu};

    fn key(algorithm: Algorithm, sample_size: usize) -> CellKey {
        CellKey {
            algorithm,
            benchmark: "add".to_string(),
            architecture: "gtx_980".to_string(),
            sample_size,
        }
    }

    /// Distinct, clearly separated populations (GA faster than RS).
    fn separated() -> (Vec<f64>, Vec<f64>) {
        let ga: Vec<f64> = (0..25).map(|i| 1.0 + i as f64 * 0.001).collect();
        let rs: Vec<f64> = (0..25).map(|i| 2.0 + i as f64 * 0.001).collect();
        (ga, rs)
    }

    #[test]
    fn matches_batch_fig4b_convention() {
        let (ga, rs) = separated();
        let monitor = StudyMonitor::default();
        // Scrambled arrival: alternate sides, techniques first.
        for i in 0..25 {
            monitor.observe(&key(Algorithm::GeneticAlgorithm, 50), ga[i]);
            monitor.observe(&key(Algorithm::RandomSearch, 50), rs[i]);
        }
        let summary = monitor
            .summary(Algorithm::GeneticAlgorithm, 50)
            .expect("cell exists");
        let cmp = summary.comparison.expect("comparison exists");
        // Exactly the Fig. 4b batch computation.
        let batch_cles = cles::probability_of_superiority_min(&ga, &rs);
        let batch_p = mwu::mann_whitney_u(&ga, &rs, Alternative::TwoSided).p_value;
        assert_eq!(cmp.cles, batch_cles);
        assert_eq!(cmp.p_value, batch_p);
        assert!(cmp.significant);
        assert_eq!(cmp.baseline_count, 25);
        assert_eq!(summary.count, 25);
        assert_eq!(summary.min, 1.0);
    }

    #[test]
    fn baseline_backfills_cells_created_later() {
        let (ga, rs) = separated();
        // All baseline repeats land before the technique cell exists.
        let late = StudyMonitor::default();
        for &v in &rs {
            late.observe(&key(Algorithm::RandomSearch, 25), v);
        }
        for &v in &ga {
            late.observe(&key(Algorithm::GeneticAlgorithm, 25), v);
        }
        // Interleaved arrival of the same observations.
        let interleaved = StudyMonitor::default();
        for i in 0..25 {
            interleaved.observe(&key(Algorithm::GeneticAlgorithm, 25), ga[i]);
            interleaved.observe(&key(Algorithm::RandomSearch, 25), rs[i]);
        }
        let a = late.summary(Algorithm::GeneticAlgorithm, 25).unwrap();
        let b = interleaved
            .summary(Algorithm::GeneticAlgorithm, 25)
            .unwrap();
        let (ca, cb) = (a.comparison.unwrap(), b.comparison.unwrap());
        // Test statistics depend only on the observation multisets.
        assert_eq!(ca.cles, cb.cles);
        assert_eq!(ca.p_value, cb.p_value);
        assert_eq!(a.count, b.count);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert!((a.mean - b.mean).abs() < 1e-12);
    }

    #[test]
    fn early_signal_latches_after_stable_significance() {
        let (ga, rs) = separated();
        let monitor = StudyMonitor::new(MonitorConfig {
            stable_repeats: 3,
            ..MonitorConfig::default()
        });
        for i in 0..25 {
            monitor.observe(&key(Algorithm::GeneticAlgorithm, 100), ga[i]);
            monitor.observe(&key(Algorithm::RandomSearch, 100), rs[i]);
        }
        let cmp = monitor
            .summary(Algorithm::GeneticAlgorithm, 100)
            .unwrap()
            .comparison
            .unwrap();
        assert!(cmp.significant);
        assert!(cmp.early_signal, "signal must latch: {cmp:?}");
        assert!(cmp.stable >= 3);
    }

    #[test]
    fn overlapping_populations_never_signal() {
        let monitor = StudyMonitor::default();
        // Interleaved values: no location difference.
        for i in 0..30 {
            monitor.observe(&key(Algorithm::GeneticAlgorithm, 25), i as f64 * 2.0);
            monitor.observe(&key(Algorithm::RandomSearch, 25), i as f64 * 2.0 + 1.0);
        }
        let cmp = monitor
            .summary(Algorithm::GeneticAlgorithm, 25)
            .unwrap()
            .comparison
            .unwrap();
        assert!(!cmp.significant, "p = {}", cmp.p_value);
        assert!(!cmp.early_signal);
        assert_eq!(cmp.stable, 0);
    }

    #[test]
    fn degenerate_pools_report_half_cles_without_significance() {
        let monitor = StudyMonitor::default();
        for _ in 0..10 {
            monitor.observe(&key(Algorithm::GeneticAlgorithm, 25), 3.0);
            monitor.observe(&key(Algorithm::RandomSearch, 25), 3.0);
        }
        let cmp = monitor
            .summary(Algorithm::GeneticAlgorithm, 25)
            .unwrap()
            .comparison
            .unwrap();
        assert_eq!(cmp.cles, 0.5);
        assert_eq!(cmp.p_value, 1.0);
        assert!(!cmp.significant);
        assert!(!cmp.early_signal);
    }

    #[test]
    fn technique_without_baseline_has_no_comparison() {
        let monitor = StudyMonitor::default();
        monitor.observe(&key(Algorithm::GeneticAlgorithm, 25), 1.5);
        let summary = monitor.summary(Algorithm::GeneticAlgorithm, 25).unwrap();
        assert!(summary.comparison.is_none());
        // The baseline's own cell never carries one either.
        monitor.observe(&key(Algorithm::RandomSearch, 25), 2.0);
        let rs = monitor.summary(Algorithm::RandomSearch, 25).unwrap();
        assert!(rs.comparison.is_none());
    }

    #[test]
    fn quantiles_are_exact_for_short_streams() {
        let monitor = StudyMonitor::default();
        for v in [4.0, 1.0, 3.0] {
            monitor.observe(&key(Algorithm::RandomSearch, 25), v);
        }
        let s = monitor.summary(Algorithm::RandomSearch, 25).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn render_shows_matrix_with_markers() {
        let (ga, rs) = separated();
        let monitor = StudyMonitor::default();
        for i in 0..25 {
            monitor.observe(&key(Algorithm::GeneticAlgorithm, 50), ga[i]);
            monitor.observe(&key(Algorithm::RandomSearch, 50), rs[i]);
        }
        let text = monitor.render();
        assert!(text.contains("live study monitor: 50 observations"));
        assert!(text.contains("S=50"));
        assert!(text.contains(Algorithm::GeneticAlgorithm.name()));
        assert!(text.contains("CLES vs RandomSearch"));
        // GA beats RS completely: CLES 1.00, significant, signalled.
        assert!(text.contains("1.00*!"), "matrix: {text}");
    }

    #[test]
    fn empty_monitor_renders_placeholder() {
        let text = StudyMonitor::default().render();
        assert!(text.contains("(no observations yet)"));
    }
}
