//! The objective-function abstraction.

use autotune_space::Configuration;

/// Something a tuner can measure: maps a configuration to a cost
/// (runtime in this study; lower is better).
///
/// Implemented for any `FnMut(&Configuration) -> f64`, so closures over a
/// simulator, a dataset, or an analytic test function all plug in.
pub trait Objective {
    /// Measures one configuration. The study's semantics: one *noisy*
    /// execution per call (callers wanting repetition average outside).
    fn evaluate(&mut self, cfg: &Configuration) -> f64;
}

impl<F: FnMut(&Configuration) -> f64> Objective for F {
    fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        self(cfg)
    }
}

/// Wraps an objective with a memoization cache keyed on the
/// configuration. Metaheuristics that revisit configurations (GA
/// populations converge) reuse the recorded measurement instead of
/// spending budget — matching Kernel Tuner's caching behaviour that the
/// paper's GA inherits.
pub struct CachedObjective<'a> {
    inner: &'a mut dyn Objective,
    cache: std::collections::HashMap<Configuration, f64>,
    hits: u64,
}

impl<'a> CachedObjective<'a> {
    /// Wraps `inner`.
    pub fn new(inner: &'a mut dyn Objective) -> Self {
        CachedObjective {
            inner,
            cache: std::collections::HashMap::new(),
            hits: 0,
        }
    }

    /// `true` when `cfg` has been measured before.
    pub fn is_cached(&self, cfg: &Configuration) -> bool {
        self.cache.contains_key(cfg)
    }

    /// Cache hits so far (reuses that consumed no budget).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of distinct configurations measured.
    pub fn distinct(&self) -> usize {
        self.cache.len()
    }
}

impl Objective for CachedObjective<'_> {
    fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        if let Some(&v) = self.cache.get(cfg) {
            self.hits += 1;
            return v;
        }
        let v = self.inner.evaluate(cfg);
        self.cache.insert(cfg.clone(), v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_objectives() {
        let mut calls = 0;
        let mut f = |cfg: &Configuration| {
            calls += 1;
            cfg.values()[0] as f64
        };
        assert_eq!(f.evaluate(&Configuration::from([3])), 3.0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn cache_reuses_measurements() {
        let mut calls = 0;
        let mut inner = |_: &Configuration| {
            calls += 1;
            1.0
        };
        let mut cached = CachedObjective::new(&mut inner);
        let c = Configuration::from([1, 2]);
        assert!(!cached.is_cached(&c));
        cached.evaluate(&c);
        cached.evaluate(&c);
        cached.evaluate(&c);
        assert_eq!(cached.hits(), 2);
        assert_eq!(cached.distinct(), 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn cache_distinguishes_configs() {
        let mut inner = |cfg: &Configuration| cfg.values()[0] as f64;
        let mut cached = CachedObjective::new(&mut inner);
        assert_eq!(cached.evaluate(&Configuration::from([1])), 1.0);
        assert_eq!(cached.evaluate(&Configuration::from([2])), 2.0);
        assert_eq!(cached.distinct(), 2);
        assert_eq!(cached.hits(), 0);
    }
}
