//! The objective-function abstraction.

use autotune_space::Configuration;

/// Something a tuner can measure: maps a configuration to a cost
/// (runtime in this study; lower is better).
///
/// Implemented for any `FnMut(&Configuration) -> f64`, so closures over a
/// simulator, a dataset, or an analytic test function all plug in.
pub trait Objective {
    /// Measures one configuration. The study's semantics: one *noisy*
    /// execution per call (callers wanting repetition average outside).
    fn evaluate(&mut self, cfg: &Configuration) -> f64;

    /// Measures several configurations in one call, returning one cost
    /// per configuration in order.
    ///
    /// The default just loops over [`Objective::evaluate`]; an
    /// implementation backed by a remote evaluator (the service engine)
    /// overrides this to deliver the whole batch across one rendezvous.
    /// Implementations must preserve sequential semantics: the `i`-th
    /// returned value is the cost of `cfgs[i]`.
    fn evaluate_batch(&mut self, cfgs: &[Configuration]) -> Vec<f64> {
        cfgs.iter().map(|cfg| self.evaluate(cfg)).collect()
    }
}

impl<F: FnMut(&Configuration) -> f64> Objective for F {
    fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        self(cfg)
    }
}

/// Wraps an objective with a memoization cache keyed on the
/// configuration. Metaheuristics that revisit configurations (GA
/// populations converge) reuse the recorded measurement instead of
/// spending budget — matching Kernel Tuner's caching behaviour that the
/// paper's GA inherits.
pub struct CachedObjective<'a> {
    inner: &'a mut dyn Objective,
    cache: std::collections::HashMap<Configuration, f64>,
    hits: u64,
}

impl<'a> CachedObjective<'a> {
    /// Wraps `inner`.
    pub fn new(inner: &'a mut dyn Objective) -> Self {
        CachedObjective {
            inner,
            cache: std::collections::HashMap::new(),
            hits: 0,
        }
    }

    /// `true` when `cfg` has been measured before.
    pub fn is_cached(&self, cfg: &Configuration) -> bool {
        self.cache.contains_key(cfg)
    }

    /// Cache hits so far (reuses that consumed no budget).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of distinct configurations measured.
    pub fn distinct(&self) -> usize {
        self.cache.len()
    }
}

impl Objective for CachedObjective<'_> {
    fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        if let Some(&v) = self.cache.get(cfg) {
            self.hits += 1;
            return v;
        }
        let v = self.inner.evaluate(cfg);
        self.cache.insert(cfg.clone(), v);
        v
    }

    /// Batched lookup that mirrors the sequential path exactly: an
    /// in-batch duplicate of an earlier miss counts as a cache hit, so a
    /// batch of `n` evaluations produces the same hit count and the same
    /// inner-call sequence as `n` sequential `evaluate` calls.
    fn evaluate_batch(&mut self, cfgs: &[Configuration]) -> Vec<f64> {
        let mut misses: Vec<Configuration> = Vec::new();
        let mut miss_index: std::collections::HashMap<Configuration, usize> =
            std::collections::HashMap::new();
        enum Slot {
            Hit(f64),
            Miss(usize),
        }
        let slots: Vec<Slot> = cfgs
            .iter()
            .map(|cfg| {
                if let Some(&v) = self.cache.get(cfg) {
                    self.hits += 1;
                    Slot::Hit(v)
                } else if let Some(&i) = miss_index.get(cfg) {
                    self.hits += 1;
                    Slot::Miss(i)
                } else {
                    let i = misses.len();
                    misses.push(cfg.clone());
                    miss_index.insert(cfg.clone(), i);
                    Slot::Miss(i)
                }
            })
            .collect();
        let fresh = if misses.is_empty() {
            Vec::new()
        } else {
            let fresh = self.inner.evaluate_batch(&misses);
            debug_assert_eq!(fresh.len(), misses.len());
            for (cfg, &v) in misses.iter().zip(&fresh) {
                self.cache.insert(cfg.clone(), v);
            }
            fresh
        };
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Hit(v) => v,
                Slot::Miss(i) => fresh[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_objectives() {
        let mut calls = 0;
        let mut f = |cfg: &Configuration| {
            calls += 1;
            cfg.values()[0] as f64
        };
        assert_eq!(f.evaluate(&Configuration::from([3])), 3.0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn cache_reuses_measurements() {
        let mut calls = 0;
        let mut inner = |_: &Configuration| {
            calls += 1;
            1.0
        };
        let mut cached = CachedObjective::new(&mut inner);
        let c = Configuration::from([1, 2]);
        assert!(!cached.is_cached(&c));
        cached.evaluate(&c);
        cached.evaluate(&c);
        cached.evaluate(&c);
        assert_eq!(cached.hits(), 2);
        assert_eq!(cached.distinct(), 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn default_batch_is_sequential() {
        let mut calls = Vec::new();
        let mut f = |cfg: &Configuration| {
            calls.push(cfg.clone());
            cfg.values()[0] as f64
        };
        let batch = [Configuration::from([4]), Configuration::from([9])];
        let values = f.evaluate_batch(&batch);
        assert_eq!(values, vec![4.0, 9.0]);
        assert_eq!(calls, batch);
    }

    #[test]
    fn cached_batch_matches_sequential_semantics() {
        let a = Configuration::from([1]);
        let b = Configuration::from([2]);
        let c = Configuration::from([3]);

        // Sequential reference: evaluate a, b, a, c, b one by one.
        let mut seq_calls = 0;
        let mut seq_inner = |cfg: &Configuration| {
            seq_calls += 1;
            cfg.values()[0] as f64 * 10.0
        };
        let mut seq = CachedObjective::new(&mut seq_inner);
        let seq_values: Vec<f64> = [&a, &b, &a, &c, &b]
            .into_iter()
            .map(|cfg| seq.evaluate(cfg))
            .collect();
        let seq_hits = seq.hits();
        let seq_distinct = seq.distinct();
        drop(seq);

        // Batched run over the same sequence, with `b` pre-cached by an
        // earlier single evaluate to exercise the mixed path.
        let mut batch_calls = 0;
        let mut batch_inner = |cfg: &Configuration| {
            batch_calls += 1;
            cfg.values()[0] as f64 * 10.0
        };
        let mut cached = CachedObjective::new(&mut batch_inner);
        let batch_values =
            cached.evaluate_batch(&[a.clone(), b.clone(), a.clone(), c.clone(), b.clone()]);
        assert_eq!(batch_values, seq_values);
        assert_eq!(cached.hits(), seq_hits);
        assert_eq!(cached.distinct(), seq_distinct);
        drop(cached);
        assert_eq!(batch_calls, seq_calls);
    }

    #[test]
    fn cache_distinguishes_configs() {
        let mut inner = |cfg: &Configuration| cfg.values()[0] as f64;
        let mut cached = CachedObjective::new(&mut inner);
        assert_eq!(cached.evaluate(&Configuration::from([1])), 1.0);
        assert_eq!(cached.evaluate(&Configuration::from([2])), 2.0);
        assert_eq!(cached.distinct(), 2);
        assert_eq!(cached.hits(), 0);
    }
}
