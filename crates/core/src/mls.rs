//! Multi-start Local Search (MLS) — part of the roster Willemsen et
//! al.'s Kernel Tuner study compares (paper Table I: "BO, RS, SA, MLS
//! and GA"); included as an extension technique.
//!
//! Classic best-improvement hill climbing on the ±1 lattice
//! neighbourhood: evaluate all neighbours of the current point, move to
//! the best strictly-improving one, restart from a fresh random point at
//! local minima, until the budget is exhausted.

use crate::objective::CachedObjective;
use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use autotune_space::neighborhood;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The MLS technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiStartLocalSearch;

impl Tuner for MultiStartLocalSearch {
    fn name(&self) -> &'static str {
        "MLS"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut cached = CachedObjective::new(objective);
        let mut rec = Recorder::new(ctx, &mut cached);

        'restarts: while rec.remaining() > 0 {
            trace::point(ctx.trace, "mls_restart", &[("spent", rec.spent() as f64)]);
            let mut current = ctx.sample_config(&mut rng);
            let mut current_cost = rec.measure(&current);

            loop {
                // Best-improvement step over the feasible neighbourhood.
                let mut best_step = None;
                for n in neighborhood::neighbors(ctx.space, &current) {
                    if !ctx.admits(&n) {
                        continue;
                    }
                    if rec.remaining() == 0 {
                        break 'restarts;
                    }
                    // Already-seen neighbours reuse their recorded value
                    // without spending budget (mirrors Kernel Tuner's
                    // cache).
                    let cost = match rec
                        .history()
                        .evaluations()
                        .iter()
                        .rev()
                        .find(|e| e.config == n)
                    {
                        Some(e) => e.value,
                        None => rec.measure(&n),
                    };
                    if cost < current_cost
                        && best_step.as_ref().is_none_or(|(_, c): &(_, f64)| cost < *c)
                    {
                        best_step = Some((n.clone(), cost));
                    }
                }
                match best_step {
                    Some((n, cost)) => {
                        current = n;
                        current_cost = cost;
                    }
                    None => {
                        // Local minimum: restart from a fresh random point.
                        trace::point(ctx.trace, "mls_local_minimum", &[("cost", current_cost)]);
                        continue 'restarts;
                    }
                }
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::{imagecl, Configuration};

    fn bowl(cfg: &Configuration) -> f64 {
        cfg.values().iter().map(|&v| (v as f64 - 3.0).powi(2)).sum()
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let mut obj = bowl;
        let r = MultiStartLocalSearch.tune(&TuneContext::new(&space, 64, 1), &mut obj);
        assert_eq!(r.history.len(), 64);
    }

    #[test]
    fn descends_a_convex_bowl_to_the_bottom() {
        // From any start, best-improvement steps reach the unique local
        // (= global) minimum of a separable bowl at all-threes. A climb
        // costs up to ~12 neighbour evaluations per step and the walk can
        // start ~50 steps away, so give a comfortable budget.
        let space = imagecl::space();
        let mut obj = bowl;
        let r = MultiStartLocalSearch.tune(&TuneContext::new(&space, 700, 2), &mut obj);
        assert_eq!(r.best.value, 0.0, "MLS must find the bowl bottom");
        assert_eq!(r.best.config, Configuration::from([3, 3, 3, 3, 3, 3]));
    }

    #[test]
    fn respects_constraint() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 80, 3).with_constraint(&cons);
        let mut obj = bowl;
        let r = MultiStartLocalSearch.tune(&ctx, &mut obj);
        for e in r.history.evaluations() {
            assert!(ctx.admits(&e.config));
        }
    }

    #[test]
    fn beats_random_search_on_a_multimodal_surface() {
        // On a rippled (multimodal) landscape, descent + restarts should
        // beat pure random sampling for most seeds at equal budget.
        let space = imagecl::space();
        let rippled = |cfg: &Configuration| {
            cfg.values()
                .iter()
                .map(|&v| {
                    let x = v as f64;
                    (x - 5.0) * (x - 5.0) * 0.5 + 2.0 * (1.0 - (x * 1.9).cos())
                })
                .sum::<f64>()
        };
        let mut wins = 0;
        for seed in 0..5 {
            let mut o1 = rippled;
            let mls = MultiStartLocalSearch.tune(&TuneContext::new(&space, 150, seed), &mut o1);
            let mut o2 = rippled;
            let rs = crate::random_search::RandomSearch
                .tune(&TuneContext::new(&space, 150, seed), &mut o2);
            if mls.best.value <= rs.best.value {
                wins += 1;
            }
        }
        assert!(wins >= 3, "MLS won only {wins}/5 against RS");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = bowl;
        let a = MultiStartLocalSearch.tune(&TuneContext::new(&space, 50, 5), &mut obj);
        let b = MultiStartLocalSearch.tune(&TuneContext::new(&space, 50, 5), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }
}
