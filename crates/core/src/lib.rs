//! The autotuning framework and search techniques of the study.
//!
//! This crate is the paper's primary subject matter: a common harness
//! ([`Tuner`], [`TuneContext`], [`TuneResult`]) under which the five
//! studied search techniques run with an identical *sample budget* —
//! the paper's notion of sample-efficiency comparison:
//!
//! | paper name | implementation |
//! |---|---|
//! | RS (Random Search) | [`random_search::RandomSearch`] |
//! | RF (Random Forest regression, non-SMBO) | [`rf_tuner::RandomForestTuner`] |
//! | GA (Genetic Algorithm, van Werkhoven-style) | [`ga::GeneticAlgorithm`] |
//! | BO GP (Bayesian Optimization, Gaussian process) | [`bo_gp::BayesOptGp`] |
//! | BO TPE (Bayesian Optimization, Tree-Parzen) | [`bo_tpe::BayesOptTpe`] |
//!
//! Plus the related-work/extension techniques the paper discusses for
//! future comparison: Simulated Annealing ([`sa`]), Particle Swarm
//! Optimization ([`pso`]), Grid Search ([`grid`]), and the multi-fidelity
//! pair its future-work section names explicitly — HyperBand
//! ([`hyperband`]) and BOHB ([`bohb`]) over the [`fidelity`] abstraction.
//!
//! Following the paper's design (§V-C): the non-SMBO methods (RS, RF,
//! GA) receive the a-priori *constraint specification* through
//! [`TuneContext::constraint`] and only ever propose feasible
//! configurations; the SMBO methods get no constraint and must learn
//! infeasibility from the failure penalty, "a design point in which
//! non-SMBO methods are favored".
//!
//! # Example
//!
//! ```
//! use autotune_core::{registry::Algorithm, TuneContext};
//! use autotune_space::imagecl;
//!
//! // A toy objective: prefer small work-groups (pure function of the
//! // configuration; any FnMut(&Configuration) -> f64 is an Objective).
//! let space = imagecl::space();
//! let constraint = imagecl::constraint();
//! let ctx = TuneContext::new(&space, 50, 42).with_constraint(&constraint);
//! let tuner = Algorithm::RandomSearch.tuner();
//! let result = tuner.tune(&ctx, &mut |cfg: &autotune_space::Configuration| {
//!     cfg.values().iter().map(|&v| v as f64).sum::<f64>()
//! });
//! assert_eq!(result.history.len(), 50);
//! assert!(result.best.value <= 20.0);
//! ```

#![warn(missing_docs)]

pub mod bo_gp;
pub mod bo_tpe;
pub mod bohb;
pub mod commit;
pub mod diagnostics;
pub mod fidelity;
pub mod ga;
pub mod grid;
pub mod history;
pub mod hyperband;
pub mod mls;
pub mod objective;
pub mod prior;
pub mod pso;
pub mod random_search;
pub mod registry;
pub mod rf_tuner;
pub mod sa;
pub mod testfns;
pub mod trace;
pub mod tuner;

pub use commit::{BatchOutcome, CommitterStats, GroupCommitter, WriterHandle};
pub use diagnostics::{
    Advisor, BandDetector, BandVerdict, DiagnosticsConfig, DiagnosticsReport, Pathology,
    Recommendation, SearchDiagnostics,
};
pub use history::{Evaluation, History};
pub use objective::Objective;
pub use prior::{PriorHistory, PriorPoint};
pub use registry::Algorithm;
pub use trace::{
    Durability, JsonlSink, NullSink, TraceEvent, TraceRecord, TraceSink, VecSink, NULL_SINK,
};
pub use tuner::{OwnedTuneSetup, Recorder, TuneContext, TuneResult, Tuner};
