//! BOHB (Falkner, Klein & Hutter 2018) — "Robust and Efficient
//! Hyperparameter Optimization at Scale", the Hyperband + TPE hybrid the
//! paper's future work singles out.
//!
//! BOHB keeps HyperBand's successive-halving brackets but replaces the
//! uniform sampling of bracket starters with a TPE model fitted on the
//! observations of the *highest fidelity that has seen enough data*,
//! mixed with a `random_fraction` of uniform draws for exploration.

use crate::fidelity::{BracketGeometry, MultiFidelityObjective};
use crate::history::{Evaluation, History};
use crate::hyperband::emit_full_fidelity_trial;
use crate::trace::{self, TraceSink, NULL_SINK};
use crate::tuner::TuneResult;
use autotune_space::{sample, Configuration, ParamSpace};
use autotune_surrogates::parzen::ProductParzen;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// BOHB parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BohbParams {
    /// Bracket geometry shared with HyperBand.
    pub geometry: BracketGeometry,
    /// Minimum observations at a fidelity before its TPE model is used.
    pub min_points_in_model: usize,
    /// Fraction of bracket starters drawn uniformly at random.
    pub random_fraction: f64,
    /// TPE split quantile.
    pub gamma: f64,
    /// TPE candidates per model-based draw.
    pub candidates: usize,
    /// TPE prior pseudo-count weight.
    pub prior_weight: f64,
}

impl Default for BohbParams {
    fn default() -> Self {
        BohbParams {
            geometry: BracketGeometry::standard(),
            min_points_in_model: 9, // d + 3 for the 6-D space, BOHB's rule
            random_fraction: 1.0 / 3.0,
            gamma: 0.25,
            candidates: 24,
            prior_weight: 1.0,
        }
    }
}

/// The BOHB technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bohb {
    /// Parameters.
    pub params: BohbParams,
}

impl Bohb {
    /// Runs BOHB for roughly `budget_units` full-evaluation equivalents.
    /// Only full-fidelity measurements enter the returned history.
    ///
    /// # Panics
    ///
    /// Panics if `budget_units < 1.0`.
    pub fn tune_mf(
        &self,
        space: &ParamSpace,
        objective: &mut dyn MultiFidelityObjective,
        budget_units: f64,
        seed: u64,
    ) -> TuneResult {
        self.tune_mf_traced(space, objective, budget_units, seed, &NULL_SINK)
    }

    /// [`Bohb::tune_mf`] with a search-trace sink: emits `bracket` and
    /// `rung` points like HyperBand, plus a `bohb_model` point per
    /// bracket recording how many starters were model-guided, and a
    /// `trial` event per full-fidelity measurement. The sink never
    /// influences the run.
    pub fn tune_mf_traced(
        &self,
        space: &ParamSpace,
        objective: &mut dyn MultiFidelityObjective,
        budget_units: f64,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> TuneResult {
        assert!(
            budget_units >= 1.0,
            "BOHB needs at least one full evaluation"
        );
        let p = self.params;
        let g = p.geometry;
        let s_max = g.s_max();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut history = History::new();

        let ranges: Vec<(u32, u32)> = space
            .params()
            .iter()
            .map(|prm| (prm.lo(), prm.hi()))
            .collect();

        // Observations per fidelity key (fidelity scaled to ppm for a
        // stable integer key).
        let mut pools: BTreeMap<u64, Vec<(Vec<u32>, f64)>> = BTreeMap::new();
        let fid_key = |f: f64| (f * 1e6).round() as u64;

        let per_bracket = budget_units / (s_max + 1) as f64;
        let mut s = s_max as i64;
        while s >= 0 && objective.cost_spent() < budget_units {
            let s_usize = s as usize;
            let rungs = g.rung_fidelities(s_usize);
            let n0 = g.initial_population(s_usize, per_bracket);
            trace::point(
                sink,
                "bracket",
                &[
                    ("s", s_usize as f64),
                    ("n0", n0 as f64),
                    ("rungs", rungs.len() as f64),
                ],
            );
            let model_ready = pools.values().any(|v| v.len() >= p.min_points_in_model);
            trace::point(
                sink,
                "bohb_model",
                &[
                    ("starters", n0 as f64),
                    ("model_ready", if model_ready { 1.0 } else { 0.0 }),
                ],
            );

            // Bracket starters: TPE-guided where a pool is rich enough.
            let mut survivors: Vec<(Configuration, f64)> = (0..n0)
                .map(|_| {
                    let cfg = self.propose(space, &ranges, &pools, &mut rng);
                    (cfg, f64::NAN)
                })
                .collect();

            for (rung, &fidelity) in rungs.iter().enumerate() {
                if objective.cost_spent() >= budget_units {
                    break;
                }
                trace::point(
                    sink,
                    "rung",
                    &[
                        ("bracket", s_usize as f64),
                        ("fidelity", fidelity),
                        ("survivors", survivors.len() as f64),
                    ],
                );
                for (cfg, score) in survivors.iter_mut() {
                    if objective.cost_spent() >= budget_units && score.is_finite() {
                        break;
                    }
                    *score = objective.evaluate_at(cfg, fidelity);
                    pools
                        .entry(fid_key(fidelity))
                        .or_default()
                        .push((cfg.values().to_vec(), *score));
                    if (fidelity - 1.0).abs() < 1e-12 {
                        history.push(cfg.clone(), *score);
                        emit_full_fidelity_trial(sink, &history);
                    }
                }
                if rung + 1 < rungs.len() {
                    survivors.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
                    let keep = ((survivors.len() as f64 / g.eta).round() as usize).max(1);
                    survivors.truncate(keep);
                }
            }
            s -= 1;
        }

        if history.is_empty() {
            let cfg = sample::uniform(space, &mut rng);
            let y = objective.evaluate_at(&cfg, 1.0);
            history.push(cfg, y);
            emit_full_fidelity_trial(sink, &history);
        }
        let best: Evaluation = history.best().expect("anchored above").clone();
        TuneResult { best, history }
    }

    /// One starter proposal: uniform with probability `random_fraction`,
    /// otherwise TPE over the richest fidelity pool.
    fn propose(
        &self,
        space: &ParamSpace,
        ranges: &[(u32, u32)],
        pools: &BTreeMap<u64, Vec<(Vec<u32>, f64)>>,
        rng: &mut ChaCha8Rng,
    ) -> Configuration {
        let p = self.params;
        if rng.gen::<f64>() < p.random_fraction {
            return sample::uniform(space, rng);
        }
        // Highest fidelity with enough observations (BOHB's rule).
        let pool = pools
            .iter()
            .rev()
            .find(|(_, v)| v.len() >= p.min_points_in_model)
            .map(|(_, v)| v);
        let Some(pool) = pool else {
            return sample::uniform(space, rng);
        };
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| pool[a].1.partial_cmp(&pool[b].1).expect("finite"));
        let n_good = ((pool.len() as f64 * p.gamma).ceil() as usize)
            .clamp(2, pool.len().saturating_sub(1).max(2));
        let rows =
            |idx: &[usize]| -> Vec<Vec<u32>> { idx.iter().map(|&i| pool[i].0.clone()).collect() };
        let l = ProductParzen::fit(
            ranges,
            &rows(&order[..n_good.min(order.len())]),
            p.prior_weight,
        );
        let g = ProductParzen::fit(
            ranges,
            &rows(&order[n_good.min(order.len())..]),
            p.prior_weight,
        );
        let mut best: Option<(f64, Vec<u32>)> = None;
        for _ in 0..p.candidates {
            let cand = l.sample(rng);
            let score = l.log_pmf(&cand) - g.log_pmf(&cand);
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, cand));
            }
        }
        Configuration::new(best.expect("candidates > 0").1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::imagecl;

    struct Toy {
        cost: f64,
        full_evals: usize,
    }

    impl MultiFidelityObjective for Toy {
        fn evaluate_at(&mut self, cfg: &Configuration, fidelity: f64) -> f64 {
            self.cost += fidelity;
            if (fidelity - 1.0).abs() < 1e-12 {
                self.full_evals += 1;
            }
            let truth: f64 = cfg.values().iter().map(|&v| (v * v) as f64).sum();
            truth * (1.0 + (1.0 - fidelity) * 0.1)
        }

        fn cost_spent(&self) -> f64 {
            self.cost
        }
    }

    #[test]
    fn runs_within_budget_and_returns_full_fidelity_best() {
        let space = imagecl::space();
        let mut toy = Toy {
            cost: 0.0,
            full_evals: 0,
        };
        let r = Bohb::default().tune_mf(&space, &mut toy, 60.0, 1);
        assert!(toy.cost_spent() <= 75.0);
        assert!(toy.full_evals > 0);
        let truth: f64 = r.best.config.values().iter().map(|&v| (v * v) as f64).sum();
        assert!((r.best.value - truth).abs() < 1e-9);
    }

    #[test]
    fn model_guidance_concentrates_late_brackets() {
        // With a generous budget, BOHB's later (model-guided) proposals
        // should on average be better than pure-uniform starters; proxy:
        // BOHB's best should approach the optimum region (value <= 60 vs
        // random expectation ~270).
        let space = imagecl::space();
        let mut toy = Toy {
            cost: 0.0,
            full_evals: 0,
        };
        let r = Bohb::default().tune_mf(&space, &mut toy, 120.0, 2);
        assert!(r.best.value <= 120.0, "BOHB best {}", r.best.value);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let run = |seed| {
            let mut toy = Toy {
                cost: 0.0,
                full_evals: 0,
            };
            Bohb::default().tune_mf(&space, &mut toy, 40.0, seed)
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }

    #[test]
    fn random_fraction_one_degenerates_to_hyperband() {
        let space = imagecl::space();
        let params = BohbParams {
            random_fraction: 1.0,
            ..BohbParams::default()
        };
        let mut toy = Toy {
            cost: 0.0,
            full_evals: 0,
        };
        let r = Bohb { params }.tune_mf(&space, &mut toy, 40.0, 8);
        assert!(!r.history.is_empty());
    }
}
