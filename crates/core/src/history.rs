//! Evaluation records accumulated during a tuning run.

use autotune_space::Configuration;
use serde::{Deserialize, Serialize};

/// One measured (configuration, cost) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The measured configuration.
    pub config: Configuration,
    /// The observed cost (runtime, ms).
    pub value: f64,
}

/// Ordered log of every budget-consuming measurement in a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    evals: Vec<Evaluation>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends one evaluation.
    pub fn push(&mut self, config: Configuration, value: f64) {
        self.evals.push(Evaluation { config, value });
    }

    /// Number of evaluations recorded.
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// All evaluations in measurement order.
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evals
    }

    /// The best (minimum-cost) evaluation so far. Uses IEEE total
    /// ordering, which agrees with the usual `<` on finite costs and —
    /// unlike `partial_cmp().expect(..)` — cannot panic when a hostile
    /// or broken evaluator reports NaN.
    pub fn best(&self) -> Option<&Evaluation> {
        self.evals.iter().min_by(|a, b| a.value.total_cmp(&b.value))
    }

    /// Running best value after each evaluation — the "convergence
    /// trajectory" used in incumbent plots.
    pub fn incumbent_trajectory(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.evals
            .iter()
            .map(|e| {
                best = best.min(e.value);
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(v: u32) -> Configuration {
        Configuration::from([v])
    }

    #[test]
    fn best_is_minimum() {
        let mut h = History::new();
        h.push(cfg(1), 5.0);
        h.push(cfg(2), 2.0);
        h.push(cfg(3), 9.0);
        assert_eq!(h.best().unwrap().value, 2.0);
        assert_eq!(h.best().unwrap().config, cfg(2));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn empty_history_has_no_best() {
        assert!(History::new().best().is_none());
        assert!(History::new().is_empty());
    }

    #[test]
    fn best_tolerates_non_finite_costs() {
        let mut h = History::new();
        h.push(cfg(1), f64::NAN);
        h.push(cfg(2), 2.0);
        h.push(cfg(3), f64::INFINITY);
        assert_eq!(h.best().unwrap().value, 2.0);
    }

    #[test]
    fn incumbent_trajectory_is_monotone() {
        let mut h = History::new();
        for (i, v) in [4.0, 6.0, 3.0, 5.0, 1.0].iter().enumerate() {
            h.push(cfg(i as u32), *v);
        }
        let traj = h.incumbent_trajectory();
        assert_eq!(traj, vec![4.0, 4.0, 3.0, 3.0, 1.0]);
        assert!(traj.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn serde_round_trip() {
        let mut h = History::new();
        h.push(cfg(7), 1.25);
        let json = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        assert_eq!(back.evaluations(), h.evaluations());
    }
}
