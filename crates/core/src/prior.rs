//! Prior-evaluation seed histories for warm-started tuning runs.
//!
//! A [`PriorHistory`] carries observations from earlier studies of the
//! same (or a related) problem into a fresh run: the surrogate-based
//! tuners fold the highest-weight points into their initial design
//! instead of burning budget on random exploration, and the GA seeds
//! its initial population with the prior incumbent. Weights encode how
//! trustworthy each point is — recent same-architecture evidence near
//! `1.0`, cross-architecture transfer evidence discounted below it (the
//! knowledge-base layer computes them; see `autotune-surrogates`'
//! weighting module).
//!
//! Prior points never consume budget and never reach the objective:
//! they only shape where a warm run looks first. A run without a prior
//! is bit-identical to the pre-warm-start cold path.

use autotune_space::Configuration;
use serde::{Deserialize, Serialize};

/// One prior observation contributed to a warm start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorPoint {
    /// The previously measured configuration.
    pub config: Configuration,
    /// Its observed cost (runtime, ms) in the prior study.
    pub value: f64,
    /// Trust in this observation, in `(0, 1]`: `1.0` for fresh
    /// same-architecture evidence, lower for stale or transferred
    /// points.
    pub weight: f64,
}

/// An ordered collection of weighted prior observations.
///
/// Points keep their insertion order; [`PriorHistory::top`] ranks them
/// by descending weight (stable, so equal weights preserve insertion
/// order) — the order in which tuners consume them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PriorHistory {
    points: Vec<PriorPoint>,
}

impl PriorHistory {
    /// An empty prior.
    pub fn new() -> Self {
        PriorHistory::default()
    }

    /// Appends one prior observation.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is finite and in `(0, 1]` and `value` is
    /// finite — a prior must never smuggle NaNs into a surrogate fit.
    pub fn push(&mut self, config: Configuration, value: f64, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0 && weight <= 1.0,
            "prior weight must be finite in (0, 1], got {weight}"
        );
        assert!(value.is_finite(), "prior value must be finite");
        self.points.push(PriorPoint {
            config,
            value,
            weight,
        });
    }

    /// Number of prior observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no observations were contributed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[PriorPoint] {
        &self.points
    }

    /// The best (minimum-cost) prior observation; ties go to the
    /// heavier-weighted, then the earlier-inserted point.
    pub fn incumbent(&self) -> Option<&PriorPoint> {
        self.points.iter().reduce(|best, p| {
            if p.value < best.value || (p.value == best.value && p.weight > best.weight) {
                p
            } else {
                best
            }
        })
    }

    /// The `n` highest-weight points, heaviest first (stable under
    /// weight ties).
    pub fn top(&self, n: usize) -> Vec<&PriorPoint> {
        let mut ranked: Vec<&PriorPoint> = self.points.iter().collect();
        ranked.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("weights are finite"));
        ranked.truncate(n);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(v: u32) -> Configuration {
        Configuration::from([v])
    }

    #[test]
    fn incumbent_is_minimum_value() {
        let mut p = PriorHistory::new();
        p.push(cfg(1), 5.0, 1.0);
        p.push(cfg(2), 2.0, 0.5);
        p.push(cfg(3), 9.0, 1.0);
        assert_eq!(p.incumbent().unwrap().config, cfg(2));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn incumbent_ties_prefer_heavier_weight() {
        let mut p = PriorHistory::new();
        p.push(cfg(1), 2.0, 0.25);
        p.push(cfg(2), 2.0, 1.0);
        p.push(cfg(3), 2.0, 0.5);
        assert_eq!(p.incumbent().unwrap().config, cfg(2));
    }

    #[test]
    fn top_ranks_by_weight_stably() {
        let mut p = PriorHistory::new();
        p.push(cfg(1), 1.0, 0.5);
        p.push(cfg(2), 2.0, 1.0);
        p.push(cfg(3), 3.0, 0.5);
        let top: Vec<u32> = p.top(3).iter().map(|pt| pt.config.values()[0]).collect();
        assert_eq!(top, vec![2, 1, 3]);
        assert_eq!(p.top(1).len(), 1);
        assert_eq!(p.top(10).len(), 3);
    }

    #[test]
    fn empty_prior_has_no_incumbent() {
        let p = PriorHistory::new();
        assert!(p.is_empty());
        assert!(p.incumbent().is_none());
        assert!(p.top(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "prior weight")]
    fn rejects_zero_weight() {
        PriorHistory::new().push(cfg(1), 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "prior weight")]
    fn rejects_overweight() {
        PriorHistory::new().push(cfg(1), 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_value() {
        PriorHistory::new().push(cfg(1), f64::NAN, 1.0);
    }

    #[test]
    fn serde_round_trips() {
        let mut p = PriorHistory::new();
        p.push(cfg(7), 1.25, 0.75);
        let json = serde_json::to_string(&p).unwrap();
        let back: PriorHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
