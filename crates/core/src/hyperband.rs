//! HyperBand (Li et al. 2017) — the bandit-based multi-fidelity search
//! the paper's future-work section asks to compare against.
//!
//! HyperBand runs a collection of *successive halving* brackets: each
//! bracket starts many random configurations at a cheap fidelity, keeps
//! the best `1/eta` fraction at each rung, and finishes its survivors at
//! full fidelity. Brackets trade off "many cheap starts" (aggressive
//! halving) against "few full-fidelity starts" (plain random search),
//! hedging against misleading low-fidelity signals.

use crate::fidelity::{BracketGeometry, MultiFidelityObjective};
use crate::history::{Evaluation, History};
use crate::trace::{self, TraceRecord, TraceSink, NULL_SINK};
use crate::tuner::TuneResult;
use autotune_space::{sample, Configuration, ParamSpace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// HyperBand parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperBandParams {
    /// Bracket geometry (η, cheapest rung).
    pub geometry: BracketGeometry,
}

impl Default for HyperBandParams {
    fn default() -> Self {
        HyperBandParams {
            geometry: BracketGeometry::standard(),
        }
    }
}

/// The HyperBand technique. Not a [`Tuner`](crate::Tuner) — it needs a
/// [`MultiFidelityObjective`] — but returns the same [`TuneResult`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HyperBand {
    /// Parameters.
    pub params: HyperBandParams,
}

impl HyperBand {
    /// Runs HyperBand until roughly `budget_units` full-evaluation
    /// equivalents are spent. Only *full-fidelity* measurements enter the
    /// returned history/best (low-fidelity scores are not comparable).
    ///
    /// # Panics
    ///
    /// Panics if `budget_units < 1.0` (nothing could run at full
    /// fidelity) or if no full-fidelity evaluation happened (degenerate
    /// geometry).
    pub fn tune_mf(
        &self,
        space: &ParamSpace,
        objective: &mut dyn MultiFidelityObjective,
        budget_units: f64,
        seed: u64,
    ) -> TuneResult {
        self.tune_mf_traced(space, objective, budget_units, seed, &NULL_SINK)
    }

    /// [`HyperBand::tune_mf`] with a search-trace sink: emits a
    /// `bracket` point per successive-halving bracket, a `rung` point
    /// per fidelity rung, and a `trial` event for every full-fidelity
    /// measurement that enters the history. The sink never influences
    /// the run.
    pub fn tune_mf_traced(
        &self,
        space: &ParamSpace,
        objective: &mut dyn MultiFidelityObjective,
        budget_units: f64,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> TuneResult {
        assert!(
            budget_units >= 1.0,
            "HyperBand needs at least one full evaluation"
        );
        let g = self.params.geometry;
        let s_max = g.s_max();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut history = History::new();

        // Split the budget evenly across the s_max+1 brackets, as the
        // original algorithm does per "iteration".
        let per_bracket = budget_units / (s_max + 1) as f64;

        let mut s = s_max as i64;
        while s >= 0 && objective.cost_spent() < budget_units {
            let s_usize = s as usize;
            let rungs = g.rung_fidelities(s_usize);
            let n0 = g.initial_population(s_usize, per_bracket);
            trace::point(
                sink,
                "bracket",
                &[
                    ("s", s_usize as f64),
                    ("n0", n0 as f64),
                    ("rungs", rungs.len() as f64),
                ],
            );

            // Start the bracket with random configurations.
            let mut survivors: Vec<(Configuration, f64)> =
                sample::uniform_many(space, n0, &mut rng)
                    .into_iter()
                    .map(|c| (c, f64::NAN))
                    .collect();

            for (rung, &fidelity) in rungs.iter().enumerate() {
                if objective.cost_spent() >= budget_units {
                    break;
                }
                trace::point(
                    sink,
                    "rung",
                    &[
                        ("bracket", s_usize as f64),
                        ("fidelity", fidelity),
                        ("survivors", survivors.len() as f64),
                    ],
                );
                // Evaluate every survivor at this rung.
                for (cfg, score) in survivors.iter_mut() {
                    // Stop early on budget exhaustion, but never leave a
                    // survivor without a score (NaN would poison the
                    // rank sort below).
                    if objective.cost_spent() >= budget_units && score.is_finite() {
                        break;
                    }
                    *score = objective.evaluate_at(cfg, fidelity);
                    if (fidelity - 1.0).abs() < 1e-12 {
                        history.push(cfg.clone(), *score);
                        emit_full_fidelity_trial(sink, &history);
                    }
                }
                // Keep the best 1/eta for the next rung.
                if rung + 1 < rungs.len() {
                    survivors.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"));
                    let keep = ((survivors.len() as f64 / g.eta).round() as usize).max(1);
                    survivors.truncate(keep);
                }
            }
            s -= 1;
        }

        // Guarantee at least one full-fidelity anchor measurement.
        if history.is_empty() {
            let cfg = sample::uniform(space, &mut rng);
            let y = objective.evaluate_at(&cfg, 1.0);
            history.push(cfg, y);
            emit_full_fidelity_trial(sink, &history);
        }

        let best: Evaluation = history.best().expect("anchored above").clone();
        TuneResult { best, history }
    }
}

/// Emits a `trial` event for the full-fidelity measurement just pushed
/// onto `history` (shared by HyperBand and BOHB, whose histories only
/// record full-fidelity evaluations).
pub(crate) fn emit_full_fidelity_trial(sink: &dyn TraceSink, history: &History) {
    if !sink.is_enabled() {
        return;
    }
    let last = history
        .evaluations()
        .last()
        .expect("called right after a push");
    sink.emit(TraceRecord::Trial {
        index: history.len() - 1,
        config: last.config.values().to_vec(),
        cost: last.value,
        best: history.best().expect("non-empty").value,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::FullFidelityAdapter;
    use autotune_space::imagecl;

    /// A fidelity-aware toy objective: the true cost plus noise that
    /// shrinks with fidelity.
    struct Toy {
        cost: f64,
        evals: Vec<(Configuration, f64)>,
    }

    impl MultiFidelityObjective for Toy {
        fn evaluate_at(&mut self, cfg: &Configuration, fidelity: f64) -> f64 {
            self.cost += fidelity;
            self.evals.push((cfg.clone(), fidelity));
            let truth: f64 = cfg.values().iter().map(|&v| (v * v) as f64).sum();
            // Low fidelity = biased view (coarse model of the landscape).
            truth * (1.0 + (1.0 - fidelity) * 0.2 * ((cfg.values()[0] % 3) as f64 - 1.0))
        }

        fn cost_spent(&self) -> f64 {
            self.cost
        }
    }

    #[test]
    fn spends_close_to_the_budget() {
        let space = imagecl::space();
        let mut toy = Toy {
            cost: 0.0,
            evals: Vec::new(),
        };
        let budget = 60.0;
        let r = HyperBand::default().tune_mf(&space, &mut toy, budget, 3);
        assert!(
            toy.cost_spent() <= budget * 1.25,
            "spent {}",
            toy.cost_spent()
        );
        assert!(
            toy.cost_spent() >= budget * 0.4,
            "spent only {}",
            toy.cost_spent()
        );
        assert!(!r.history.is_empty());
    }

    #[test]
    fn evaluates_many_more_configs_than_plain_search_could() {
        let space = imagecl::space();
        let mut toy = Toy {
            cost: 0.0,
            evals: Vec::new(),
        };
        let budget = 50.0;
        let _ = HyperBand::default().tune_mf(&space, &mut toy, budget, 4);
        let distinct: std::collections::HashSet<_> =
            toy.evals.iter().map(|(c, _)| c.clone()).collect();
        assert!(
            distinct.len() as f64 > budget,
            "HyperBand saw only {} configs under a {budget}-unit budget",
            distinct.len()
        );
    }

    #[test]
    fn uses_a_range_of_fidelities() {
        let space = imagecl::space();
        let mut toy = Toy {
            cost: 0.0,
            evals: Vec::new(),
        };
        let _ = HyperBand::default().tune_mf(&space, &mut toy, 40.0, 5);
        let fidelities: std::collections::HashSet<u64> =
            toy.evals.iter().map(|(_, f)| (f * 1e6) as u64).collect();
        assert!(fidelities.len() >= 3, "only fidelities {fidelities:?}");
        assert!(toy.evals.iter().any(|(_, f)| (*f - 1.0).abs() < 1e-12));
    }

    #[test]
    fn best_comes_from_full_fidelity_measurements() {
        let space = imagecl::space();
        let mut toy = Toy {
            cost: 0.0,
            evals: Vec::new(),
        };
        let r = HyperBand::default().tune_mf(&space, &mut toy, 60.0, 6);
        // The best's value must be a true full-fidelity evaluation of its
        // config (bias term vanishes at fidelity 1).
        let truth: f64 = r.best.config.values().iter().map(|&v| (v * v) as f64).sum();
        assert!((r.best.value - truth).abs() < 1e-9);
    }

    #[test]
    fn works_through_the_full_fidelity_adapter() {
        let space = imagecl::space();
        let mut obj = |cfg: &Configuration| cfg.values().iter().map(|&v| v as f64).sum::<f64>();
        let mut mf = FullFidelityAdapter::new(&mut obj);
        let r = HyperBand::default().tune_mf(&space, &mut mf, 30.0, 7);
        assert!(r.best.value >= 6.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let run = |seed| {
            let mut toy = Toy {
                cost: 0.0,
                evals: Vec::new(),
            };
            HyperBand::default().tune_mf(&space, &mut toy, 40.0, seed)
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
        let c = run(10);
        assert_ne!(a.history.evaluations(), c.history.evaluations());
    }
}
