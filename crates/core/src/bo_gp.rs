//! Bayesian Optimization with Gaussian Processes — the paper's BO GP,
//! configured like scikit-optimize's `gp_minimize`:
//!
//! * Matérn-5/2 kernel on unit-cube features;
//! * Expected Improvement acquisition;
//! * "Initialization uses 8% of the samples, and the remaining 92% are
//!   used as prediction samples in the search" (paper §VI-B);
//! * runtimes standardized in **log space** before fitting, which keeps
//!   the failure-penalty outliers from flattening the kernel;
//! * hyperparameters re-selected by log-marginal-likelihood grid search
//!   every [`BoGpParams::refit_every`] observations, with `O(n²)`
//!   incremental Cholesky updates in between;
//! * **no constraint specification** — like the paper's SMBO libraries,
//!   this tuner proposes from the whole space and must learn that
//!   oversized work-groups fail.

use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use autotune_space::{neighborhood, sample, Configuration};
use autotune_surrogates::acquisition::Acquisition;
use autotune_surrogates::gp::model::{default_grid, GaussianProcess};
use autotune_surrogates::scaling::Standardizer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Cap on how many prior points a warm start folds into the initial
/// design — a converged donor study contributes its best evidence, not
/// its full trajectory (an `O(n³)` GP fit over hundreds of stale points
/// would cost more than it informs).
const MAX_PRIOR_POINTS: usize = 32;

/// Clamps objective values into the strictly-positive domain the
/// log-space standardizer requires (runtimes always are; synthetic test
/// objectives may touch zero).
fn clamp_positive(ys: &[f64]) -> Vec<f64> {
    ys.iter().map(|&y| y.max(1e-12)).collect()
}

/// Emits the fitted model's hyperparameters and evidence so trace
/// consumers can watch the surrogate evolve (the Fig. 4 dip diagnosis).
fn emit_gp_params(sink: &dyn trace::TraceSink, gp: &GaussianProcess) {
    if !sink.is_enabled() {
        return;
    }
    let prm = gp.params();
    let lml = gp.log_marginal_likelihood();
    let mut fields = vec![
        ("lengthscale", prm.lengthscale),
        ("signal_variance", prm.signal_variance),
        ("noise_variance", prm.noise_variance),
        ("observations", gp.len() as f64),
    ];
    if lml.is_finite() {
        fields.push(("log_marginal_likelihood", lml));
    }
    trace::point(sink, "gp_params", &fields);
}

/// BO-GP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoGpParams {
    /// Fraction of the budget used for random initialization (paper: 8%).
    pub init_fraction: f64,
    /// Acquisition function (paper: Expected Improvement).
    pub acquisition: Acquisition,
    /// Random candidates scored per iteration.
    pub candidates: usize,
    /// Re-run the hyperparameter grid search every this many points.
    pub refit_every: usize,
    /// Use Latin-hypercube instead of i.i.d. random initialization.
    pub lhs_init: bool,
}

impl Default for BoGpParams {
    fn default() -> Self {
        BoGpParams {
            init_fraction: 0.08,
            acquisition: Acquisition::paper_default(),
            candidates: 192,
            refit_every: 25,
            lhs_init: false,
        }
    }
}

/// The BO GP technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct BayesOptGp {
    /// Hyperparameters.
    pub params: BoGpParams,
}

impl Tuner for BayesOptGp {
    fn name(&self) -> &'static str {
        "BO GP"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let p = self.params;
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut rec = Recorder::new(ctx, objective);

        // Raw observations (features kept in unit cube, targets in ms).
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(ctx.budget);
        let mut ys: Vec<f64> = Vec::with_capacity(ctx.budget);
        let mut seen: HashSet<Configuration> = HashSet::new();

        if let Some(prior) = ctx.seed_prior() {
            // Warm start: the prior replaces the random 8% phase. The
            // highest-weight prior points enter the initial design
            // budget-free; the only spent initialization sample is the
            // prior incumbent, which anchors the model to live data.
            for pt in prior.top(MAX_PRIOR_POINTS) {
                if seen.insert(pt.config.clone()) {
                    xs.push(ctx.space.to_unit_features(&pt.config));
                    ys.push(pt.value);
                }
            }
            trace::point(ctx.trace, "prior_seed", &[("points", xs.len() as f64)]);
            let incumbent = prior.incumbent().expect("non-empty prior").config.clone();
            let y = rec.measure(&incumbent);
            if seen.insert(incumbent.clone()) {
                xs.push(ctx.space.to_unit_features(&incumbent));
                ys.push(y);
            }
        } else {
            // 8% of the budget, but never fewer than 5 points: a GP over a
            // 6-D space fitted on 2 observations produces a degenerate
            // acquisition landscape (gp_minimize similarly floors its
            // n_initial_points).
            let n_init = ((ctx.budget as f64 * p.init_fraction).round() as usize)
                .clamp(5.min(ctx.budget), ctx.budget);

            let init_configs: Vec<Configuration> = if p.lhs_init {
                sample::latin_hypercube(ctx.space, n_init, &mut rng)
            } else {
                (0..n_init)
                    .map(|_| sample::uniform(ctx.space, &mut rng))
                    .collect()
            };
            for cfg in init_configs {
                if rec.remaining() == 0 {
                    break;
                }
                let y = rec.measure(&cfg);
                xs.push(ctx.space.to_unit_features(&cfg));
                ys.push(y);
                seen.insert(cfg);
            }
        }

        // Fit the initial model. Runtimes are positive, but arbitrary
        // user objectives may emit zeros or negatives; clamp into the
        // log-transform's domain.
        let fit = trace::span(ctx.trace, "surrogate_fit");
        let mut standardizer = Standardizer::fit(&clamp_positive(&ys), true);
        let mut gp = GaussianProcess::fit_with_grid_search(
            xs.clone(),
            standardizer.forward_all(&clamp_positive(&ys)),
            &default_grid(),
        );
        fit.end();
        emit_gp_params(ctx.trace, &gp);
        let mut since_refit = 0usize;

        if ctx.batch > 1 {
            // Constant-liar batching (Ginsbourger et al.; the scheme
            // production SMBO services use for parallel suggestions):
            // each round proposes `q = ctx.batch` configurations by
            // repeatedly maximizing EI on a *clone* of the model into
            // which every pick is inserted with a lied-about outcome —
            // the best cost observed so far — so successive picks repel
            // each other. The lies live only in the per-round clone;
            // after the batch is measured the real model is refitted
            // from the true history, so no lie ever reaches the
            // returned history or the journal.
            while rec.remaining() > 0 {
                let q = ctx.batch.min(rec.remaining());
                let incumbent = rec
                    .best()
                    .expect("initialization measured at least one config")
                    .config
                    .clone();
                let best_observed =
                    standardizer.forward(rec.best().expect("non-empty history").value.max(1e-12));
                let liar = best_observed;
                let mut liar_gp = gp.clone();
                let mut picks: Vec<Configuration> = Vec::with_capacity(q);
                let acquisition = trace::span(ctx.trace, "acquisition");
                for _ in 0..q {
                    let mut pool: Vec<Configuration> = (0..p.candidates)
                        .map(|_| sample::uniform(ctx.space, &mut rng))
                        .collect();
                    pool.extend(neighborhood::neighbors(ctx.space, &incumbent));
                    let mut best_cfg: Option<(f64, Configuration)> = None;
                    for cfg in pool {
                        if seen.contains(&cfg) || picks.contains(&cfg) {
                            continue;
                        }
                        let feats = ctx.space.to_unit_features(&cfg);
                        let (mean, var) = liar_gp.predict(&feats);
                        let score = p.acquisition.score(mean, var.sqrt(), best_observed);
                        if best_cfg.as_ref().is_none_or(|(s, _)| score > *s) {
                            best_cfg = Some((score, cfg));
                        }
                    }
                    let next = best_cfg
                        .map(|(_, c)| c)
                        .unwrap_or_else(|| sample::uniform(ctx.space, &mut rng));
                    // The lie may fail to insert numerically (duplicate
                    // point); the clone is discarded after the round, so
                    // picking proceeds off the un-updated clone instead.
                    let _ = liar_gp.add_point(ctx.space.to_unit_features(&next), liar);
                    picks.push(next);
                }
                acquisition.end();
                let measured = rec.measure_batch(&picks);
                for (cfg, y) in picks.iter().zip(&measured) {
                    xs.push(ctx.space.to_unit_features(cfg));
                    ys.push(*y);
                    seen.insert(cfg.clone());
                }
                if rec.remaining() == 0 {
                    break;
                }
                let fit = trace::span(ctx.trace, "surrogate_fit");
                standardizer = Standardizer::fit(&clamp_positive(&ys), true);
                gp = GaussianProcess::fit_with_grid_search(
                    xs.clone(),
                    standardizer.forward_all(&clamp_positive(&ys)),
                    &default_grid(),
                );
                fit.end();
                emit_gp_params(ctx.trace, &gp);
            }
            return rec.finish();
        }

        while rec.remaining() > 0 {
            // Candidate pool: random configurations plus the incumbent's
            // lattice neighbours (local refinement, as gp_minimize's
            // L-BFGS restarts effectively do in the continuous case).
            let incumbent = rec
                .best()
                .expect("initialization measured at least one config")
                .config
                .clone();
            let mut pool: Vec<Configuration> = (0..p.candidates)
                .map(|_| sample::uniform(ctx.space, &mut rng))
                .collect();
            pool.extend(neighborhood::neighbors(ctx.space, &incumbent));

            let best_observed =
                standardizer.forward(rec.best().expect("non-empty history").value.max(1e-12));
            let acquisition = trace::span(ctx.trace, "acquisition");
            let mut best_cfg: Option<(f64, Configuration)> = None;
            for cfg in pool {
                if seen.contains(&cfg) {
                    continue;
                }
                let feats = ctx.space.to_unit_features(&cfg);
                let (mean, var) = gp.predict(&feats);
                let score = p.acquisition.score(mean, var.sqrt(), best_observed);
                if best_cfg.as_ref().is_none_or(|(s, _)| score > *s) {
                    best_cfg = Some((score, cfg));
                }
            }
            acquisition.end();
            if let Some((score, _)) = &best_cfg {
                if score.is_finite() {
                    trace::point(ctx.trace, "acquisition_value", &[("score", *score)]);
                }
            }
            // Whole pool already evaluated (tiny spaces): fall back to a
            // fresh random config, allowing repeats as a last resort.
            let next = best_cfg
                .map(|(_, c)| c)
                .unwrap_or_else(|| sample::uniform(ctx.space, &mut rng));

            // Leave-last-out probe for the diagnostics layer: the GP's
            // predicted (standardized log-space) mean for the point it
            // is about to measure. Monotone in runtime, so rank
            // calibration against the observed cost is invariant to the
            // transform. Observational only — no RNG, gated on the sink.
            if ctx.trace.is_enabled() {
                let (mean, _) = gp.predict(&ctx.space.to_unit_features(&next));
                if mean.is_finite() {
                    trace::point(ctx.trace, "surrogate_pred", &[("value", mean)]);
                }
            }
            let y = rec.measure(&next);
            xs.push(ctx.space.to_unit_features(&next));
            ys.push(y);
            seen.insert(next);
            since_refit += 1;

            if rec.remaining() == 0 {
                break;
            }

            // Early on, hyperparameters move fast as evidence accrues;
            // refit more eagerly below 100 observations.
            let refit_every = if ys.len() < 100 {
                p.refit_every.min(10)
            } else {
                p.refit_every
            };
            if since_refit >= refit_every {
                let fit = trace::span(ctx.trace, "surrogate_fit");
                standardizer = Standardizer::fit(&clamp_positive(&ys), true);
                gp = GaussianProcess::fit_with_grid_search(
                    xs.clone(),
                    standardizer.forward_all(&clamp_positive(&ys)),
                    &default_grid(),
                );
                fit.end();
                emit_gp_params(ctx.trace, &gp);
                since_refit = 0;
            } else {
                // Incremental update under the current standardizer; on
                // numerical failure (duplicate point), refit from scratch
                // with the grid (which can raise the noise floor).
                let feats = xs.last().expect("just pushed").clone();
                let z = standardizer.forward(ys[ys.len() - 1].max(1e-12));
                if gp.add_point(feats, z).is_err() {
                    let fit = trace::span(ctx.trace, "surrogate_fit");
                    standardizer = Standardizer::fit(&clamp_positive(&ys), true);
                    gp = GaussianProcess::fit_with_grid_search(
                        xs.clone(),
                        standardizer.forward_all(&clamp_positive(&ys)),
                        &default_grid(),
                    );
                    fit.end();
                    emit_gp_params(ctx.trace, &gp);
                    since_refit = 0;
                }
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_search::RandomSearch;
    use autotune_space::imagecl;

    /// Smooth multimodal objective over the ImageCL space.
    fn smooth(cfg: &Configuration) -> f64 {
        let v = cfg.values();
        let a = (v[0] as f64 - 3.0).powi(2) + (v[1] as f64 - 5.0).powi(2);
        let b = (v[3] as f64 - 6.0).powi(2) + (v[4] as f64 - 2.0).powi(2);
        10.0 + a + b + (v[2] as f64) * 0.1 + (v[5] as f64) * 0.2
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 30, 4);
        let mut obj = smooth;
        let r = BayesOptGp::default().tune(&ctx, &mut obj);
        assert_eq!(r.history.len(), 30);
    }

    #[test]
    fn initialization_fraction_is_8_percent() {
        // Budget 100 -> 8 random init points. We can't observe the
        // boundary directly, but the run must work at every paper budget.
        let space = imagecl::space();
        let mut obj = smooth;
        for budget in [25, 50, 100] {
            let ctx = TuneContext::new(&space, budget, 2);
            let r = BayesOptGp::default().tune(&ctx, &mut obj);
            assert_eq!(r.history.len(), budget);
        }
    }

    #[test]
    fn beats_random_search_on_smooth_objective() {
        let space = imagecl::space();
        let mut bo_wins = 0;
        for seed in 0..5 {
            let mut obj = smooth;
            let bo = BayesOptGp::default().tune(&TuneContext::new(&space, 40, seed), &mut obj);
            let mut obj2 = smooth;
            let rs = RandomSearch.tune(&TuneContext::new(&space, 40, seed), &mut obj2);
            if bo.best.value <= rs.best.value {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 3, "BO GP won only {bo_wins}/5 against RS");
    }

    #[test]
    fn survives_failure_penalties() {
        // Objective with a large finite penalty region (like the
        // simulator's invalid launches).
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = |cfg: &Configuration| {
            if autotune_space::Constraint::is_satisfied(&cons, cfg) {
                smooth(cfg)
            } else {
                10_000.0
            }
        };
        let ctx = TuneContext::new(&space, 35, 6);
        let r = BayesOptGp::default().tune(&ctx, &mut obj);
        assert!(r.best.value < 10_000.0, "never found a feasible config");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = smooth;
        let t = BayesOptGp::default();
        let a = t.tune(&TuneContext::new(&space, 25, 33), &mut obj);
        let b = t.tune(&TuneContext::new(&space, 25, 33), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }

    #[test]
    fn warm_start_opens_with_the_prior_incumbent() {
        use crate::prior::PriorHistory;
        let space = imagecl::space();
        let mut obj = smooth;
        let donor = BayesOptGp::default().tune(&TuneContext::new(&space, 40, 1), &mut obj);
        let mut prior = PriorHistory::new();
        for e in donor.history.evaluations() {
            prior.push(e.config.clone(), e.value, 1.0);
        }

        let warm_ctx = TuneContext::new(&space, 10, 2).with_prior(&prior);
        let warm = BayesOptGp::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.len(), 10);
        // The first spent sample is the donor's incumbent, so the warm
        // run matches the donor's best immediately (the objective is
        // deterministic here).
        assert_eq!(warm.history.evaluations()[0].config, donor.best.config);
        assert!(warm.best.value <= donor.best.value);

        // Warm runs are deterministic per seed, like cold ones.
        let again = BayesOptGp::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.evaluations(), again.history.evaluations());

        // A cold run with the same seed takes a different trajectory —
        // the prior genuinely changed the search.
        let cold = BayesOptGp::default().tune(&TuneContext::new(&space, 10, 2), &mut obj);
        assert_ne!(cold.history.evaluations(), warm.history.evaluations());
    }

    #[test]
    fn constant_liar_batches_spend_exact_budget_and_diversify() {
        let space = imagecl::space();
        let mut obj = smooth;
        for batch in [2, 4, 8] {
            let ctx = TuneContext::new(&space, 30, 4).with_batch(batch);
            let r = BayesOptGp::default().tune(&ctx, &mut obj);
            assert_eq!(r.history.len(), 30);
            // The liar's repulsion keeps within-batch picks distinct.
            let distinct: std::collections::HashSet<_> = r
                .history
                .evaluations()
                .iter()
                .map(|e| e.config.clone())
                .collect();
            assert!(
                distinct.len() >= 28,
                "batch={batch}: only {} distinct configs",
                distinct.len()
            );
            // Deterministic per seed, like the sequential path.
            let again = BayesOptGp::default().tune(&ctx, &mut obj);
            assert_eq!(r.history.evaluations(), again.history.evaluations());
        }
    }

    #[test]
    fn rarely_repeats_configurations() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = BayesOptGp::default().tune(&TuneContext::new(&space, 40, 12), &mut obj);
        let distinct: std::collections::HashSet<_> = r
            .history
            .evaluations()
            .iter()
            .map(|e| e.config.clone())
            .collect();
        assert!(
            distinct.len() >= 38,
            "only {} distinct configs",
            distinct.len()
        );
    }
}
