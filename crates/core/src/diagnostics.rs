//! Search-health diagnostics: is the *optimizer* healthy, not just the
//! process serving it?
//!
//! The paper's headline findings are search pathologies — BO GP's
//! performance *dips* between sample sizes 100 and 200 ("potentially due
//! to overfitting", §VI-D), RF "often performs worse than RS", and the
//! best technique flips with the budget. This module operationalizes
//! those findings as runtime signals, at two timescales:
//!
//! * [`SearchDiagnostics`] watches **one live session** by consuming the
//!   same [`TraceEvent`] stream the flight recorder emits (trials, phase
//!   spans, `surrogate_pred` probes). It maintains streaming signals —
//!   incumbent-improvement rate and stall length, a random-search null
//!   model built from the session's own cost stream, surrogate
//!   calibration (predicted-vs-observed rank concordance of the
//!   leave-last-out `surrogate_pred` probes), exploration/exploitation
//!   balance from acquisition scores, and a startup-vs-guided
//!   Mann-Whitney comparison — and latches [`Pathology`] verdicts plus a
//!   sample-size [`Advisor`]. Consuming trace events keeps it purely
//!   observational: a diagnosed run is bit-identical to an undiagnosed
//!   one, the same contract the [`TraceSink`](crate::trace::TraceSink)
//!   already enforces.
//! * [`BandDetector`] judges **finished study populations** — outcome
//!   arrays per (algorithm, benchmark, architecture, sample size) cell —
//!   with the paper's own statistics (exact Mann-Whitney U at study
//!   repetition counts, CLES): the 100→200 overfitting-dip signature and
//!   the worse-than-random comparison against the RS cell. The
//!   `diagnostics_study` binary validates both against the committed
//!   scale-0.05 study results.
//!
//! Everything here reuses `autotune_stats` (the exact/streaming MWU and
//! CLES from PR 4) and is deterministic: no clocks, no RNG, no
//! allocation beyond the observation buffers.

use crate::trace::{TraceEvent, TraceRecord};
use autotune_stats::{
    common_language_effect_size, mann_whitney_u, Alternative, StreamingMwu, Welford,
};
use serde::{Deserialize, Serialize};

/// Knobs of the per-session diagnostics engine. The defaults are sized
/// for the paper's budgets (25–400 samples).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticsConfig {
    /// Significance level of the advisor's supporting Mann-Whitney
    /// tests (the `--advisor-alpha` flag).
    pub advisor_alpha: f64,
    /// Trials without incumbent improvement before the run counts as
    /// stalled (and the Converged/Stalled verdicts become eligible).
    pub stall_window: usize,
    /// Minimum trials before any verdict may latch.
    pub min_trials: usize,
    /// Minimum `surrogate_pred` calibration pairs before the
    /// Overfitting verdict may latch.
    pub min_calibration_pairs: usize,
    /// Minimum per-phase sample size (startup and guided) before the
    /// WorseThanRandom verdict may latch.
    pub min_phase_samples: usize,
    /// CLES threshold for the WorseThanRandom verdict: the probability
    /// that a guided trial costs more than a startup trial.
    pub cles_threshold: f64,
    /// Relative spread of the trailing cost window at or under which a
    /// stall counts as Converged instead of Stalled.
    pub converged_spread: f64,
    /// Relative incumbent improvement per trial (over the trailing
    /// window) under which the advisor recommends stopping.
    pub min_marginal_improvement: f64,
}

impl Default for DiagnosticsConfig {
    fn default() -> Self {
        DiagnosticsConfig {
            advisor_alpha: 0.05,
            stall_window: 25,
            min_trials: 20,
            min_calibration_pairs: 10,
            min_phase_samples: 10,
            cles_threshold: 0.7,
            converged_spread: 0.02,
            min_marginal_improvement: 1e-4,
        }
    }
}

/// A latched search pathology. Once latched, a verdict never clears —
/// the point is to preserve the moment the signature appeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Pathology {
    /// The incumbent stalled while recent costs cluster tightly around
    /// it: the search settled into a basin.
    Converged,
    /// The incumbent stalled while recent costs stay spread out: the
    /// search keeps exploring without improving.
    Stalled,
    /// The surrogate's leave-last-out predictions stopped ranking
    /// outcomes correctly while the incumbent stalls — the GP dip
    /// signature of the paper's §VI-D.
    Overfitting,
    /// The model-guided phase costs more than the session's own random
    /// startup phase with a large effect size — the paper's RF case.
    WorseThanRandom,
}

impl Pathology {
    /// Short lowercase label (matches the serde encoding).
    pub fn label(self) -> &'static str {
        match self {
            Pathology::Converged => "converged",
            Pathology::Stalled => "stalled",
            Pathology::Overfitting => "overfitting",
            Pathology::WorseThanRandom => "worse_than_random",
        }
    }
}

/// Surrogate calibration read off the `surrogate_pred` probes: each
/// probe is a leave-last-out prediction (emitted before its trial was
/// measured), so the pair stream *is* the predictive score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Number of (predicted, observed) pairs seen.
    pub pairs: usize,
    /// Kendall-style rank concordance in `[-1, 1]`: (concordant −
    /// discordant) / comparable pairs. Zero means the surrogate ranks
    /// candidates no better than a coin flip.
    pub rank_concordance: f64,
    /// Fraction of comparable pair-pairs ranked in the right order.
    pub directional_accuracy: f64,
}

/// Exploration/exploitation balance from acquisition choices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exploration {
    /// Fraction of trials proposed by the surrogate (after the first
    /// completed acquisition phase).
    pub guided_fraction: f64,
    /// Number of acquisition scores observed.
    pub scores: usize,
    /// Mean of the acquisition scores.
    pub acquisition_mean: f64,
    /// Standard deviation of the acquisition scores — a collapsing
    /// spread means the acquisition sees one candidate everywhere
    /// (pure exploitation).
    pub acquisition_std: f64,
}

/// The startup-vs-guided cost comparison: the session's own random
/// startup phase is its internal RS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseShift {
    /// One-sided Mann-Whitney p-value that guided costs are *lower*
    /// than startup costs (small = the model is earning its keep).
    pub p_value: f64,
    /// Probability that a guided trial costs more than a startup trial
    /// (ties half): over 0.5 means the model phase is losing.
    pub cles_guided_worse: f64,
    /// `p_value < advisor_alpha`.
    pub significant: bool,
}

/// What the sample-size advisor recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "action", rename_all = "snake_case")]
pub enum Recommendation {
    /// Expected marginal improvement still clears the floor: spend the
    /// remaining budget.
    Continue,
    /// Stop at `at` samples: the incumbent is not expected to improve
    /// (Converged/Stalled, or marginal improvement under the floor).
    Stop {
        /// The sample count at which the recommendation stands — the
        /// trial index that produced the final incumbent, plus one.
        at: usize,
    },
    /// The guided phase is losing to the session's own random startup:
    /// switch technique instead of spending more samples here.
    SwitchTechnique,
}

/// The sample-size advisor's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Advisor {
    /// The recommendation.
    pub recommendation: Recommendation,
    /// Relative incumbent improvement per trial over the trailing
    /// window — the expected value of one more sample.
    pub expected_marginal_improvement: f64,
    /// `1 − p` of the Mann-Whitney test supporting the recommendation,
    /// clamped to `[0, 1]`; `0.5` when no test is available yet.
    pub confidence: f64,
    /// The significance level the advisor tested at.
    pub alpha: f64,
}

/// Point-in-time report of one session's search health, served by the
/// `diagnose` protocol op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticsReport {
    /// `false` when diagnostics were not enabled for the session — all
    /// other fields are then zero/empty.
    pub enabled: bool,
    /// Trials observed.
    pub trials: usize,
    /// Trials proposed before the first completed acquisition phase
    /// (random startup / training draws).
    pub startup_trials: usize,
    /// Trials proposed by the surrogate.
    pub guided_trials: usize,
    /// Best (lowest) finite cost seen.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub best: Option<f64>,
    /// Times the incumbent improved.
    pub improvements: usize,
    /// Improvements per trial.
    pub improvement_rate: f64,
    /// Trials since the incumbent last improved.
    pub stall_length: usize,
    /// Median best-of-n of a random search drawing n samples from the
    /// session's own observed cost distribution — the RS-equivalent
    /// null model.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub null_best_estimate: Option<f64>,
    /// `(null − best) / null`: how far the incumbent beats the null
    /// model (≈0 means no concentration benefit over random).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub null_gap: Option<f64>,
    /// Surrogate calibration, when `surrogate_pred` probes arrived.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub calibration: Option<Calibration>,
    /// Exploration/exploitation balance, when acquisition phases ran.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub exploration: Option<Exploration>,
    /// Startup-vs-guided comparison, when both phases have samples.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub phase_shift: Option<PhaseShift>,
    /// Latched pathology verdicts, in latch order.
    pub pathologies: Vec<Pathology>,
    /// The sample-size advisor.
    pub advisor: Advisor,
}

impl DiagnosticsReport {
    /// The report of a session without diagnostics.
    pub fn disabled() -> Self {
        DiagnosticsReport {
            enabled: false,
            trials: 0,
            startup_trials: 0,
            guided_trials: 0,
            best: None,
            improvements: 0,
            improvement_rate: 0.0,
            stall_length: 0,
            null_best_estimate: None,
            null_gap: None,
            calibration: None,
            exploration: None,
            phase_shift: None,
            pathologies: Vec::new(),
            advisor: Advisor {
                recommendation: Recommendation::Continue,
                expected_marginal_improvement: 0.0,
                confidence: 0.5,
                alpha: 0.0,
            },
        }
    }
}

/// Streaming per-session search-health engine. Feed it every
/// [`TraceEvent`] in emission order ([`observe`](Self::observe)), read
/// [`report`](Self::report) at any time, and drain newly latched
/// verdicts with [`drain_new_pathologies`](Self::drain_new_pathologies).
///
/// Deterministic: the state is a pure function of the event stream, so
/// a crash-recovered session replaying its journal regenerates the
/// exact pre-crash diagnostics. Timestamps (`t_us`) are deliberately
/// ignored for the same reason.
#[derive(Debug, Clone)]
pub struct SearchDiagnostics {
    cfg: DiagnosticsConfig,
    trials: usize,
    startup_trials: usize,
    guided_trials: usize,
    best: f64,
    best_trial: usize,
    improvements: usize,
    /// All finite costs, sorted ascending (the null model's empirical
    /// distribution).
    costs_sorted: Vec<f64>,
    /// Trailing window of finite costs (ring, capacity `stall_window`).
    recent_costs: Vec<f64>,
    recent_idx: usize,
    /// Trailing window of running-best values (ring, same capacity).
    recent_best: Vec<f64>,
    recent_best_idx: usize,
    /// True after the first completed acquisition span: subsequent
    /// trials are surrogate-guided. GA/RS never complete one, so their
    /// model-specific verdicts are structurally unreachable.
    guided_ready: bool,
    /// a = guided costs, b = startup costs.
    phase_mwu: StreamingMwu,
    /// The surrogate's prediction for the next trial, if probed.
    pending_pred: Option<f64>,
    /// (predicted, observed) calibration pairs.
    calib_pairs: Vec<(f64, f64)>,
    calib_concordant: u64,
    calib_discordant: u64,
    acq_scores: Welford,
    latched: Vec<Pathology>,
    announced: usize,
}

impl SearchDiagnostics {
    /// A fresh engine with the given knobs.
    pub fn new(cfg: DiagnosticsConfig) -> Self {
        SearchDiagnostics {
            cfg,
            trials: 0,
            startup_trials: 0,
            guided_trials: 0,
            best: f64::INFINITY,
            best_trial: 0,
            improvements: 0,
            costs_sorted: Vec::new(),
            recent_costs: Vec::new(),
            recent_idx: 0,
            recent_best: Vec::new(),
            recent_best_idx: 0,
            guided_ready: false,
            phase_mwu: StreamingMwu::new(),
            pending_pred: None,
            calib_pairs: Vec::new(),
            calib_concordant: 0,
            calib_discordant: 0,
            acq_scores: Welford::new(),
            latched: Vec::new(),
            announced: 0,
        }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &DiagnosticsConfig {
        &self.cfg
    }

    /// Consumes one trace event.
    pub fn observe(&mut self, event: &TraceEvent) {
        match &event.record {
            TraceRecord::SpanEnd { name } if name == "acquisition" => {
                self.guided_ready = true;
            }
            TraceRecord::Point { name, fields } if name == "surrogate_pred" => {
                self.pending_pred = fields
                    .iter()
                    .find(|(k, _)| k == "value")
                    .map(|&(_, v)| v)
                    .filter(|v| v.is_finite());
            }
            TraceRecord::Point { name, fields } if name == "acquisition_value" => {
                if let Some(&(_, score)) = fields.iter().find(|(k, _)| k == "score") {
                    if score.is_finite() {
                        self.acq_scores.push(score);
                    }
                }
            }
            TraceRecord::Trial { cost, .. } => self.record_trial(*cost),
            _ => {}
        }
    }

    fn record_trial(&mut self, cost: f64) {
        let guided = self.guided_ready;
        let pred = self.pending_pred.take();
        self.trials += 1;
        if guided {
            self.guided_trials += 1;
        } else {
            self.startup_trials += 1;
        }
        if cost.is_finite() {
            let pos = self.costs_sorted.partition_point(|&v| v < cost);
            self.costs_sorted.insert(pos, cost);
            push_ring(
                &mut self.recent_costs,
                &mut self.recent_idx,
                self.cfg.stall_window,
                cost,
            );
            if guided {
                self.phase_mwu.push_a(cost);
            } else {
                self.phase_mwu.push_b(cost);
            }
            if cost < self.best {
                self.best = cost;
                self.best_trial = self.trials - 1;
                self.improvements += 1;
            }
            push_ring(
                &mut self.recent_best,
                &mut self.recent_best_idx,
                self.cfg.stall_window,
                self.best,
            );
            if guided {
                if let Some(pred) = pred {
                    for &(p, o) in &self.calib_pairs {
                        let dp = pred - p;
                        let dobs = cost - o;
                        if dp * dobs > 0.0 {
                            self.calib_concordant += 1;
                        } else if dp * dobs < 0.0 {
                            self.calib_discordant += 1;
                        }
                    }
                    self.calib_pairs.push((pred, cost));
                }
            }
        }
        self.latch_checks();
    }

    fn stall_length(&self) -> usize {
        if self.improvements == 0 {
            self.trials
        } else {
            self.trials - 1 - self.best_trial
        }
    }

    /// Relative spread of the trailing cost window.
    fn recent_spread(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &c in &self.recent_costs {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if !lo.is_finite() || !hi.is_finite() {
            return 0.0;
        }
        (hi - lo) / hi.abs().max(1e-12)
    }

    fn latch(&mut self, p: Pathology) {
        if !self.latched.contains(&p) {
            self.latched.push(p);
        }
    }

    fn latch_checks(&mut self) {
        if self.trials < self.cfg.min_trials {
            return;
        }
        let stall = self.stall_length();
        let settled = self
            .latched
            .iter()
            .any(|p| matches!(p, Pathology::Converged | Pathology::Stalled));
        if stall >= self.cfg.stall_window && !settled {
            if self.recent_costs.len() >= self.cfg.stall_window
                && self.recent_spread() <= self.cfg.converged_spread
            {
                self.latch(Pathology::Converged);
            } else {
                self.latch(Pathology::Stalled);
            }
        }
        if self.guided_ready
            && self.phase_mwu.len_a() >= self.cfg.min_phase_samples
            && self.phase_mwu.len_b() >= self.cfg.min_phase_samples
            && self.phase_mwu.cles() >= self.cfg.cles_threshold
        {
            self.latch(Pathology::WorseThanRandom);
        }
        if self.calib_pairs.len() >= self.cfg.min_calibration_pairs
            && self.rank_concordance() <= 0.0
            && stall >= self.cfg.stall_window / 2
        {
            self.latch(Pathology::Overfitting);
        }
    }

    fn rank_concordance(&self) -> f64 {
        let comparable = self.calib_concordant + self.calib_discordant;
        if comparable == 0 {
            return 0.0;
        }
        (self.calib_concordant as f64 - self.calib_discordant as f64) / comparable as f64
    }

    /// Verdicts latched since the last drain, in latch order — the hook
    /// for pathology events in the service's event log.
    pub fn drain_new_pathologies(&mut self) -> Vec<Pathology> {
        let fresh = self.latched[self.announced..].to_vec();
        self.announced = self.latched.len();
        fresh
    }

    /// Median best-of-n of n random draws from the observed costs: the
    /// empirical quantile at `1 − 2^(−1/n)`.
    fn null_best_estimate(&self) -> Option<f64> {
        let n = self.costs_sorted.len();
        if n == 0 {
            return None;
        }
        let p = 1.0 - 0.5f64.powf(1.0 / n as f64);
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.costs_sorted[idx])
    }

    /// Relative incumbent improvement per trial over the trailing
    /// window.
    fn marginal_improvement(&self) -> f64 {
        if self.recent_best.len() < 2 || !self.best.is_finite() {
            return 0.0;
        }
        // Oldest entry of the running-best ring.
        let oldest = if self.recent_best.len() < self.cfg.stall_window {
            self.recent_best[0]
        } else {
            self.recent_best[self.recent_best_idx % self.recent_best.len()]
        };
        let window = self.recent_best.len() as f64;
        ((oldest - self.best) / self.best.abs().max(1e-12) / window).max(0.0)
    }

    fn phase_shift(&self) -> Option<PhaseShift> {
        if self.phase_mwu.len_a() < 2 || self.phase_mwu.len_b() < 2 || self.phase_mwu.degenerate() {
            return None;
        }
        let r = self.phase_mwu.result(Alternative::Less);
        Some(PhaseShift {
            p_value: r.p_value,
            cles_guided_worse: self.phase_mwu.cles(),
            significant: r.p_value < self.cfg.advisor_alpha,
        })
    }

    fn advisor(&self) -> Advisor {
        let marginal = self.marginal_improvement();
        let shift = self.phase_shift();
        let alpha = self.cfg.advisor_alpha;
        let confidence_from = |p: f64| (1.0 - p).clamp(0.0, 1.0);
        if self.latched.contains(&Pathology::WorseThanRandom) {
            // Supporting test: guided costs are greater than startup.
            let p = if self.phase_mwu.len_a() >= 2
                && self.phase_mwu.len_b() >= 2
                && !self.phase_mwu.degenerate()
            {
                self.phase_mwu.result(Alternative::Greater).p_value
            } else {
                0.5
            };
            return Advisor {
                recommendation: Recommendation::SwitchTechnique,
                expected_marginal_improvement: marginal,
                confidence: confidence_from(p),
                alpha,
            };
        }
        let settled = self
            .latched
            .iter()
            .any(|p| matches!(p, Pathology::Converged | Pathology::Stalled));
        if settled {
            return Advisor {
                recommendation: Recommendation::Stop {
                    at: self.best_trial + 1,
                },
                expected_marginal_improvement: marginal,
                confidence: shift.map_or(0.5, |s| confidence_from(s.p_value)),
                alpha,
            };
        }
        if self.trials >= self.cfg.min_trials && marginal < self.cfg.min_marginal_improvement {
            return Advisor {
                recommendation: Recommendation::Stop { at: self.trials },
                expected_marginal_improvement: marginal,
                confidence: 0.5,
                alpha,
            };
        }
        Advisor {
            recommendation: Recommendation::Continue,
            expected_marginal_improvement: marginal,
            confidence: shift.map_or(0.5, |s| confidence_from(s.p_value)),
            alpha,
        }
    }

    /// The current report.
    pub fn report(&self) -> DiagnosticsReport {
        let best = self.best.is_finite().then_some(self.best);
        let null = self.null_best_estimate();
        let null_gap = match (best, null) {
            (Some(b), Some(n)) if n.abs() > 1e-12 => Some((n - b) / n),
            _ => None,
        };
        let calibration = (!self.calib_pairs.is_empty()).then(|| {
            let comparable = self.calib_concordant + self.calib_discordant;
            Calibration {
                pairs: self.calib_pairs.len(),
                rank_concordance: self.rank_concordance(),
                directional_accuracy: if comparable == 0 {
                    0.5
                } else {
                    self.calib_concordant as f64 / comparable as f64
                },
            }
        });
        let exploration = self.guided_ready.then(|| Exploration {
            guided_fraction: if self.trials == 0 {
                0.0
            } else {
                self.guided_trials as f64 / self.trials as f64
            },
            scores: self.acq_scores.count() as usize,
            acquisition_mean: if self.acq_scores.count() == 0 {
                0.0
            } else {
                self.acq_scores.mean()
            },
            acquisition_std: if self.acq_scores.count() < 2 {
                0.0
            } else {
                self.acq_scores.std_dev()
            },
        });
        DiagnosticsReport {
            enabled: true,
            trials: self.trials,
            startup_trials: self.startup_trials,
            guided_trials: self.guided_trials,
            best,
            improvements: self.improvements,
            improvement_rate: if self.trials == 0 {
                0.0
            } else {
                self.improvements as f64 / self.trials as f64
            },
            stall_length: self.stall_length(),
            null_best_estimate: null,
            null_gap,
            calibration,
            exploration,
            phase_shift: self.phase_shift(),
            pathologies: self.latched.clone(),
            advisor: self.advisor(),
        }
    }
}

fn push_ring(ring: &mut Vec<f64>, idx: &mut usize, cap: usize, value: f64) {
    let cap = cap.max(1);
    if ring.len() < cap {
        ring.push(value);
    } else {
        ring[*idx % cap] = value;
        *idx = (*idx + 1) % cap;
    }
}

/// Verdict of one population-level band check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandVerdict {
    /// The detection rule fired.
    pub fired: bool,
    /// One-sided Mann-Whitney p-value of the "worse" direction.
    pub p_value: f64,
    /// CLES of the "worse" direction (probability the suspect sample
    /// exceeds the reference, ties half).
    pub cles: f64,
    /// `p_value < alpha`.
    pub significant: bool,
}

/// Population-level pathology detector over finished study cells,
/// using the study's own statistics (exact MWU at the paper's
/// repetition counts, CLES/Vargha-Delaney).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandDetector {
    /// Significance level of the dip test.
    pub alpha: f64,
    /// Effect-size threshold for both rules.
    pub cles_threshold: f64,
}

impl Default for BandDetector {
    fn default() -> Self {
        BandDetector {
            alpha: 0.05,
            cles_threshold: 0.7,
        }
    }
}

impl BandDetector {
    /// The overfitting-dip signature between two sample-size bands of
    /// the *same* algorithm and cell: final runtimes at the **higher**
    /// budget are significantly worse (greater) than at the lower one —
    /// more samples made the result worse, the paper's BO GP 100→200
    /// dip. Fires only on one-sided MWU significance at `alpha` *and*
    /// CLES ≥ the threshold: repeat-noise median wobbles (visible even
    /// in RS cells) stay quiet.
    pub fn overfitting_dip(&self, at_lower: &[f64], at_higher: &[f64]) -> BandVerdict {
        if degenerate(at_higher, at_lower) {
            return BandVerdict {
                fired: false,
                p_value: 1.0,
                cles: 0.5,
                significant: false,
            };
        }
        let r = mann_whitney_u(at_higher, at_lower, Alternative::Greater);
        let cles = common_language_effect_size(at_higher, at_lower);
        BandVerdict {
            fired: r.p_value < self.alpha && cles >= self.cles_threshold,
            p_value: r.p_value,
            cles,
            significant: r.p_value < self.alpha,
        }
    }

    /// The worse-than-random signature: an algorithm's final runtimes
    /// against the RS cell at the same (benchmark, architecture,
    /// sample size). Fires on effect size alone (CLES ≥ threshold: a
    /// random run of the algorithm loses to a random RS run at least
    /// that often), with the MWU p-value reported as confidence — the
    /// paper's RF weakness shows at the high-budget cells where only 3
    /// repeats exist, below any significance floor.
    pub fn worse_than_random(&self, alg: &[f64], rs: &[f64]) -> BandVerdict {
        if degenerate(alg, rs) {
            return BandVerdict {
                fired: false,
                p_value: 1.0,
                cles: 0.5,
                significant: false,
            };
        }
        let r = mann_whitney_u(alg, rs, Alternative::Greater);
        let cles = common_language_effect_size(alg, rs);
        BandVerdict {
            fired: cles >= self.cles_threshold,
            p_value: r.p_value,
            cles,
            significant: r.p_value < self.alpha,
        }
    }
}

/// Rank tests are undefined when every pooled observation is identical.
fn degenerate(a: &[f64], b: &[f64]) -> bool {
    if a.is_empty() || b.is_empty() {
        return true;
    }
    let first = a[0];
    a.iter().chain(b).all(|&v| v == first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceRecord};

    fn trial(index: usize, cost: f64, best: f64) -> TraceEvent {
        TraceEvent {
            t_us: index as u64,
            record: TraceRecord::Trial {
                index,
                config: vec![1],
                cost,
                best,
            },
        }
    }

    fn point(name: &str, fields: &[(&str, f64)]) -> TraceEvent {
        TraceEvent {
            t_us: 0,
            record: TraceRecord::Point {
                name: name.to_string(),
                fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            },
        }
    }

    fn span_end(name: &str) -> TraceEvent {
        TraceEvent {
            t_us: 0,
            record: TraceRecord::SpanEnd {
                name: name.to_string(),
            },
        }
    }

    fn small_cfg() -> DiagnosticsConfig {
        DiagnosticsConfig {
            stall_window: 5,
            min_trials: 5,
            min_phase_samples: 5,
            min_calibration_pairs: 5,
            ..DiagnosticsConfig::default()
        }
    }

    #[test]
    fn constant_costs_latch_converged_and_advise_stop() {
        let mut d = SearchDiagnostics::new(small_cfg());
        for i in 0..12 {
            d.observe(&trial(i, 3.0, 3.0));
        }
        let r = d.report();
        assert_eq!(r.pathologies, vec![Pathology::Converged]);
        assert_eq!(r.improvements, 1);
        assert_eq!(r.stall_length, 11);
        assert_eq!(r.advisor.recommendation, Recommendation::Stop { at: 1 });
        // Latched verdicts drain once.
        let mut d2 = SearchDiagnostics::new(small_cfg());
        for i in 0..12 {
            d2.observe(&trial(i, 3.0, 3.0));
            for p in d2.drain_new_pathologies() {
                assert_eq!(p, Pathology::Converged);
            }
        }
        assert!(d2.drain_new_pathologies().is_empty());
    }

    #[test]
    fn spread_stall_latches_stalled_not_converged() {
        let mut d = SearchDiagnostics::new(small_cfg());
        d.observe(&trial(0, 1.0, 1.0));
        // Wildly spread costs, none beating the incumbent.
        for i in 1..12 {
            let c = 2.0 + (i % 5) as f64 * 3.0;
            d.observe(&trial(i, c, 1.0));
        }
        let r = d.report();
        assert_eq!(r.pathologies, vec![Pathology::Stalled]);
        assert_eq!(r.best, Some(1.0));
    }

    #[test]
    fn steady_improvement_stays_healthy() {
        let mut d = SearchDiagnostics::new(small_cfg());
        for i in 0..30 {
            let c = 100.0 - i as f64;
            d.observe(&trial(i, c, c));
        }
        let r = d.report();
        assert!(r.pathologies.is_empty(), "{:?}", r.pathologies);
        assert_eq!(r.advisor.recommendation, Recommendation::Continue);
        assert!(r.advisor.expected_marginal_improvement > 0.0);
        assert_eq!(r.improvements, 30);
    }

    #[test]
    fn guided_phase_losing_latches_worse_than_random() {
        let mut d = SearchDiagnostics::new(small_cfg());
        // Random startup finds costs near 10.
        for i in 0..6 {
            d.observe(&trial(i, 10.0 + i as f64 * 0.1, 10.0));
        }
        d.observe(&span_end("acquisition"));
        // The "model" proposes strictly worse configurations.
        for i in 6..16 {
            d.observe(&trial(i, 20.0 + i as f64, 10.0));
        }
        let r = d.report();
        assert!(r.pathologies.contains(&Pathology::WorseThanRandom));
        assert_eq!(r.advisor.recommendation, Recommendation::SwitchTechnique);
        assert!(r.advisor.confidence > 0.9, "{}", r.advisor.confidence);
        let shift = r.phase_shift.unwrap();
        assert!(shift.cles_guided_worse >= 0.7);
    }

    #[test]
    fn anticalibrated_surrogate_latches_overfitting() {
        let mut d = SearchDiagnostics::new(small_cfg());
        for i in 0..5 {
            d.observe(&trial(i, 5.0, 5.0));
        }
        d.observe(&span_end("acquisition"));
        // Predictions perfectly anti-correlated with outcomes, and no
        // trial beats the startup incumbent: stall + bad calibration.
        for i in 0..10 {
            let pred = 10.0 - i as f64;
            let obs = 6.0 + i as f64;
            d.observe(&point("surrogate_pred", &[("value", pred)]));
            d.observe(&trial(5 + i, obs, 5.0));
        }
        let r = d.report();
        assert!(r.pathologies.contains(&Pathology::Overfitting));
        let calib = r.calibration.unwrap();
        assert_eq!(calib.pairs, 10);
        assert!(calib.rank_concordance <= -0.99);
        assert!(calib.directional_accuracy < 0.01);
    }

    #[test]
    fn well_calibrated_surrogate_never_latches_overfitting() {
        let mut d = SearchDiagnostics::new(small_cfg());
        for i in 0..5 {
            d.observe(&trial(i, 50.0, 50.0));
        }
        d.observe(&span_end("acquisition"));
        for i in 0..20 {
            let obs = 40.0 - i as f64;
            d.observe(&point("surrogate_pred", &[("value", obs - 0.5)]));
            d.observe(&trial(5 + i, obs, obs));
        }
        let r = d.report();
        assert!(!r.pathologies.contains(&Pathology::Overfitting));
        let calib = r.calibration.unwrap();
        assert!(calib.rank_concordance > 0.99);
    }

    #[test]
    fn ga_and_rs_shapes_cannot_latch_model_verdicts() {
        // No acquisition span ever completes, so WorseThanRandom and
        // calibration-based verdicts are structurally unreachable no
        // matter how bad the cost stream looks.
        let mut d = SearchDiagnostics::new(small_cfg());
        d.observe(&trial(0, 1.0, 1.0));
        for i in 1..40 {
            d.observe(&trial(i, 1000.0 + i as f64, 1.0));
        }
        let r = d.report();
        assert!(!r.pathologies.contains(&Pathology::WorseThanRandom));
        assert!(!r.pathologies.contains(&Pathology::Overfitting));
        assert!(r.exploration.is_none());
        assert_eq!(r.guided_trials, 0);
    }

    #[test]
    fn null_model_reads_the_empirical_best_of_n() {
        let mut d = SearchDiagnostics::new(DiagnosticsConfig::default());
        for i in 0..10 {
            d.observe(&trial(i, (10 - i) as f64, 0.0));
        }
        let r = d.report();
        let null = r.null_best_estimate.unwrap();
        let best = r.best.unwrap();
        assert!(null >= best, "null {null} < best {best}");
        assert!(r.null_gap.unwrap() >= 0.0);
    }

    #[test]
    fn acquisition_scores_feed_exploration_stats() {
        let mut d = SearchDiagnostics::new(small_cfg());
        for i in 0..3 {
            d.observe(&trial(i, 9.0 - i as f64, 9.0 - i as f64));
        }
        d.observe(&span_end("acquisition"));
        d.observe(&point("acquisition_value", &[("score", 0.5)]));
        d.observe(&trial(3, 5.0, 5.0));
        d.observe(&point("acquisition_value", &[("score", 1.5)]));
        d.observe(&trial(4, 4.0, 4.0));
        let r = d.report();
        let e = r.exploration.unwrap();
        assert_eq!(e.scores, 2);
        assert!((e.acquisition_mean - 1.0).abs() < 1e-12);
        assert_eq!(r.guided_trials, 2);
        assert_eq!(r.startup_trials, 3);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let mut d = SearchDiagnostics::new(small_cfg());
        for i in 0..4 {
            d.observe(&trial(i, 7.0 - i as f64, 7.0 - i as f64));
        }
        d.observe(&span_end("acquisition"));
        d.observe(&point("surrogate_pred", &[("value", 2.5)]));
        d.observe(&trial(4, 2.0, 2.0));
        let r = d.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: DiagnosticsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let disabled = DiagnosticsReport::disabled();
        let json = serde_json::to_string(&disabled).unwrap();
        let back: DiagnosticsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, disabled);
    }

    #[test]
    fn diagnostics_state_is_a_pure_function_of_the_event_stream() {
        // Same events, different timestamps: identical reports — the
        // recovery-by-replay contract.
        let mut a = SearchDiagnostics::new(small_cfg());
        let mut b = SearchDiagnostics::new(small_cfg());
        for i in 0..25 {
            let cost = (i % 7) as f64 + 1.0;
            let mut ea = trial(i, cost, 1.0);
            let mut eb = trial(i, cost, 1.0);
            ea.t_us = i as u64;
            eb.t_us = (i * 1000 + 17) as u64;
            a.observe(&ea);
            b.observe(&eb);
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn band_detector_fires_on_a_real_dip_and_stays_quiet_on_noise() {
        let det = BandDetector::default();
        // A genuine dip: the higher-budget population is clearly worse.
        let at_100 = [3.0, 3.1, 3.2, 3.3, 3.4, 3.5, 3.6, 3.7, 3.8, 3.9];
        let at_200 = [5.0, 5.2, 5.4, 5.6, 5.8];
        let v = det.overfitting_dip(&at_100, &at_200);
        assert!(v.fired && v.significant);
        assert!(v.cles > 0.9);
        // Repeat noise: overlapping populations must not fire.
        let noisy_200 = [3.1, 3.45, 3.75, 3.2, 3.95];
        let v = det.overfitting_dip(&at_100, &noisy_200);
        assert!(!v.fired, "p={} cles={}", v.p_value, v.cles);
        // Degenerate input answers quietly instead of panicking.
        let v = det.overfitting_dip(&[1.0, 1.0], &[1.0, 1.0, 1.0]);
        assert!(!v.fired && v.p_value == 1.0);
    }

    #[test]
    fn band_detector_worse_than_random_is_effect_size_latched() {
        let det = BandDetector::default();
        let rs = [4.0, 4.5, 5.0];
        let alg_bad = [5.1, 5.2, 4.4];
        // 7/9 pairs lose: CLES 0.778 ≥ 0.7 fires even though n=3 can
        // never reach significance.
        let v = det.worse_than_random(&alg_bad, &rs);
        assert!(v.fired);
        assert!((v.cles - 7.0 / 9.0).abs() < 1e-12);
        assert!(!v.significant);
        // An algorithm that matches RS stays quiet.
        let v = det.worse_than_random(&rs, &rs);
        assert!(!v.fired);
        assert!((v.cles - 0.5).abs() < 1e-12);
    }
}
