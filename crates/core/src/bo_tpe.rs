//! Bayesian Optimization with Tree-Parzen Estimators — the paper's BO
//! TPE, following HyperOpt's algorithm (Bergstra et al. 2011):
//!
//! 1. bootstrap with random trials (HyperOpt's `n_startup_trials`);
//! 2. each round, split the history at the γ-quantile of the objective:
//!    the best `γ·n` observations form the "good" set, the rest "bad";
//! 3. fit factorized Parzen densities `l(x)` (good) and `g(x)` (bad)
//!    over the integer parameter ranges;
//! 4. draw candidates from `l` and keep the one maximizing `l(x)/g(x)`
//!    (monotone in Expected Improvement under TPE's assumptions);
//! 5. measure it, repeat.
//!
//! Like the paper's HyperOpt runs, this tuner receives **no constraint
//! specification**; infeasible proposals land in the "bad" set via the
//! failure penalty and the densities steer away from them.

use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use autotune_space::Configuration;
use autotune_surrogates::parzen::ProductParzen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Cap on how many prior points a warm start folds into the density
/// history — enough to shape the good/bad split without letting a long
/// stale trajectory drown out fresh evidence.
const MAX_PRIOR_POINTS: usize = 32;

/// TPE hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpeParams {
    /// Random trials before the model kicks in (HyperOpt default: 20).
    pub startup_trials: usize,
    /// Quantile separating good from bad observations (HyperOpt: 0.25).
    pub gamma: f64,
    /// Candidates drawn from `l` per round (HyperOpt default: 24).
    pub candidates: usize,
    /// Hard cap on the size of the "good" set, keeping it elite as the
    /// history grows (Optuna caps similarly at 25).
    pub good_cap: usize,
    /// Pseudo-count weight of the uniform prior in each density.
    pub prior_weight: f64,
}

impl Default for TpeParams {
    fn default() -> Self {
        TpeParams {
            startup_trials: 20,
            gamma: 0.25,
            candidates: 24,
            good_cap: 25,
            prior_weight: 1.0,
        }
    }
}

/// The BO TPE technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct BayesOptTpe {
    /// Hyperparameters.
    pub params: TpeParams,
}

impl Tuner for BayesOptTpe {
    fn name(&self) -> &'static str {
        "BO TPE"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let p = self.params;
        assert!(p.gamma > 0.0 && p.gamma < 1.0, "gamma must be in (0,1)");
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut rec = Recorder::new(ctx, objective);

        let ranges: Vec<(u32, u32)> = ctx
            .space
            .params()
            .iter()
            .map(|prm| (prm.lo(), prm.hi()))
            .collect();

        // Prior points contributed by a warm start: they join the
        // density history as budget-free pseudo-observations but are
        // never measured themselves.
        let mut seen: HashSet<Configuration> = HashSet::new();
        let mut prior_rows: Vec<(Vec<u32>, f64)> = Vec::new();
        if let Some(prior) = ctx.seed_prior() {
            // Warm start: the prior replaces the random startup phase.
            // The only spent startup sample is the prior incumbent.
            for pt in prior.top(MAX_PRIOR_POINTS) {
                if seen.insert(pt.config.clone()) {
                    prior_rows.push((pt.config.values().to_vec(), pt.value));
                }
            }
            trace::point(
                ctx.trace,
                "prior_seed",
                &[("points", prior_rows.len() as f64)],
            );
            let incumbent = prior.incumbent().expect("non-empty prior").config.clone();
            rec.measure(&incumbent);
            seen.insert(incumbent);
        } else {
            // Startup: uniform random trials over the whole space (no
            // constraint — SMBO condition). The draws are
            // value-independent, so chunking them into `ctx.batch`-wide
            // objective calls is bit-identical to the sequential walk.
            let startup = p.startup_trials.min(ctx.budget).max(1).min(rec.remaining());
            let mut started = 0usize;
            while started < startup {
                let width = ctx.batch.max(1).min(startup - started);
                let chunk: Vec<_> = (0..width)
                    .map(|_| autotune_space::sample::uniform(ctx.space, &mut rng))
                    .collect();
                rec.measure_batch(&chunk);
                seen.extend(chunk);
                started += width;
            }
        }

        if ctx.batch > 1 {
            // Constant-liar batching: each round proposes `q = ctx.batch`
            // configurations, and every pick is appended to the *local*
            // observation table with a lied-about outcome — the best
            // cost observed so far — before the next pick's densities
            // are fitted. The lie drags the picked region's density
            // toward "good", but the pick itself is excluded from the
            // candidate filter, so successive picks spread. Lies live
            // only in the per-round table; the measured truth is what
            // enters the recorder's history.
            while rec.remaining() > 0 {
                let q = ctx.batch.min(rec.remaining());
                let mut evals: Vec<(Vec<u32>, f64)> = prior_rows.clone();
                evals.extend(
                    rec.history()
                        .evaluations()
                        .iter()
                        .map(|e| (e.config.values().to_vec(), e.value)),
                );
                let liar = rec
                    .best()
                    .expect("startup measured at least one config")
                    .value;
                let mut picks: Vec<Configuration> = Vec::with_capacity(q);
                for _ in 0..q {
                    let mut order: Vec<usize> = (0..evals.len()).collect();
                    order.sort_by(|&a, &b| evals[a].1.total_cmp(&evals[b].1));
                    let n_good = ((evals.len() as f64 * p.gamma).ceil() as usize)
                        .min(p.good_cap)
                        .clamp(2, evals.len().saturating_sub(1).max(2));
                    let rows = |idx: &[usize]| -> Vec<Vec<u32>> {
                        idx.iter().map(|&i| evals[i].0.clone()).collect()
                    };
                    let good = rows(&order[..n_good.min(order.len())]);
                    let bad = rows(&order[n_good.min(order.len())..]);

                    let fit = trace::span(ctx.trace, "surrogate_fit");
                    let l = ProductParzen::fit(&ranges, &good, p.prior_weight);
                    let g = ProductParzen::fit(&ranges, &bad, p.prior_weight);
                    fit.end();

                    let acquisition = trace::span(ctx.trace, "acquisition");
                    let mut best_new: Option<(f64, Vec<u32>)> = None;
                    let mut best_any: Option<(f64, Vec<u32>)> = None;
                    for _ in 0..p.candidates {
                        let cand = l.sample(&mut rng);
                        let score = l.log_pmf(&cand) - g.log_pmf(&cand);
                        if best_any.as_ref().is_none_or(|(s, _)| score > *s) {
                            best_any = Some((score, cand.clone()));
                        }
                        let as_cfg = Configuration::new(cand.clone());
                        if !seen.contains(&as_cfg)
                            && !picks.contains(&as_cfg)
                            && best_new.as_ref().is_none_or(|(s, _)| score > *s)
                        {
                            best_new = Some((score, cand));
                        }
                    }
                    acquisition.end();
                    let (_, values) = best_new.or(best_any).expect("candidates > 0");
                    evals.push((values.clone(), liar));
                    picks.push(Configuration::new(values));
                }
                rec.measure_batch(&picks);
                seen.extend(picks);
            }
            return rec.finish();
        }

        while rec.remaining() > 0 {
            // Order observations (prior pseudo-observations first, then
            // measurements) by cost; split at the gamma quantile.
            let mut evals: Vec<(Vec<u32>, f64)> = prior_rows.clone();
            evals.extend(
                rec.history()
                    .evaluations()
                    .iter()
                    .map(|e| (e.config.values().to_vec(), e.value)),
            );
            let mut order: Vec<usize> = (0..evals.len()).collect();
            order.sort_by(|&a, &b| evals[a].1.total_cmp(&evals[b].1));
            let n_good = ((evals.len() as f64 * p.gamma).ceil() as usize)
                .min(p.good_cap)
                .clamp(2, evals.len().saturating_sub(1).max(2));

            let rows = |idx: &[usize]| -> Vec<Vec<u32>> {
                idx.iter().map(|&i| evals[i].0.clone()).collect()
            };
            let good = rows(&order[..n_good.min(order.len())]);
            let bad = rows(&order[n_good.min(order.len())..]);

            let fit = trace::span(ctx.trace, "surrogate_fit");
            let l = ProductParzen::fit(&ranges, &good, p.prior_weight);
            let g = ProductParzen::fit(&ranges, &bad, p.prior_weight);
            fit.end();
            trace::point(
                ctx.trace,
                "tpe_split",
                &[("good", good.len() as f64), ("bad", bad.len() as f64)],
            );

            // Draw candidates from l; keep the best l/g ratio among
            // configurations not yet tried. Over an integer lattice the
            // density mode repeats quickly, and re-measuring it would
            // burn the remaining budget on one point (continuous-space
            // TPE avoids this for free); fall back to the best repeat
            // only if every candidate is a repeat, then to random.
            let acquisition = trace::span(ctx.trace, "acquisition");
            let mut best_new: Option<(f64, Vec<u32>)> = None;
            let mut best_any: Option<(f64, Vec<u32>)> = None;
            for _ in 0..p.candidates {
                let cand = l.sample(&mut rng);
                let score = l.log_pmf(&cand) - g.log_pmf(&cand);
                if best_any.as_ref().is_none_or(|(s, _)| score > *s) {
                    best_any = Some((score, cand.clone()));
                }
                if !seen.contains(&Configuration::new(cand.clone()))
                    && best_new.as_ref().is_none_or(|(s, _)| score > *s)
                {
                    best_new = Some((score, cand));
                }
            }
            acquisition.end();
            let (score, values) = best_new.or(best_any).expect("candidates > 0");
            if score.is_finite() {
                trace::point(ctx.trace, "acquisition_value", &[("score", score)]);
                // Leave-last-out probe for the diagnostics layer: TPE's
                // density log-ratio scores higher-is-better, so negate to
                // match the lower-is-predicted-better probe convention.
                trace::point(ctx.trace, "surrogate_pred", &[("value", -score)]);
            }
            let cfg = Configuration::new(values);
            rec.measure(&cfg);
            seen.insert(cfg);
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_search::RandomSearch;
    use autotune_space::imagecl;

    fn smooth(cfg: &Configuration) -> f64 {
        let v = cfg.values();
        (v[0] as f64 - 2.0).powi(2)
            + (v[1] as f64 - 12.0).powi(2)
            + (v[3] as f64 - 7.0).powi(2)
            + 0.5 * v[4] as f64
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let mut obj = smooth;
        for budget in [10, 25, 50] {
            let r = BayesOptTpe::default().tune(&TuneContext::new(&space, budget, 3), &mut obj);
            assert_eq!(r.history.len(), budget);
        }
    }

    #[test]
    fn model_phase_exploits_good_region() {
        // After startup, proposals should concentrate near the optimum:
        // the mean cost of the last 20 trials must beat the first 20
        // (random) trials.
        let space = imagecl::space();
        let mut obj = smooth;
        let r = BayesOptTpe::default().tune(&TuneContext::new(&space, 80, 5), &mut obj);
        let evals = r.history.evaluations();
        let mean =
            |s: &[crate::Evaluation]| s.iter().map(|e| e.value).sum::<f64>() / s.len() as f64;
        let random_mean = mean(&evals[..20]);
        let model_mean = mean(&evals[60..]);
        assert!(
            model_mean < random_mean,
            "model phase {model_mean} vs startup {random_mean}"
        );
    }

    #[test]
    fn beats_random_search_usually() {
        let space = imagecl::space();
        let mut wins = 0;
        for seed in 0..5 {
            let mut o1 = smooth;
            let tpe = BayesOptTpe::default().tune(&TuneContext::new(&space, 50, seed), &mut o1);
            let mut o2 = smooth;
            let rs = RandomSearch.tune(&TuneContext::new(&space, 50, seed), &mut o2);
            if tpe.best.value <= rs.best.value {
                wins += 1;
            }
        }
        assert!(wins >= 3, "TPE won only {wins}/5");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = smooth;
        let t = BayesOptTpe::default();
        let a = t.tune(&TuneContext::new(&space, 40, 9), &mut obj);
        let b = t.tune(&TuneContext::new(&space, 40, 9), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }

    #[test]
    fn learns_around_failure_penalties() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = |cfg: &Configuration| {
            if autotune_space::Constraint::is_satisfied(&cons, cfg) {
                smooth(cfg)
            } else {
                10_000.0
            }
        };
        let r = BayesOptTpe::default().tune(&TuneContext::new(&space, 60, 11), &mut obj);
        assert!(r.best.value < 10_000.0);
        // Late proposals should mostly be feasible.
        let late_feasible = r.history.evaluations()[40..]
            .iter()
            .filter(|e| e.value < 10_000.0)
            .count();
        assert!(late_feasible >= 14, "late feasible {late_feasible}/20");
    }

    #[test]
    fn warm_start_opens_with_the_prior_incumbent() {
        use crate::prior::PriorHistory;
        let space = imagecl::space();
        let mut obj = smooth;
        let donor = BayesOptTpe::default().tune(&TuneContext::new(&space, 50, 1), &mut obj);
        let mut prior = PriorHistory::new();
        for e in donor.history.evaluations() {
            prior.push(e.config.clone(), e.value, 1.0);
        }

        let warm_ctx = TuneContext::new(&space, 10, 2).with_prior(&prior);
        let warm = BayesOptTpe::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.len(), 10);
        // The only startup sample is the donor's incumbent, so the warm
        // run matches the donor's best immediately (deterministic
        // objective).
        assert_eq!(warm.history.evaluations()[0].config, donor.best.config);
        assert!(warm.best.value <= donor.best.value);

        // Warm runs are deterministic per seed, like cold ones.
        let again = BayesOptTpe::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.evaluations(), again.history.evaluations());

        // A cold run with the same seed takes a different trajectory.
        let cold = BayesOptTpe::default().tune(&TuneContext::new(&space, 10, 2), &mut obj);
        assert_ne!(cold.history.evaluations(), warm.history.evaluations());
    }

    #[test]
    fn constant_liar_batches_spend_exact_budget_and_stay_deterministic() {
        let space = imagecl::space();
        let mut obj = smooth;
        for batch in [2, 5, 8] {
            let ctx = TuneContext::new(&space, 40, 9).with_batch(batch);
            let r = BayesOptTpe::default().tune(&ctx, &mut obj);
            assert_eq!(r.history.len(), 40);
            let again = BayesOptTpe::default().tune(&ctx, &mut obj);
            assert_eq!(r.history.evaluations(), again.history.evaluations());
        }
    }

    #[test]
    fn survives_non_finite_reported_costs() {
        // A hostile or broken evaluator can report NaN; the density
        // split must not panic on it (total_cmp orders NaN last).
        let space = imagecl::space();
        let mut calls = 0usize;
        let mut obj = |cfg: &Configuration| {
            calls += 1;
            if calls % 7 == 0 {
                f64::NAN
            } else {
                smooth(cfg)
            }
        };
        let r = BayesOptTpe::default().tune(&TuneContext::new(&space, 30, 3), &mut obj);
        assert_eq!(r.history.len(), 30);
    }

    #[test]
    fn budget_below_startup_still_works() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = BayesOptTpe::default().tune(&TuneContext::new(&space, 7, 2), &mut obj);
        assert_eq!(r.history.len(), 7);
    }
}
