//! Particle Swarm Optimization — evaluated by CLTune (Nugteren &
//! Codreanu) in the related work; provided as an extension technique.
//!
//! Standard global-best PSO in the continuous unit cube with inertia
//! `w`, cognitive weight `c1` and social weight `c2`; particle positions
//! snap to the nearest lattice configuration for measurement
//! (the usual discrete adaptation for integer tuning spaces).

use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use autotune_space::Configuration;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// PSO hyperparameters (Clerc-constriction-flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsoParams {
    /// Swarm size.
    pub particles: usize,
    /// Inertia weight.
    pub inertia: f64,
    /// Cognitive (personal-best) acceleration.
    pub cognitive: f64,
    /// Social (global-best) acceleration.
    pub social: f64,
    /// Velocity clamp as a fraction of the unit cube.
    pub v_max: f64,
}

impl Default for PsoParams {
    fn default() -> Self {
        PsoParams {
            particles: 16,
            inertia: 0.73,
            cognitive: 1.5,
            social: 1.5,
            v_max: 0.3,
        }
    }
}

/// The PSO technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParticleSwarm {
    /// Hyperparameters.
    pub params: PsoParams,
}

impl Tuner for ParticleSwarm {
    fn name(&self) -> &'static str {
        "PSO"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let p = self.params;
        assert!(p.particles >= 2, "PSO needs at least two particles");
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut rec = Recorder::new(ctx, objective);
        let d = ctx.space.dims();
        let n = p.particles.min(ctx.budget).max(1);

        struct Particle {
            pos: Vec<f64>,
            vel: Vec<f64>,
            best_pos: Vec<f64>,
            best_cost: f64,
        }

        let mut swarm: Vec<Particle> = Vec::with_capacity(n);
        let mut global_best: Option<(Vec<f64>, f64)> = None;

        // Initialize from feasible samples so non-SMBO usage honours the
        // constraint from the first measurement. The init sweep never
        // reads its own costs, so measuring it in `ctx.batch`-wide chunks
        // is bit-identical to the sequential walk.
        let init_n = n.min(rec.remaining());
        let drafts: Vec<(Vec<f64>, Vec<f64>, Configuration)> = (0..init_n)
            .map(|_| {
                let cfg = ctx.sample_config(&mut rng);
                let pos = ctx.space.to_unit_features(&cfg);
                let vel: Vec<f64> = (0..d).map(|_| (rng.gen::<f64>() - 0.5) * p.v_max).collect();
                (pos, vel, cfg)
            })
            .collect();
        let mut init_costs: Vec<f64> = Vec::with_capacity(init_n);
        for chunk in drafts.chunks(ctx.batch.max(1)) {
            let cfgs: Vec<Configuration> = chunk.iter().map(|(_, _, c)| c.clone()).collect();
            init_costs.extend(rec.measure_batch(&cfgs));
        }
        for ((pos, vel, _), cost) in drafts.into_iter().zip(init_costs) {
            if global_best.as_ref().is_none_or(|(_, c)| cost < *c) {
                global_best = Some((pos.clone(), cost));
            }
            swarm.push(Particle {
                best_pos: pos.clone(),
                best_cost: cost,
                pos,
                vel,
            });
        }

        trace::point(ctx.trace, "init_swarm", &[("size", swarm.len() as f64)]);

        let mut iteration = 0usize;
        if ctx.batch <= 1 {
            // Sequential (asynchronous) PSO: each measurement folds into
            // the global best immediately — the pre-batching behaviour,
            // preserved bit-for-bit.
            'outer: loop {
                if let Some((_, gcost)) = &global_best {
                    trace::point(
                        ctx.trace,
                        "pso_iteration",
                        &[("index", iteration as f64), ("global_best", *gcost)],
                    );
                }
                iteration += 1;
                for particle in &mut swarm {
                    if rec.remaining() == 0 {
                        break 'outer;
                    }
                    let (gbest, _) = global_best.as_ref().expect("initialized");
                    for (k, g) in gbest.iter().enumerate().take(d) {
                        let r1 = rng.gen::<f64>();
                        let r2 = rng.gen::<f64>();
                        particle.vel[k] = p.inertia * particle.vel[k]
                            + p.cognitive * r1 * (particle.best_pos[k] - particle.pos[k])
                            + p.social * r2 * (g - particle.pos[k]);
                        particle.vel[k] = particle.vel[k].clamp(-p.v_max, p.v_max);
                        particle.pos[k] = (particle.pos[k] + particle.vel[k]).clamp(0.0, 1.0);
                    }
                    let mut cfg = ctx.space.from_unit_features(&particle.pos);
                    if !ctx.admits(&cfg) {
                        cfg = ctx.sample_config(&mut rng);
                        particle.pos = ctx.space.to_unit_features(&cfg);
                    }
                    let cost = rec.measure(&cfg);
                    if cost < particle.best_cost {
                        particle.best_cost = cost;
                        particle.best_pos = particle.pos.clone();
                    }
                    if global_best.as_ref().is_none_or(|(_, c)| cost < *c) {
                        global_best = Some((particle.pos.clone(), cost));
                    }
                }
            }
        } else {
            // Synchronous-update PSO: the swarm moves against a global
            // best frozen at the start of each sweep, so one sweep's
            // measurements carry no data dependencies and can run as
            // `ctx.batch`-wide objective calls. This is the classic
            // synchronous PSO variant — deliberately NOT bit-identical
            // to the asynchronous sequential path above, which updates
            // the global best after every single measurement.
            while rec.remaining() > 0 {
                if let Some((_, gcost)) = &global_best {
                    trace::point(
                        ctx.trace,
                        "pso_iteration",
                        &[("index", iteration as f64), ("global_best", *gcost)],
                    );
                }
                iteration += 1;
                let gbest = global_best.as_ref().expect("initialized").0.clone();
                let width = swarm.len().min(rec.remaining());
                let mut moved: Vec<Configuration> = Vec::with_capacity(width);
                for particle in swarm.iter_mut().take(width) {
                    for (k, g) in gbest.iter().enumerate().take(d) {
                        let r1 = rng.gen::<f64>();
                        let r2 = rng.gen::<f64>();
                        particle.vel[k] = p.inertia * particle.vel[k]
                            + p.cognitive * r1 * (particle.best_pos[k] - particle.pos[k])
                            + p.social * r2 * (g - particle.pos[k]);
                        particle.vel[k] = particle.vel[k].clamp(-p.v_max, p.v_max);
                        particle.pos[k] = (particle.pos[k] + particle.vel[k]).clamp(0.0, 1.0);
                    }
                    let mut cfg = ctx.space.from_unit_features(&particle.pos);
                    if !ctx.admits(&cfg) {
                        cfg = ctx.sample_config(&mut rng);
                        particle.pos = ctx.space.to_unit_features(&cfg);
                    }
                    moved.push(cfg);
                }
                let mut costs: Vec<f64> = Vec::with_capacity(width);
                for chunk in moved.chunks(ctx.batch) {
                    costs.extend(rec.measure_batch(chunk));
                }
                for (particle, cost) in swarm.iter_mut().zip(costs) {
                    if cost < particle.best_cost {
                        particle.best_cost = cost;
                        particle.best_pos = particle.pos.clone();
                    }
                    if global_best.as_ref().is_none_or(|(_, c)| cost < *c) {
                        global_best = Some((particle.pos.clone(), cost));
                    }
                }
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::{imagecl, Configuration};

    fn smooth(cfg: &Configuration) -> f64 {
        let v = cfg.values();
        (v[0] as f64 - 4.0).powi(2) + (v[1] as f64 - 4.0).powi(2) + (v[3] as f64 - 4.0).powi(2)
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = ParticleSwarm::default().tune(&TuneContext::new(&space, 75, 1), &mut obj);
        assert_eq!(r.history.len(), 75);
    }

    #[test]
    fn swarm_converges_toward_optimum() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = ParticleSwarm::default().tune(&TuneContext::new(&space, 250, 2), &mut obj);
        assert!(r.best.value <= 2.0, "PSO best {}", r.best.value);
    }

    #[test]
    fn respects_constraint() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 60, 3).with_constraint(&cons);
        let mut obj = smooth;
        let r = ParticleSwarm::default().tune(&ctx, &mut obj);
        for e in r.history.evaluations() {
            assert!(ctx.admits(&e.config));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = smooth;
        let t = ParticleSwarm::default();
        let a = t.tune(&TuneContext::new(&space, 40, 5), &mut obj);
        let b = t.tune(&TuneContext::new(&space, 40, 5), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }

    #[test]
    fn batched_runs_spend_exact_budget_and_stay_deterministic() {
        // Batch > 1 engages the synchronous-update variant: not
        // bit-identical to the sequential path, but still budget-exact,
        // constraint-respecting, and deterministic per seed.
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = smooth;
        for batch in [2, 8, 16] {
            let ctx = TuneContext::new(&space, 75, 1)
                .with_constraint(&cons)
                .with_batch(batch);
            let a = ParticleSwarm::default().tune(&ctx, &mut obj);
            assert_eq!(a.history.len(), 75);
            for e in a.history.evaluations() {
                assert!(ctx.admits(&e.config));
            }
            let b = ParticleSwarm::default().tune(&ctx, &mut obj);
            assert_eq!(a.history.evaluations(), b.history.evaluations());
        }
    }

    #[test]
    fn batch_of_one_matches_the_sequential_path_exactly() {
        let space = imagecl::space();
        let mut obj = smooth;
        let seq = ParticleSwarm::default().tune(&TuneContext::new(&space, 75, 1), &mut obj);
        let one =
            ParticleSwarm::default().tune(&TuneContext::new(&space, 75, 1).with_batch(1), &mut obj);
        assert_eq!(seq.history.evaluations(), one.history.evaluations());
    }

    #[test]
    fn budget_smaller_than_swarm() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = ParticleSwarm::default().tune(&TuneContext::new(&space, 6, 4), &mut obj);
        assert_eq!(r.history.len(), 6);
    }
}
