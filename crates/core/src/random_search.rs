//! Random Search — the study's baseline.
//!
//! Draws `budget` configurations uniformly at random (from the feasible
//! region when the constraint specification is present, per the paper's
//! non-SMBO protocol), measures each once, and returns the minimum.

use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RS technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut rec = Recorder::new(ctx, objective);
        if ctx.batch <= 1 {
            while rec.remaining() > 0 {
                let cfg = ctx.sample_config(&mut rng);
                trace::point(ctx.trace, "draw", &[("index", rec.spent() as f64)]);
                rec.measure(&cfg);
            }
        } else {
            // Batched path: every draw is independent of every
            // measurement, so grouping `batch` draws per objective call
            // leaves the RNG stream — and therefore the history —
            // bit-identical to the sequential path.
            while rec.remaining() > 0 {
                let width = ctx.batch.min(rec.remaining());
                let chunk: Vec<_> = (0..width)
                    .map(|k| {
                        let cfg = ctx.sample_config(&mut rng);
                        trace::point(ctx.trace, "draw", &[("index", (rec.spent() + k) as f64)]);
                        cfg
                    })
                    .collect();
                rec.measure_batch(&chunk);
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::{imagecl, Configuration};

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 37, 5);
        let mut obj = |cfg: &Configuration| cfg.values()[0] as f64;
        let r = RandomSearch.tune(&ctx, &mut obj);
        assert_eq!(r.history.len(), 37);
    }

    #[test]
    fn result_is_min_of_history() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 50, 1);
        let mut obj = |cfg: &Configuration| cfg.values().iter().map(|&v| v as f64).product::<f64>();
        let r = RandomSearch.tune(&ctx, &mut obj);
        let min = r
            .history
            .evaluations()
            .iter()
            .map(|e| e.value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(r.best.value, min);
    }

    #[test]
    fn constraint_is_respected() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 40, 2).with_constraint(&cons);
        let mut obj = |_: &Configuration| 1.0;
        let r = RandomSearch.tune(&ctx, &mut obj);
        for e in r.history.evaluations() {
            assert!(ctx.admits(&e.config));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = |cfg: &Configuration| cfg.values()[1] as f64;
        let a = RandomSearch.tune(&TuneContext::new(&space, 20, 7), &mut obj);
        let b = RandomSearch.tune(&TuneContext::new(&space, 20, 7), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
        let c = RandomSearch.tune(&TuneContext::new(&space, 20, 8), &mut obj);
        assert_ne!(a.history.evaluations(), c.history.evaluations());
    }

    #[test]
    fn batched_run_is_bit_identical_to_sequential() {
        let space = imagecl::space();
        let mut obj = |cfg: &Configuration| cfg.values().iter().map(|&v| v as f64).sum::<f64>();
        let seq = RandomSearch.tune(&TuneContext::new(&space, 37, 5), &mut obj);
        for batch in [2, 4, 8, 37, 64] {
            let b = RandomSearch.tune(&TuneContext::new(&space, 37, 5).with_batch(batch), &mut obj);
            assert_eq!(seq.history.evaluations(), b.history.evaluations());
            assert_eq!(seq.best, b.best);
        }
    }

    #[test]
    fn bigger_budget_is_no_worse_in_expectation_check_single_seed() {
        // Not a statistical claim — with the same seed, the first 10 draws
        // of the 100-budget run coincide with the 10-budget run, so the
        // bigger run's best can only be <=.
        let space = imagecl::space();
        let mut obj = |cfg: &Configuration| cfg.values().iter().map(|&v| v as f64).sum::<f64>();
        let small = RandomSearch.tune(&TuneContext::new(&space, 10, 3), &mut obj);
        let large = RandomSearch.tune(&TuneContext::new(&space, 100, 3), &mut obj);
        assert!(large.best.value <= small.best.value);
    }
}
