//! Search-trace flight recorder: structured events and timed phase
//! spans emitted by every tuner while it runs.
//!
//! The paper's headline claims are *trajectory* claims (BO GP's dip
//! between sample sizes 100→200, GA overtaking the SMBO methods late),
//! but a [`TuneResult`](crate::TuneResult) only shows the destination.
//! This module gives a run a black-box recorder: the harness emits one
//! [`TraceRecord::Trial`] per budget-consuming measurement, and each
//! technique wraps its internal phases (`surrogate_fit`, `acquisition`,
//! `objective`, GA `selection`/`mutation`, …) in timed spans with
//! algorithm-internal payloads (GP hyperparameters, TPE density sizes,
//! RF forest depth, GA generation statistics).
//!
//! Everything funnels through the [`TraceSink`] trait carried by
//! [`TuneContext`](crate::TuneContext). The default sink is
//! [`NullSink`], whose overhead contract makes tracing free unless
//! explicitly requested; [`VecSink`] collects events in memory,
//! [`JsonlSink`] streams them to disk with the shared [`Durability`]
//! knob, and [`chrome_trace_json`] exports any collected trace in the
//! Chrome `trace_event` format that `chrome://tracing` and Perfetto
//! open directly.
//!
//! Tracing never influences a search: sinks only observe, so a run with
//! any sink attached visits bit-identical configurations to the same
//! run with [`NullSink`] (the RNG stream never sees the sink).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How hard a disk-backed writer pushes each record toward stable
/// storage. Shared by the service's session journals, the experiments
/// outcome journal, and [`JsonlSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Durability {
    /// `flush` + `sync_data` after every append: the record is on disk
    /// when the call returns and survives an OS crash or power loss.
    /// The default for session journals, whose write-ahead promise is
    /// the whole point.
    #[default]
    Sync,
    /// `flush` only: the record is handed to the OS page cache, which
    /// survives a process crash but not a kernel panic. The right trade
    /// for hot bulk writers (the experiments grid, trace streams) where
    /// one fsync per record would dominate the workload.
    Buffered,
}

/// One structured observation emitted by a search in progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TraceRecord {
    /// One budget-consuming measurement, emitted by
    /// [`Recorder::measure`](crate::Recorder::measure) for every tuner.
    Trial {
        /// Zero-based budget index of this measurement.
        index: usize,
        /// The measured configuration's parameter values.
        config: Vec<u32>,
        /// The measured cost.
        cost: f64,
        /// Best cost observed up to and including this trial — the
        /// incumbent trajectory, directly plottable as an anytime curve.
        best: f64,
    },
    /// A timed phase opens (`surrogate_fit`, `acquisition`,
    /// `objective`, `selection`, `mutation`, …).
    SpanBegin {
        /// Phase name.
        name: String,
    },
    /// The innermost open phase with this name closes.
    SpanEnd {
        /// Phase name, matching the corresponding [`TraceRecord::SpanBegin`].
        name: String,
    },
    /// A point event carrying algorithm-internal numeric payload
    /// (GP hyperparameters, TPE good/bad density sizes, GA generation
    /// statistics, HyperBand bracket/rung geometry, …).
    Point {
        /// Event name.
        name: String,
        /// Named numeric payload fields. Values must be finite — JSON
        /// has no NaN/Inf, and the JSONL sink round-trips through it.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        fields: Vec<(String, f64)>,
    },
}

impl TraceRecord {
    /// The record's name: the phase name for spans, the event name for
    /// points, and `"trial"` for trials.
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Trial { .. } => "trial",
            TraceRecord::SpanBegin { name }
            | TraceRecord::SpanEnd { name }
            | TraceRecord::Point { name, .. } => name,
        }
    }
}

/// A [`TraceRecord`] stamped by the sink that captured it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since the sink was created (monotone within one
    /// sink: later events never carry smaller timestamps).
    pub t_us: u64,
    /// The observation.
    #[serde(flatten)]
    pub record: TraceRecord,
}

/// Receives trace records from a running search.
///
/// # Overhead contract
///
/// Emission sites are structured so a disabled sink costs **one virtual
/// call returning `false` per candidate event and nothing else**: the
/// helpers ([`point`], [`span`]) and the harness check
/// [`TraceSink::is_enabled`] *before* allocating names, payload vectors
/// or timestamps, and [`NullSink`] — the default on every
/// [`TuneContext`](crate::TuneContext) — answers `false` from a no-op
/// body. A `NullSink` run is therefore bit-identical in behaviour
/// (same seed → same [`TuneResult`](crate::TuneResult)) and within
/// measurement noise in runtime of the pre-trace harness; the `trace`
/// criterion bench in `crates/bench` guards this.
///
/// Implementations must be cheap and non-blocking where possible: they
/// are called from the hot search loop. They must also be purely
/// observational — a sink that fed information back into the objective
/// would break run determinism.
pub trait TraceSink: std::fmt::Debug + Send + Sync {
    /// `false` when emissions are discarded; callers skip payload
    /// construction entirely in that case.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one observation. The sink assigns the timestamp.
    fn emit(&self, record: TraceRecord);
}

/// The guaranteed-cheap default sink: discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn emit(&self, _record: TraceRecord) {}
}

/// A process-lifetime [`NullSink`] usable as the default `&'a dyn
/// TraceSink` for any context lifetime.
pub static NULL_SINK: NullSink = NullSink;

/// Emits a point event with numeric payload, skipping all allocation
/// when the sink is disabled.
pub fn point(sink: &dyn TraceSink, name: &str, fields: &[(&str, f64)]) {
    if !sink.is_enabled() {
        return;
    }
    sink.emit(TraceRecord::Point {
        name: name.to_string(),
        fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
    });
}

/// Opens a timed phase span, closed when the returned guard drops (or
/// earlier via [`SpanGuard::end`]). Disabled sinks get a dead guard and
/// no events.
pub fn span<'s>(sink: &'s dyn TraceSink, name: &'static str) -> SpanGuard<'s> {
    let live = sink.is_enabled();
    if live {
        sink.emit(TraceRecord::SpanBegin {
            name: name.to_string(),
        });
    }
    SpanGuard { sink, name, live }
}

/// Closes its phase span on drop. Obtained from [`span`].
#[derive(Debug)]
pub struct SpanGuard<'s> {
    sink: &'s dyn TraceSink,
    name: &'static str,
    live: bool,
}

impl SpanGuard<'_> {
    /// Ends the span now instead of at scope exit.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.live {
            self.live = false;
            self.sink.emit(TraceRecord::SpanEnd {
                name: self.name.to_string(),
            });
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// In-memory sink: appends every event to a vector under a mutex.
#[derive(Debug)]
pub struct VecSink {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// An empty sink; timestamps count from now.
    pub fn new() -> Self {
        VecSink {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A copy of everything captured so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink lock").clone()
    }

    /// Takes everything captured so far, leaving the sink empty (used
    /// by incremental consumers like the service journal).
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace sink lock"))
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink lock").len()
    }

    /// `true` when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for VecSink {
    fn default() -> Self {
        VecSink::new()
    }
}

impl TraceSink for VecSink {
    fn emit(&self, record: TraceRecord) {
        let t_us = self.start.elapsed().as_micros() as u64;
        self.events
            .lock()
            .expect("trace sink lock")
            .push(TraceEvent { t_us, record });
    }
}

/// Disk-backed sink: one JSON object per line, pushed toward stable
/// storage per event according to the shared [`Durability`] knob.
///
/// Emission is best-effort — a tracing I/O failure must not abort the
/// search — so write errors are counted ([`JsonlSink::write_errors`])
/// rather than surfaced.
#[derive(Debug)]
pub struct JsonlSink {
    start: Instant,
    path: PathBuf,
    durability: Durability,
    file: Mutex<BufWriter<File>>,
    write_errors: AtomicU64,
}

impl JsonlSink {
    /// Creates (truncating) a trace file with [`Durability::Sync`].
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::create_with(path, Durability::Sync)
    }

    /// Creates (truncating) a trace file with an explicit durability
    /// mode.
    pub fn create_with(path: &Path, durability: Durability) -> std::io::Result<Self> {
        Ok(JsonlSink {
            start: Instant::now(),
            path: path.to_path_buf(),
            durability,
            file: Mutex::new(BufWriter::new(File::create(path)?)),
            write_errors: AtomicU64::new(0),
        })
    }

    /// The trace file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sink's durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Events dropped by I/O failures so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn try_write(&self, event: &TraceEvent) -> std::io::Result<()> {
        let line = serde_json::to_string(event)?;
        let mut file = self.file.lock().expect("trace sink lock");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        if self.durability == Durability::Sync {
            file.get_ref().sync_data()?;
        }
        Ok(())
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, record: TraceRecord) {
        let t_us = self.start.elapsed().as_micros() as u64;
        let event = TraceEvent { t_us, record };
        if self.try_write(&event).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Reads a trace file written by [`JsonlSink`]. A torn final line
/// (crash mid-append) is dropped silently, mirroring the session
/// journal's crash tolerance; corruption anywhere else is an error.
pub fn read_jsonl(path: &Path) -> std::io::Result<Vec<TraceEvent>> {
    let reader = BufReader::new(File::open(path)?);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let mut events = Vec::with_capacity(lines.len());
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceEvent>(line) {
            Ok(event) => events.push(event),
            Err(_) if i == last => break,
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed trace record on line {}: {e}", i + 1),
                ))
            }
        }
    }
    Ok(events)
}

/// One Chrome `trace_event` entry (the subset the exporter emits).
#[derive(Serialize)]
struct ChromeEvent<'a> {
    name: &'a str,
    ph: &'static str,
    ts: u64,
    pid: u32,
    tid: u32,
    #[serde(skip_serializing_if = "Option::is_none")]
    s: Option<&'static str>,
    #[serde(skip_serializing_if = "Option::is_none")]
    args: Option<BTreeMap<&'a str, f64>>,
}

/// Exports a captured trace in the Chrome `trace_event` JSON array
/// format: save the string to a file and open it in `chrome://tracing`
/// or [Perfetto](https://ui.perfetto.dev). Spans become `B`/`E` duration
/// events; trials and points become `i` instant events with their
/// payload under `args`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let chrome: Vec<ChromeEvent<'_>> = events
        .iter()
        .map(|e| {
            let (name, ph, s, args) = match &e.record {
                TraceRecord::SpanBegin { name } => (name.as_str(), "B", None, None),
                TraceRecord::SpanEnd { name } => (name.as_str(), "E", None, None),
                TraceRecord::Trial {
                    index, cost, best, ..
                } => {
                    let mut args = BTreeMap::new();
                    args.insert("index", *index as f64);
                    args.insert("cost", *cost);
                    args.insert("best", *best);
                    ("trial", "i", Some("t"), Some(args))
                }
                TraceRecord::Point { name, fields } => {
                    let args: BTreeMap<&str, f64> =
                        fields.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                    (name.as_str(), "i", Some("t"), Some(args))
                }
            };
            ChromeEvent {
                name,
                ph,
                ts: e.t_us,
                pid: 1,
                tid: 1,
                s,
                args,
            }
        })
        .collect();
    serde_json::to_string(&chrome).expect("chrome trace serializes")
}

/// Aggregate timing of one phase across a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Completed spans with this name.
    pub count: u64,
    /// Total time inside those spans, microseconds (self-inclusive:
    /// nested child spans are not subtracted).
    pub total_us: u64,
}

/// Matches `SpanBegin`/`SpanEnd` pairs (innermost-first, as emitted by
/// [`SpanGuard`]) and sums the duration per phase name — the
/// where-did-the-time-go breakdown. Unclosed spans are ignored.
pub fn phase_durations(events: &[TraceEvent]) -> BTreeMap<String, PhaseStat> {
    let mut open: Vec<(&str, u64)> = Vec::new();
    let mut totals: BTreeMap<String, PhaseStat> = BTreeMap::new();
    for e in events {
        match &e.record {
            TraceRecord::SpanBegin { name } => open.push((name.as_str(), e.t_us)),
            TraceRecord::SpanEnd { name } => {
                if let Some(pos) = open.iter().rposition(|(n, _)| *n == name.as_str()) {
                    let (_, begun) = open.remove(pos);
                    let stat = totals.entry(name.clone()).or_default();
                    stat.count += 1;
                    stat.total_us += e.t_us.saturating_sub(begun);
                }
            }
            _ => {}
        }
    }
    totals
}

/// Number of [`TraceRecord::Trial`] events in a trace.
pub fn trial_count(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e.record, TraceRecord::Trial { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::SpanBegin {
                name: "surrogate_fit".into(),
            },
            TraceRecord::Point {
                name: "gp_params".into(),
                fields: vec![("lengthscale".into(), 0.4)],
            },
            TraceRecord::SpanEnd {
                name: "surrogate_fit".into(),
            },
            TraceRecord::Trial {
                index: 0,
                config: vec![1, 2, 3],
                cost: 4.5,
                best: 4.5,
            },
        ]
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        assert!(!NullSink.is_enabled());
        NullSink.emit(TraceRecord::SpanBegin { name: "x".into() });
        point(&NULL_SINK, "x", &[("a", 1.0)]);
        let guard = span(&NULL_SINK, "y");
        guard.end();
    }

    #[test]
    fn vec_sink_collects_in_order_with_monotone_timestamps() {
        let sink = VecSink::new();
        for r in sample_records() {
            sink.emit(r);
        }
        let events = sink.events();
        assert_eq!(events.len(), 4);
        for pair in events.windows(2) {
            assert!(pair[0].t_us <= pair[1].t_us);
        }
        assert_eq!(trial_count(&events), 1);
        assert_eq!(sink.take().len(), 4);
        assert!(sink.is_empty());
    }

    #[test]
    fn span_guard_closes_on_drop_and_on_end() {
        let sink = VecSink::new();
        {
            let _outer = span(&sink, "outer");
            let inner = span(&sink, "inner");
            inner.end();
        }
        let names: Vec<String> = sink
            .events()
            .iter()
            .map(|e| {
                format!(
                    "{:?}:{}",
                    std::mem::discriminant(&e.record),
                    e.record.name()
                )
            })
            .collect();
        assert_eq!(names.len(), 4);
        let durations = phase_durations(&sink.events());
        assert_eq!(durations["outer"].count, 1);
        assert_eq!(durations["inner"].count, 1);
    }

    #[test]
    fn phase_durations_sum_nested_spans() {
        let events = vec![
            TraceEvent {
                t_us: 0,
                record: TraceRecord::SpanBegin { name: "a".into() },
            },
            TraceEvent {
                t_us: 10,
                record: TraceRecord::SpanBegin { name: "b".into() },
            },
            TraceEvent {
                t_us: 30,
                record: TraceRecord::SpanEnd { name: "b".into() },
            },
            TraceEvent {
                t_us: 100,
                record: TraceRecord::SpanEnd { name: "a".into() },
            },
        ];
        let d = phase_durations(&events);
        assert_eq!(
            d["a"],
            PhaseStat {
                count: 1,
                total_us: 100
            }
        );
        assert_eq!(
            d["b"],
            PhaseStat {
                count: 1,
                total_us: 20
            }
        );
    }

    #[test]
    fn trace_event_serde_round_trips() {
        for record in sample_records() {
            let event = TraceEvent { t_us: 7, record };
            let json = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn jsonl_sink_round_trips_through_the_reader() {
        let path = std::env::temp_dir().join(format!(
            "autotune-trace-test-{}-roundtrip.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create_with(&path, Durability::Buffered).unwrap();
        assert_eq!(sink.durability(), Durability::Buffered);
        for r in sample_records() {
            sink.emit(r);
        }
        assert_eq!(sink.write_errors(), 0);
        drop(sink);
        let events = read_jsonl(&path).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.record.clone()).collect::<Vec<_>>(),
            sample_records()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_reader_drops_only_a_torn_final_line() {
        let path = std::env::temp_dir().join(format!(
            "autotune-trace-test-{}-torn.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(TraceRecord::SpanBegin { name: "x".into() });
        drop(sink);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"t_us\":3,\"kind\":\"span_e").unwrap();
        drop(f);
        assert_eq!(read_jsonl(&path).unwrap().len(), 1);

        // The same garbage mid-file is structural corruption.
        std::fs::write(
            &path,
            "garbage\n{\"t_us\":1,\"kind\":\"span_begin\",\"name\":\"x\"}\n",
        )
        .unwrap();
        assert!(read_jsonl(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chrome_export_is_valid_json_with_balanced_phases() {
        let sink = VecSink::new();
        {
            let _fit = span(&sink, "surrogate_fit");
            point(&sink, "gp_params", &[("lengthscale", 0.2), ("noise", 0.01)]);
        }
        sink.emit(TraceRecord::Trial {
            index: 0,
            config: vec![1, 1],
            cost: 2.0,
            best: 2.0,
        });
        let json = chrome_trace_json(&sink.events());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let entries = parsed.as_array().unwrap();
        assert_eq!(entries.len(), 4);
        let phases: Vec<&str> = entries.iter().map(|e| e["ph"].as_str().unwrap()).collect();
        assert_eq!(phases, vec!["B", "i", "E", "i"]);
        assert_eq!(entries[1]["args"]["lengthscale"], 0.2);
        assert_eq!(entries[3]["args"]["cost"], 2.0);
    }

    #[test]
    fn durability_defaults_to_sync_and_serdes_snake_case() {
        assert_eq!(Durability::default(), Durability::Sync);
        assert_eq!(
            serde_json::to_string(&Durability::Buffered).unwrap(),
            "\"buffered\""
        );
        assert_eq!(
            serde_json::from_str::<Durability>("\"sync\"").unwrap(),
            Durability::Sync
        );
    }
}
