//! Analytic test objectives on the integer lattice.
//!
//! Simulator-independent landscapes with known optima, used to validate
//! the search techniques in isolation (the optimization literature's
//! standard practice before touching the real objective). All functions
//! are minimized and defined over any [`ParamSpace`]; positions are
//! taken in unit-cube coordinates so the same function works on every
//! space shape.

use autotune_space::{Configuration, ParamSpace};

/// Separable convex bowl: `sum (u_k - 0.5)^2` over unit coordinates.
/// Unique minimum at the centre of every range.
pub fn sphere(space: &ParamSpace, cfg: &Configuration) -> f64 {
    space
        .to_unit_features(cfg)
        .iter()
        .map(|u| (u - 0.5) * (u - 0.5))
        .sum()
}

/// Rastrigin-style multimodal surface on the unit cube: a bowl overlaid
/// with cosine ripples. Many local minima; global minimum at the centre.
pub fn rastrigin(space: &ParamSpace, cfg: &Configuration) -> f64 {
    let a = 3.0;
    space
        .to_unit_features(cfg)
        .iter()
        .map(|u| {
            let x = u - 0.5;
            x * x * 20.0 + a * (1.0 - (2.0 * std::f64::consts::PI * 4.0 * x).cos())
        })
        .sum()
}

/// Deceptive trap: a broad gradient pulling toward the *maximum* corner,
/// with the true optimum hidden at the minimum corner. Local search
/// without restarts is systematically misled.
pub fn deceptive_trap(space: &ParamSpace, cfg: &Configuration) -> f64 {
    let u = space.to_unit_features(cfg);
    let s: f64 = u.iter().sum::<f64>() / u.len() as f64;
    if s < 0.1 {
        // Narrow global basin near the all-low corner.
        -10.0 + s * 10.0
    } else {
        // Broad deceptive slope rewarding movement toward all-high.
        2.0 - s
    }
}

/// Non-separable rotated ridge: `(u_0 - u_1)^2` pairs plus a bowl, so
/// axis-aligned (per-dimension) reasoning alone cannot solve it.
pub fn ridge(space: &ParamSpace, cfg: &Configuration) -> f64 {
    let u = space.to_unit_features(cfg);
    let mut v = 0.0;
    for w in u.windows(2) {
        let d = w[0] - w[1];
        v += 10.0 * d * d;
    }
    v + u.iter().map(|x| (x - 0.5) * (x - 0.5)).sum::<f64>()
}

/// Noisy step plateau: piecewise-constant in each dimension (floor to a
/// 4-level grid). Large flat regions — the "dead parameter" character of
/// real tuning spaces — that defeat naive gradient intuition.
pub fn plateau(space: &ParamSpace, cfg: &Configuration) -> f64 {
    space
        .to_unit_features(cfg)
        .iter()
        .map(|u| (u * 4.0).floor().min(3.0))
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::TuneContext;
    use crate::{Algorithm, Tuner};
    use autotune_space::imagecl;

    fn space() -> ParamSpace {
        imagecl::space()
    }

    #[test]
    fn sphere_minimum_is_central() {
        let s = space();
        // Central config: coarsening 8 or 9 of 1..16 (unit 0.467/0.533),
        // work-group 4 or 5 of 1..8. Check a known centre beats corners.
        let centre = Configuration::from([8, 9, 8, 4, 5, 4]);
        let corner = Configuration::from([1, 1, 1, 1, 1, 1]);
        assert!(sphere(&s, &centre) < sphere(&s, &corner));
        assert!(sphere(&s, &centre) < 0.02);
    }

    #[test]
    fn rastrigin_is_multimodal() {
        let s = space();
        // Adjacent configurations can move non-monotonically — detect at
        // least one local ripple along one axis.
        let values: Vec<f64> = (1..=16)
            .map(|x| rastrigin(&s, &Configuration::from([x, 8, 8, 4, 4, 4])))
            .collect();
        let ups_and_downs = values
            .windows(2)
            .map(|w| (w[1] - w[0]).signum())
            .collect::<Vec<_>>();
        assert!(
            ups_and_downs.windows(2).any(|w| w[0] != w[1]),
            "no ripple found: {values:?}"
        );
    }

    #[test]
    fn trap_really_deceives_greedy_descent() {
        let s = space();
        // From the middle, the local gradient points away from the global
        // basin: a step toward all-high decreases the cost.
        let mid = Configuration::from([8, 8, 8, 4, 4, 4]);
        let higher = Configuration::from([9, 8, 8, 4, 4, 4]);
        assert!(deceptive_trap(&s, &higher) < deceptive_trap(&s, &mid));
        // But the global optimum is near all-low.
        let low = Configuration::from([1, 1, 1, 1, 1, 1]);
        assert!(deceptive_trap(&s, &low) < deceptive_trap(&s, &higher) - 5.0);
    }

    #[test]
    fn ridge_rewards_coordinated_moves() {
        let s = space();
        let aligned = Configuration::from([8, 8, 8, 4, 4, 4]);
        let zigzag = Configuration::from([1, 16, 1, 8, 1, 8]);
        assert!(ridge(&s, &aligned) < ridge(&s, &zigzag));
    }

    #[test]
    fn plateau_has_flat_regions() {
        let s = space();
        // Two nearby configs in the same quartile cell score identically.
        let a = Configuration::from([1, 1, 1, 1, 1, 1]);
        let b = Configuration::from([2, 1, 1, 1, 1, 1]);
        assert_eq!(plateau(&s, &a), plateau(&s, &b));
        // And the top corner is strictly worse than the bottom corner.
        let hi = Configuration::from([16, 16, 16, 8, 8, 8]);
        assert!(plateau(&s, &hi) > plateau(&s, &a));
    }

    #[test]
    fn every_tuner_beats_random_on_sphere() {
        // Sanity across the whole roster: with budget 150, every
        // technique's best should land in the central basin (< the value
        // of a face midpoint).
        let s = space();
        let threshold = 0.35; // E[value] for uniform random is ~0.5
        for algo in Algorithm::ALL {
            let cons = imagecl::constraint();
            let ctx = TuneContext::new(&s, 150, 9);
            let ctx = if algo.is_smbo() {
                ctx
            } else {
                ctx.with_constraint(&cons)
            };
            let mut obj = |cfg: &Configuration| sphere(&s, cfg);
            let r = algo.tuner().tune(&ctx, &mut obj);
            assert!(
                r.best.value < threshold,
                "{} best {} on sphere",
                algo.name(),
                r.best.value
            );
        }
    }

    #[test]
    fn trap_defeats_pure_local_search() {
        // The trap's whole point: its hidden basin occupies ~1e-5 of the
        // space behind a cliff, so best-improvement descent lands in the
        // deceptive basin essentially always — the motivating failure
        // mode for population/restart techniques on larger basins.
        let s = space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&s, 300, 3).with_constraint(&cons);
        let mut obj = |cfg: &Configuration| deceptive_trap(&s, cfg);
        let r = crate::mls::MultiStartLocalSearch.tune(&ctx, &mut obj);
        assert!(
            r.best.value > -5.0,
            "descent should NOT find the needle basin, got {}",
            r.best.value
        );
        // And the incumbent it does find sits in the deceptive basin,
        // i.e. clearly better than the basin's entry cost of ~1.9.
        assert!(r.best.value < 1.9);
    }
}
