//! Simulated Annealing — a metaheuristic the related work (CLTune,
//! Kernel Tuner) evaluates; provided as an extension technique for the
//! future-work comparisons the paper proposes.
//!
//! Lattice-neighbourhood moves with a geometric temperature schedule and
//! Metropolis acceptance. The acceptance scale adapts to the observed
//! cost spread so the same schedule works across kernels whose runtimes
//! differ by orders of magnitude.

use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use autotune_space::neighborhood;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaParams {
    /// Initial acceptance temperature as a fraction of the observed cost
    /// spread.
    pub t_start: f64,
    /// Final temperature fraction.
    pub t_end: f64,
    /// Restart from the incumbent after this many consecutive rejections.
    pub restart_after: usize,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            t_start: 1.0,
            t_end: 0.001,
            restart_after: 30,
        }
    }
}

/// The SA technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedAnnealing {
    /// Hyperparameters.
    pub params: SaParams,
}

impl Tuner for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let p = self.params;
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut rec = Recorder::new(ctx, objective);

        let mut current = ctx.sample_config(&mut rng);
        let mut current_cost = rec.measure(&current);
        // Scale reference: running mean absolute cost (updated online).
        let mut scale = current_cost.abs().max(1e-9);
        let mut rejections = 0usize;

        let total = ctx.budget.max(2) as f64;
        while rec.remaining() > 0 {
            let progress = rec.spent() as f64 / total;
            let temp = p.t_start * (p.t_end / p.t_start).powf(progress) * scale;

            let mut proposal = neighborhood::random_neighbor(ctx.space, &current, &mut rng);
            if !ctx.admits(&proposal) {
                proposal = ctx.sample_config(&mut rng);
            }
            let cost = rec.measure(&proposal);
            scale = 0.9 * scale + 0.1 * cost.abs().max(1e-9);

            let accept = cost <= current_cost
                || rng.gen::<f64>() < ((current_cost - cost) / temp.max(1e-12)).exp();
            trace::point(
                ctx.trace,
                "sa_step",
                &[
                    ("temperature", temp),
                    ("cost", cost),
                    ("accepted", if accept { 1.0 } else { 0.0 }),
                ],
            );
            if accept {
                current = proposal;
                current_cost = cost;
                rejections = 0;
            } else {
                rejections += 1;
                if rejections >= p.restart_after {
                    // Teleport to the best seen so far to escape a cul-de-sac.
                    let best = rec.best().expect("measured at least once").clone();
                    current = best.config;
                    current_cost = best.value;
                    rejections = 0;
                    trace::point(ctx.trace, "sa_restart", &[("spent", rec.spent() as f64)]);
                }
            }
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::{imagecl, Configuration};

    fn smooth(cfg: &Configuration) -> f64 {
        cfg.values().iter().map(|&v| (v * v) as f64).sum()
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = SimulatedAnnealing::default().tune(&TuneContext::new(&space, 64, 1), &mut obj);
        assert_eq!(r.history.len(), 64);
    }

    #[test]
    fn descends_on_a_smooth_bowl() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = SimulatedAnnealing::default().tune(&TuneContext::new(&space, 300, 2), &mut obj);
        // Optimum is 6 (all ones); random expectation is ~270.
        assert!(r.best.value < 100.0, "SA best {}", r.best.value);
        let first = r.history.evaluations()[0].value;
        assert!(r.best.value < first);
    }

    #[test]
    fn respects_constraint() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 80, 3).with_constraint(&cons);
        let mut obj = smooth;
        let r = SimulatedAnnealing::default().tune(&ctx, &mut obj);
        for e in r.history.evaluations() {
            assert!(ctx.admits(&e.config));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = smooth;
        let t = SimulatedAnnealing::default();
        let a = t.tune(&TuneContext::new(&space, 50, 13), &mut obj);
        let b = t.tune(&TuneContext::new(&space, 50, 13), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }
}
