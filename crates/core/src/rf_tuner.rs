//! The non-SMBO Random Forest technique, following the paper's §VI-B
//! protocol exactly:
//!
//! > "For model-based approaches like Random Forest (RF), we train the
//! > models with the subset of size S-10 for each experiment and then
//! > run the top 10 predictions. The top performing prediction is then
//! > stored as the output."
//!
//! I.e. with a sample size `S`: measure `S - 10` random configurations
//! as training data, fit a forest, rank a large candidate pool by
//! predicted runtime, measure the 10 best-predicted candidates, return
//! the best of those 10 *measurements*.

use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use autotune_space::Configuration;
use autotune_surrogates::{RandomForest, RandomForestParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of top predictions measured at the end (the paper's 10).
pub const TOP_PREDICTIONS: usize = 10;

/// Cap on how many prior points a warm start folds into the training
/// set (budget-free pseudo-samples alongside the measured ones).
const MAX_PRIOR_POINTS: usize = 32;

/// The RF technique.
#[derive(Debug, Clone)]
pub struct RandomForestTuner {
    /// Forest hyperparameters (defaults mirror scikit-learn's).
    pub params: RandomForestParams,
    /// Size of the random candidate pool ranked by the model.
    pub candidate_pool: usize,
}

impl Default for RandomForestTuner {
    fn default() -> Self {
        RandomForestTuner {
            params: RandomForestParams::default(),
            candidate_pool: 2048,
        }
    }
}

impl Tuner for RandomForestTuner {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut rec = Recorder::new(ctx, objective);

        // With a budget too small to hold out 10 verification runs, the
        // protocol degenerates to random search (the paper's smallest
        // sample size, 25, still leaves 15 training samples).
        let verify = TOP_PREDICTIONS.min(ctx.budget.saturating_sub(1)).max(1);
        let train_n = ctx.budget - verify;

        let mut train_x: Vec<Vec<f64>> = Vec::with_capacity(train_n);
        let mut train_y: Vec<f64> = Vec::with_capacity(train_n);
        // Warm start: prior observations join the training set as
        // budget-free pseudo-samples, and the prior incumbent (when the
        // constraint admits it) jumps the verification queue.
        let prior_incumbent = ctx.seed_prior().map(|prior| {
            for pt in prior.top(MAX_PRIOR_POINTS) {
                train_x.push(ctx.space.to_unit_features(&pt.config));
                train_y.push(pt.value);
            }
            trace::point(ctx.trace, "prior_seed", &[("points", train_x.len() as f64)]);
            prior.incumbent().expect("non-empty prior").config.clone()
        });
        // Training draws never depend on earlier measurements, so the
        // batched walk below (chunks of `ctx.batch` samples per
        // objective call) is bit-identical to the sequential one.
        let mut trained = 0usize;
        while trained < train_n {
            let width = ctx.batch.min(train_n - trained);
            let chunk: Vec<_> = (0..width).map(|_| ctx.sample_config(&mut rng)).collect();
            let ys = rec.measure_batch(&chunk);
            for (cfg, y) in chunk.iter().zip(ys) {
                train_x.push(ctx.space.to_unit_features(cfg));
                train_y.push(y);
            }
            trained += width;
        }

        if train_x.is_empty() {
            // Budget of 1: single random measurement.
            let cfg = ctx.sample_config(&mut rng);
            rec.measure(&cfg);
            return rec.finish();
        }

        let fit = trace::span(ctx.trace, "surrogate_fit");
        let forest = RandomForest::fit(&train_x, &train_y, &self.params, ctx.seed ^ 0xf0f0);
        fit.end();
        trace::point(
            ctx.trace,
            "rf_forest",
            &[
                ("trees", forest.len() as f64),
                ("max_depth", forest.max_depth() as f64),
                ("train", train_x.len() as f64),
            ],
        );

        // Rank a fresh feasible candidate pool by predicted runtime.
        let acquisition = trace::span(ctx.trace, "acquisition");
        let mut candidates: Vec<Configuration> = (0..self.candidate_pool)
            .map(|_| ctx.sample_config(&mut rng))
            .collect();
        candidates.sort_by(|a, b| {
            let pa = forest.predict(&ctx.space.to_unit_features(a));
            let pb = forest.predict(&ctx.space.to_unit_features(b));
            pa.partial_cmp(&pb).expect("predictions are finite")
        });
        candidates.dedup();
        acquisition.end();

        // The verification shortlist: the prior incumbent first (warm
        // starts only), then the best-predicted candidates. The pool is
        // already deduplicated, so without a prior this reduces to
        // `take(verify)` — the unchanged cold path.
        let mut shortlist: Vec<Configuration> = Vec::with_capacity(verify);
        if let Some(inc) = prior_incumbent {
            if ctx.admits(&inc) {
                shortlist.push(inc);
            }
        }
        for cfg in candidates {
            if shortlist.len() == verify {
                break;
            }
            if !shortlist.contains(&cfg) {
                shortlist.push(cfg);
            }
        }
        // The shortlist is fixed before any verification measurement, so
        // chunking it is also exact.
        let take = shortlist.len().min(rec.remaining());
        for chunk in shortlist[..take].chunks(ctx.batch.max(1)) {
            // Leave-last-out probes for the diagnostics layer: the
            // forest's predicted runtime for each config it is about to
            // verify (lower = predicted better). Observational only —
            // no RNG, gated on the sink.
            if ctx.trace.is_enabled() {
                for cfg in chunk {
                    let pred = forest.predict(&ctx.space.to_unit_features(cfg));
                    if pred.is_finite() {
                        trace::point(ctx.trace, "surrogate_pred", &[("value", pred)]);
                    }
                }
            }
            rec.measure_batch(chunk);
        }
        // If dedup left fewer than `verify` candidates, spend the rest
        // randomly so the budget is honoured exactly.
        while rec.remaining() > 0 {
            let width = ctx.batch.min(rec.remaining());
            let fill: Vec<_> = (0..width).map(|_| ctx.sample_config(&mut rng)).collect();
            rec.measure_batch(&fill);
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::imagecl;

    /// Smooth separable objective: small values of every parameter win.
    fn smooth(cfg: &Configuration) -> f64 {
        cfg.values().iter().map(|&v| (v * v) as f64).sum::<f64>()
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 40, 11).with_constraint(&cons);
        let mut obj = smooth;
        let r = RandomForestTuner::default().tune(&ctx, &mut obj);
        assert_eq!(r.history.len(), 40);
    }

    #[test]
    fn model_guidance_beats_its_own_training_data() {
        // The best of the 10 model-chosen verification runs should beat
        // the best of the random training samples on a learnable
        // objective (that is the entire point of the method).
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 60, 3);
        let mut obj = smooth;
        let r = RandomForestTuner::default().tune(&ctx, &mut obj);
        let train_best = r.history.evaluations()[..50]
            .iter()
            .map(|e| e.value)
            .fold(f64::INFINITY, f64::min);
        let verify_best = r.history.evaluations()[50..]
            .iter()
            .map(|e| e.value)
            .fold(f64::INFINITY, f64::min);
        assert!(
            verify_best <= train_best,
            "verification {verify_best} vs training {train_best}"
        );
    }

    #[test]
    fn tiny_budget_degenerates_gracefully() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 3, 1);
        let mut obj = smooth;
        let r = RandomForestTuner::default().tune(&ctx, &mut obj);
        assert_eq!(r.history.len(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = smooth;
        let t = RandomForestTuner::default();
        let a = t.tune(&TuneContext::new(&space, 30, 21), &mut obj);
        let b = t.tune(&TuneContext::new(&space, 30, 21), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }

    #[test]
    fn warm_start_verifies_the_prior_incumbent_first() {
        use crate::prior::PriorHistory;
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = smooth;
        let donor_ctx = TuneContext::new(&space, 40, 1).with_constraint(&cons);
        let donor = RandomForestTuner::default().tune(&donor_ctx, &mut obj);
        let mut prior = PriorHistory::new();
        for e in donor.history.evaluations() {
            prior.push(e.config.clone(), e.value, 1.0);
        }

        let warm_ctx = TuneContext::new(&space, 20, 2)
            .with_constraint(&cons)
            .with_prior(&prior);
        let warm = RandomForestTuner::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.len(), 20);
        // Training burns `budget - 10` samples; the first verification
        // measurement (index train_n) is the donor's incumbent.
        assert_eq!(warm.history.evaluations()[10].config, donor.best.config);
        assert!(warm.best.value <= donor.best.value);

        // Warm runs stay deterministic and feasible.
        let again = RandomForestTuner::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.evaluations(), again.history.evaluations());
        for e in warm.history.evaluations() {
            assert!(warm_ctx.admits(&e.config));
        }
    }

    #[test]
    fn batched_run_is_bit_identical_to_sequential() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = smooth;
        let seq_ctx = TuneContext::new(&space, 40, 11).with_constraint(&cons);
        let seq = RandomForestTuner::default().tune(&seq_ctx, &mut obj);
        for batch in [2, 7, 16, 40] {
            let ctx = TuneContext::new(&space, 40, 11)
                .with_constraint(&cons)
                .with_batch(batch);
            let b = RandomForestTuner::default().tune(&ctx, &mut obj);
            assert_eq!(seq.history.evaluations(), b.history.evaluations());
        }
    }

    #[test]
    fn respects_constraint_everywhere() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 35, 9).with_constraint(&cons);
        let mut obj = smooth;
        let r = RandomForestTuner::default().tune(&ctx, &mut obj);
        for e in r.history.evaluations() {
            assert!(ctx.admits(&e.config), "infeasible config measured");
        }
    }
}
