//! Name-based registry of the implemented search techniques.

use crate::bo_gp::BayesOptGp;
use crate::bo_tpe::BayesOptTpe;
use crate::ga::GeneticAlgorithm;
use crate::grid::GridSearch;
use crate::mls::MultiStartLocalSearch;
use crate::pso::ParticleSwarm;
use crate::random_search::RandomSearch;
use crate::rf_tuner::RandomForestTuner;
use crate::sa::SimulatedAnnealing;
use crate::tuner::Tuner;
use serde::{Deserialize, Serialize};

/// The implemented search techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Algorithm {
    /// Random Search.
    RandomSearch,
    /// Random Forest regression (non-SMBO, paper protocol).
    RandomForest,
    /// Genetic Algorithm.
    GeneticAlgorithm,
    /// Bayesian Optimization with Gaussian Processes.
    BoGp,
    /// Bayesian Optimization with Tree-Parzen Estimators.
    BoTpe,
    /// Simulated Annealing (extension).
    SimulatedAnnealing,
    /// Particle Swarm Optimization (extension).
    ParticleSwarm,
    /// Multi-start Local Search (extension).
    MultiStartLocalSearch,
    /// Grid Search (extension).
    GridSearch,
}

impl Algorithm {
    /// The five techniques of the paper's study, in its presentation
    /// order (RS, RF, GA, BO GP, BO TPE).
    pub const PAPER_FIVE: [Algorithm; 5] = [
        Algorithm::RandomSearch,
        Algorithm::RandomForest,
        Algorithm::GeneticAlgorithm,
        Algorithm::BoGp,
        Algorithm::BoTpe,
    ];

    /// Every implemented technique, paper five first.
    pub const ALL: [Algorithm; 9] = [
        Algorithm::RandomSearch,
        Algorithm::RandomForest,
        Algorithm::GeneticAlgorithm,
        Algorithm::BoGp,
        Algorithm::BoTpe,
        Algorithm::SimulatedAnnealing,
        Algorithm::ParticleSwarm,
        Algorithm::MultiStartLocalSearch,
        Algorithm::GridSearch,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::RandomSearch => "RS",
            Algorithm::RandomForest => "RF",
            Algorithm::GeneticAlgorithm => "GA",
            Algorithm::BoGp => "BO GP",
            Algorithm::BoTpe => "BO TPE",
            Algorithm::SimulatedAnnealing => "SA",
            Algorithm::ParticleSwarm => "PSO",
            Algorithm::MultiStartLocalSearch => "MLS",
            Algorithm::GridSearch => "GS",
        }
    }

    /// Parses a display name (case-insensitive; also accepts the
    /// underscore forms `bo_gp`/`bo_tpe`).
    pub fn parse(s: &str) -> Option<Algorithm> {
        let canon = s.trim().to_ascii_lowercase().replace(['_', '-'], " ");
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().to_ascii_lowercase() == canon)
    }

    /// `true` for the sequential model-based techniques, which per the
    /// paper's design receive **no** constraint specification.
    pub fn is_smbo(self) -> bool {
        matches!(self, Algorithm::BoGp | Algorithm::BoTpe)
    }

    /// Instantiates the technique with its study-default hyperparameters.
    pub fn tuner(self) -> Box<dyn Tuner> {
        match self {
            Algorithm::RandomSearch => Box::new(RandomSearch),
            Algorithm::RandomForest => Box::new(RandomForestTuner::default()),
            Algorithm::GeneticAlgorithm => Box::new(GeneticAlgorithm::default()),
            Algorithm::BoGp => Box::new(BayesOptGp::default()),
            Algorithm::BoTpe => Box::new(BayesOptTpe::default()),
            Algorithm::SimulatedAnnealing => Box::new(SimulatedAnnealing::default()),
            Algorithm::ParticleSwarm => Box::new(ParticleSwarm::default()),
            Algorithm::MultiStartLocalSearch => Box::new(MultiStartLocalSearch),
            Algorithm::GridSearch => Box::new(GridSearch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::TuneContext;
    use autotune_space::{imagecl, Configuration};

    #[test]
    fn paper_five_matches_the_study() {
        let names: Vec<_> = Algorithm::PAPER_FIVE.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["RS", "RF", "GA", "BO GP", "BO TPE"]);
    }

    #[test]
    fn parse_round_trips() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::parse(a.name()), Some(a));
        }
        assert_eq!(Algorithm::parse("bo_gp"), Some(Algorithm::BoGp));
        assert_eq!(Algorithm::parse("BO-TPE"), Some(Algorithm::BoTpe));
        assert_eq!(Algorithm::parse("magic"), None);
    }

    #[test]
    fn smbo_classification() {
        assert!(Algorithm::BoGp.is_smbo());
        assert!(Algorithm::BoTpe.is_smbo());
        for a in [
            Algorithm::RandomSearch,
            Algorithm::RandomForest,
            Algorithm::GeneticAlgorithm,
        ] {
            assert!(!a.is_smbo());
        }
    }

    #[test]
    fn every_technique_runs_under_the_same_harness() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        for a in Algorithm::ALL {
            let ctx = TuneContext::new(&space, 25, 1);
            let ctx = if a.is_smbo() {
                ctx
            } else {
                ctx.with_constraint(&cons)
            };
            let mut obj = |cfg: &Configuration| cfg.values().iter().map(|&v| v as f64).sum::<f64>();
            let r = a.tuner().tune(&ctx, &mut obj);
            assert_eq!(
                r.history.len(),
                25,
                "{} must spend the full budget",
                a.name()
            );
            assert!(r.best.value >= 6.0, "{}: impossible best", a.name());
        }
    }
}
