//! Grid Search — the classical baseline Bergstra & Bengio compared
//! Random Search against; included as an extension technique.
//!
//! Visits the space at a uniform stride chosen so the budget covers it
//! end to end (a coarse regular lattice), skipping infeasible points
//! when the constraint is available.

use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The Grid Search technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridSearch;

impl Tuner for GridSearch {
    fn name(&self) -> &'static str {
        "GS"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let mut rec = Recorder::new(ctx, objective);
        let size = ctx.space.size();
        let stride = (size / ctx.budget as u64).max(1);
        trace::point(
            ctx.trace,
            "grid_stride",
            &[("size", size as f64), ("stride", stride as f64)],
        );

        // The lattice walk is fully value-independent, so the batched
        // path (buffering up to `ctx.batch` admitted points per
        // objective call) visits exactly the sequential sequence.
        let mut chunk: Vec<_> = Vec::with_capacity(ctx.batch);
        let mut idx = 0u64;
        while idx < size && rec.remaining() > chunk.len() {
            let cfg = ctx.space.config_at(idx);
            if ctx.admits(&cfg) {
                chunk.push(cfg);
                if chunk.len() >= ctx.batch {
                    rec.measure_batch(&chunk);
                    chunk.clear();
                }
            }
            idx += stride;
        }
        rec.measure_batch(&chunk);
        // Infeasible grid points may leave budget unspent; fill randomly
        // so every technique spends the same sample count.
        let lattice_spent = rec.spent();
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        while rec.remaining() > 0 {
            let width = ctx.batch.min(rec.remaining());
            let fill: Vec<_> = (0..width).map(|_| ctx.sample_config(&mut rng)).collect();
            rec.measure_batch(&fill);
        }
        if rec.spent() > lattice_spent {
            trace::point(
                ctx.trace,
                "grid_fill",
                &[("filled", (rec.spent() - lattice_spent) as f64)],
            );
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::{imagecl, Configuration};

    fn smooth(cfg: &Configuration) -> f64 {
        cfg.values().iter().map(|&v| v as f64).sum()
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = GridSearch.tune(&TuneContext::new(&space, 48, 0), &mut obj);
        assert_eq!(r.history.len(), 48);
    }

    #[test]
    fn covers_the_space_with_regular_stride() {
        let space = imagecl::space();
        let mut obj = smooth;
        let r = GridSearch.tune(&TuneContext::new(&space, 32, 0), &mut obj);
        // First measured config is index 0 = all-lows.
        assert_eq!(
            r.history.evaluations()[0].config,
            Configuration::from([1, 1, 1, 1, 1, 1])
        );
        // The visited indices span a wide range of the space.
        let indices: Vec<u64> = r
            .history
            .evaluations()
            .iter()
            .map(|e| space.index_of(&e.config))
            .collect();
        assert!(*indices.iter().max().unwrap() > space.size() / 2);
    }

    #[test]
    fn batched_run_is_bit_identical_to_sequential() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = smooth;
        let seq_ctx = TuneContext::new(&space, 64, 0).with_constraint(&cons);
        let seq = GridSearch.tune(&seq_ctx, &mut obj);
        for batch in [2, 5, 16, 64] {
            let ctx = TuneContext::new(&space, 64, 0)
                .with_constraint(&cons)
                .with_batch(batch);
            let b = GridSearch.tune(&ctx, &mut obj);
            assert_eq!(seq.history.evaluations(), b.history.evaluations());
        }
    }

    #[test]
    fn respects_constraint() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 64, 0).with_constraint(&cons);
        let mut obj = smooth;
        let r = GridSearch.tune(&ctx, &mut obj);
        for e in r.history.evaluations() {
            assert!(ctx.admits(&e.config));
        }
    }
}
