//! Multi-fidelity objectives for budget-based search techniques.
//!
//! The paper's future work names HyperBand and BOHB as techniques it
//! wants compared "for a wider range of sample sizes". Both exploit
//! *cheap low-fidelity evaluations* — for GPU kernels, running the same
//! configuration on a smaller problem — and promote promising
//! configurations to higher fidelity.
//!
//! Budget accounting: a fidelity-`f` evaluation costs `f` of one sample,
//! so a HyperBand run's total cost is comparable with the other
//! techniques' sample budgets (fractional cost is rounded up at the end
//! of a run when auditing against whole-sample budgets).

use autotune_space::Configuration;

/// An objective measurable at reduced fidelity.
///
/// `fidelity` is in `(0, 1]`: 1 is the full problem, smaller values are
/// proportionally cheaper, noisier, and only *correlated* with the full
/// objective (low-fidelity rank inversions are what makes this family of
/// techniques interesting).
pub trait MultiFidelityObjective {
    /// Measures `cfg` at the given fidelity.
    fn evaluate_at(&mut self, cfg: &Configuration, fidelity: f64) -> f64;

    /// Total cost spent so far, in full-evaluation equivalents.
    fn cost_spent(&self) -> f64;
}

/// Adapts a full-fidelity [`Objective`](crate::Objective) by simply
/// charging fractional cost while always running at full fidelity — the
/// degenerate control case (no fidelity signal, only cost accounting).
pub struct FullFidelityAdapter<'a> {
    inner: &'a mut dyn crate::Objective,
    cost: f64,
}

impl<'a> FullFidelityAdapter<'a> {
    /// Wraps a plain objective.
    pub fn new(inner: &'a mut dyn crate::Objective) -> Self {
        FullFidelityAdapter { inner, cost: 0.0 }
    }
}

impl MultiFidelityObjective for FullFidelityAdapter<'_> {
    fn evaluate_at(&mut self, cfg: &Configuration, fidelity: f64) -> f64 {
        assert!(
            fidelity > 0.0 && fidelity <= 1.0,
            "fidelity must be in (0,1]"
        );
        self.cost += fidelity;
        self.inner.evaluate(cfg)
    }

    fn cost_spent(&self) -> f64 {
        self.cost
    }
}

/// The successive-halving bracket geometry used by HyperBand.
///
/// With elimination factor `eta` and a maximum of `s_max + 1` rungs, the
/// bracket indexed `s` starts `n(s)` configurations at fidelity `r(s)`
/// and keeps the best `1/eta` fraction at each rung.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BracketGeometry {
    /// Elimination factor (HyperBand default 3).
    pub eta: f64,
    /// Minimum fidelity of the cheapest rung.
    pub min_fidelity: f64,
}

impl BracketGeometry {
    /// The standard geometry: `eta = 3`, cheapest rung at 1/27 fidelity.
    pub fn standard() -> Self {
        BracketGeometry {
            eta: 3.0,
            min_fidelity: 1.0 / 27.0,
        }
    }

    /// `s_max`: number of halving rounds the fidelity range supports.
    pub fn s_max(&self) -> usize {
        ((1.0 / self.min_fidelity).ln() / self.eta.ln()).floor() as usize
    }

    /// The rung fidelities of bracket `s` (ascending), ending at 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `s > s_max()`.
    pub fn rung_fidelities(&self, s: usize) -> Vec<f64> {
        assert!(
            s <= self.s_max(),
            "bracket {s} exceeds s_max {}",
            self.s_max()
        );
        (0..=s)
            .map(|i| self.eta.powi(i as i32 - s as i32))
            .collect()
    }

    /// Number of configurations bracket `s` starts with, scaled so each
    /// bracket costs roughly `budget_units` full evaluations.
    pub fn initial_population(&self, s: usize, budget_units: f64) -> usize {
        // Cost of one bracket with n starters:
        //   sum_i (n / eta^i rounded) * eta^(i - s)  ~= n * (s + 1) * eta^-s
        let per_config: f64 = (0..=s)
            .map(|i| self.eta.powi(-(i as i32)) * self.eta.powi(i as i32 - s as i32))
            .sum();
        ((budget_units / per_config).floor() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_charges_fractional_cost() {
        let mut calls = 0;
        let mut obj = |_: &Configuration| {
            calls += 1;
            1.0
        };
        let mut mf = FullFidelityAdapter::new(&mut obj);
        let c = Configuration::from([1]);
        mf.evaluate_at(&c, 0.25);
        mf.evaluate_at(&c, 1.0);
        let spent = mf.cost_spent();
        assert!((spent - 1.25).abs() < 1e-12);
        assert_eq!(calls, 2);
    }

    #[test]
    #[should_panic(expected = "fidelity must be")]
    fn adapter_rejects_bad_fidelity() {
        let mut obj = |_: &Configuration| 1.0;
        let mut mf = FullFidelityAdapter::new(&mut obj);
        mf.evaluate_at(&Configuration::from([1]), 0.0);
    }

    #[test]
    fn standard_geometry_has_three_halvings() {
        let g = BracketGeometry::standard();
        assert_eq!(g.s_max(), 3); // 27 = 3^3
    }

    #[test]
    fn rungs_ascend_to_full_fidelity() {
        let g = BracketGeometry::standard();
        let rungs = g.rung_fidelities(3);
        assert_eq!(rungs.len(), 4);
        assert!((rungs[0] - 1.0 / 27.0).abs() < 1e-12);
        assert!((rungs[3] - 1.0).abs() < 1e-12);
        assert!(rungs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn bracket_zero_is_full_fidelity_only() {
        let g = BracketGeometry::standard();
        assert_eq!(g.rung_fidelities(0), vec![1.0]);
    }

    #[test]
    fn population_scales_with_budget() {
        let g = BracketGeometry::standard();
        let small = g.initial_population(3, 10.0);
        let large = g.initial_population(3, 100.0);
        assert!(large > small);
        assert!(small >= 1);
    }
}
