//! The tuner harness: common context, budget accounting, result type.

use crate::history::{Evaluation, History};
use crate::objective::Objective;
use crate::prior::PriorHistory;
use crate::trace::{self, TraceRecord, TraceSink, NULL_SINK};
use autotune_space::{sample, Configuration, Constraint, ParamSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Everything a tuning run is given besides the objective.
#[derive(Clone, Copy)]
pub struct TuneContext<'a> {
    /// The search space.
    pub space: &'a ParamSpace,
    /// Optional a-priori feasibility constraint. Per the paper's design,
    /// the harness passes this to the non-SMBO methods only.
    pub constraint: Option<&'a dyn Constraint>,
    /// Exact number of objective evaluations the tuner may spend (the
    /// paper's *sample size*).
    pub budget: usize,
    /// RNG seed for the run; equal seeds give identical runs.
    pub seed: u64,
    /// Search-trace sink; [`trace::NullSink`] (free — see the
    /// [`TraceSink`] overhead contract) unless installed via
    /// [`TuneContext::with_trace`]. Purely observational: the sink never
    /// influences which configurations a run visits.
    pub trace: &'a dyn TraceSink,
    /// Prior-evaluation seed history for warm starts, installed via
    /// [`TuneContext::with_prior`]. The surrogate tuners fold these
    /// points into their initial design without spending budget; absent
    /// (the default), every tuner runs its unchanged cold path.
    pub prior: Option<&'a PriorHistory>,
    /// Preferred measurement batch width. At the default of 1 every
    /// tuner runs its unchanged sequential path; above 1, tuners that
    /// support batching group up to `batch` proposals into a single
    /// [`Recorder::measure_batch`] call so the objective (a remote
    /// evaluator fleet, in the service layer) can run them concurrently.
    /// Inherently sequential tuners ignore the hint.
    pub batch: usize,
}

impl<'a> TuneContext<'a> {
    /// Context without a constraint (what the SMBO methods get).
    pub fn new(space: &'a ParamSpace, budget: usize, seed: u64) -> Self {
        TuneContext {
            space,
            constraint: None,
            budget,
            seed,
            trace: &NULL_SINK,
            prior: None,
            batch: 1,
        }
    }

    /// Adds the a-priori constraint (what the non-SMBO methods get).
    pub fn with_constraint(mut self, c: &'a dyn Constraint) -> Self {
        self.constraint = Some(c);
        self
    }

    /// Installs a search-trace sink for the run.
    pub fn with_trace(mut self, sink: &'a dyn TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Installs a prior-evaluation seed history, warm-starting the
    /// surrogate-based tuners. An empty prior is treated as no prior.
    pub fn with_prior(mut self, prior: &'a PriorHistory) -> Self {
        self.prior = (!prior.is_empty()).then_some(prior);
        self
    }

    /// Sets the preferred measurement batch width (min 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The installed non-empty prior, if any — the hook the tuners
    /// branch on.
    pub fn seed_prior(&self) -> Option<&'a PriorHistory> {
        self.prior.filter(|p| !p.is_empty())
    }

    /// Draws one random configuration honouring the constraint if present.
    pub fn sample_config<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        match self.constraint {
            Some(c) => sample::constrained(self.space, c, rng),
            None => sample::uniform(self.space, rng),
        }
    }

    /// `true` when `cfg` satisfies the context's constraint (vacuously
    /// true without one).
    pub fn admits(&self, cfg: &Configuration) -> bool {
        self.constraint.is_none_or(|c| c.is_satisfied(cfg))
    }
}

impl std::fmt::Debug for TuneContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuneContext")
            .field("budget", &self.budget)
            .field("seed", &self.seed)
            .field("constrained", &self.constraint.is_some())
            .field("traced", &self.trace.is_enabled())
            .field("prior_points", &self.prior.map_or(0, |p| p.len()))
            .field("batch", &self.batch)
            .finish()
    }
}

/// Owned counterpart of [`TuneContext`] for long-lived tuning sessions.
///
/// [`TuneContext`] borrows its space and constraint, which suits the
/// closed-loop `tune(&ctx, &mut objective)` call but not a session that
/// outlives the caller's stack frame (the service layer runs tuners on
/// dedicated threads). `OwnedTuneSetup` owns both and lends out a
/// [`TuneContext`] on demand.
#[derive(Debug)]
pub struct OwnedTuneSetup {
    space: ParamSpace,
    constraint: Option<Box<dyn Constraint>>,
    budget: usize,
    seed: u64,
    prior: Option<PriorHistory>,
    batch: usize,
}

impl OwnedTuneSetup {
    /// Setup without a constraint (what the SMBO methods get).
    pub fn new(space: ParamSpace, budget: usize, seed: u64) -> Self {
        OwnedTuneSetup {
            space,
            constraint: None,
            budget,
            seed,
            prior: None,
            batch: 1,
        }
    }

    /// Adds the a-priori constraint (what the non-SMBO methods get).
    pub fn with_constraint(mut self, constraint: Box<dyn Constraint>) -> Self {
        self.constraint = Some(constraint);
        self
    }

    /// Attaches a prior-evaluation seed history for warm starts. An
    /// empty prior is dropped (equivalent to the cold path).
    pub fn with_prior(mut self, prior: PriorHistory) -> Self {
        self.prior = (!prior.is_empty()).then_some(prior);
        self
    }

    /// Sets the preferred measurement batch width (min 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The preferred measurement batch width.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The owned search space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// The evaluation budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The run's RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when a constraint specification is attached.
    pub fn constrained(&self) -> bool {
        self.constraint.is_some()
    }

    /// The attached prior seed history, if any.
    pub fn prior(&self) -> Option<&PriorHistory> {
        self.prior.as_ref()
    }

    /// Lends out a borrowed [`TuneContext`] over the owned space,
    /// constraint, and prior.
    pub fn context(&self) -> TuneContext<'_> {
        let mut ctx = TuneContext::new(&self.space, self.budget, self.seed).with_batch(self.batch);
        if let Some(c) = &self.constraint {
            ctx.constraint = Some(c.as_ref());
        }
        if let Some(p) = &self.prior {
            ctx = ctx.with_prior(p);
        }
        ctx
    }
}

/// Outcome of one tuning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneResult {
    /// The best evaluation observed (by measured cost).
    pub best: Evaluation,
    /// Every budget-consuming measurement, in order.
    pub history: History,
}

/// A search technique.
pub trait Tuner: Send + Sync {
    /// Name as used in the paper's figures ("RS", "BO GP", …).
    fn name(&self) -> &'static str;

    /// Runs the search, spending exactly `ctx.budget` objective
    /// evaluations (tuners may stop early only if the space is exhausted).
    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult;
}

/// Budget-enforcing measurement recorder shared by all tuner
/// implementations: every call to [`Recorder::measure`] spends one unit
/// of budget and is logged — and, when the context carries a live
/// trace sink, emitted as an `objective` span plus a `trial` event.
pub struct Recorder<'a, 'o> {
    objective: &'o mut dyn Objective,
    history: History,
    budget: usize,
    trace: &'a dyn TraceSink,
}

impl<'a, 'o> Recorder<'a, 'o> {
    /// Creates a recorder for `ctx.budget` evaluations.
    pub fn new(ctx: &TuneContext<'a>, objective: &'o mut dyn Objective) -> Self {
        assert!(ctx.budget > 0, "tuning budget must be positive");
        Recorder {
            objective,
            history: History::new(),
            budget: ctx.budget,
            trace: ctx.trace,
        }
    }

    /// Evaluations still allowed.
    pub fn remaining(&self) -> usize {
        self.budget - self.history.len()
    }

    /// Evaluations already spent.
    pub fn spent(&self) -> usize {
        self.history.len()
    }

    /// Measures `cfg`, spending one budget unit.
    ///
    /// # Panics
    ///
    /// Panics when the budget is already exhausted — a tuner bug.
    pub fn measure(&mut self, cfg: &Configuration) -> f64 {
        assert!(self.remaining() > 0, "tuner exceeded its sample budget");
        let v = if self.trace.is_enabled() {
            let guard = trace::span(self.trace, "objective");
            let v = self.objective.evaluate(cfg);
            guard.end();
            v
        } else {
            self.objective.evaluate(cfg)
        };
        let index = self.history.len();
        self.history.push(cfg.clone(), v);
        if self.trace.is_enabled() {
            let best = self.history.best().map(|e| e.value).unwrap_or(v);
            self.trace.emit(TraceRecord::Trial {
                index,
                config: cfg.values().to_vec(),
                cost: v,
                best,
            });
        }
        v
    }

    /// Measures a batch of configurations, spending one budget unit per
    /// configuration and returning their costs in order.
    ///
    /// A one-element batch delegates to [`Recorder::measure`], so the
    /// trace shape (one `objective` span per trial) is identical to the
    /// sequential path. Larger batches wrap the whole
    /// [`Objective::evaluate_batch`] call in a single `objective` span
    /// and then log one trial event per configuration.
    ///
    /// # Panics
    ///
    /// Panics when the batch exceeds the remaining budget — a tuner bug.
    pub fn measure_batch(&mut self, cfgs: &[Configuration]) -> Vec<f64> {
        match cfgs {
            [] => Vec::new(),
            [cfg] => vec![self.measure(cfg)],
            _ => {
                assert!(
                    self.remaining() >= cfgs.len(),
                    "tuner exceeded its sample budget"
                );
                let values = if self.trace.is_enabled() {
                    let guard = trace::span(self.trace, "objective");
                    let values = self.objective.evaluate_batch(cfgs);
                    guard.end();
                    values
                } else {
                    self.objective.evaluate_batch(cfgs)
                };
                assert_eq!(values.len(), cfgs.len(), "objective returned a short batch");
                for (cfg, &v) in cfgs.iter().zip(&values) {
                    let index = self.history.len();
                    self.history.push(cfg.clone(), v);
                    if self.trace.is_enabled() {
                        let best = self.history.best().map(|e| e.value).unwrap_or(v);
                        self.trace.emit(TraceRecord::Trial {
                            index,
                            config: cfg.values().to_vec(),
                            cost: v,
                            best,
                        });
                    }
                }
                values
            }
        }
    }

    /// Current best observation, if any.
    pub fn best(&self) -> Option<&Evaluation> {
        self.history.best()
    }

    /// Read access to the log so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Finalizes the run.
    ///
    /// # Panics
    ///
    /// Panics if nothing was measured.
    pub fn finish(self) -> TuneResult {
        let best = self
            .history
            .best()
            .expect("a tuning run must measure at least one configuration")
            .clone();
        TuneResult {
            best,
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::{imagecl, Param};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_space() -> ParamSpace {
        ParamSpace::new(vec![Param::new("a", 1, 8), Param::new("b", 1, 8)])
    }

    #[test]
    fn recorder_enforces_budget() {
        let space = toy_space();
        let ctx = TuneContext::new(&space, 3, 0);
        let mut obj = |_: &Configuration| 1.0;
        let mut rec = Recorder::new(&ctx, &mut obj);
        let c = Configuration::from([1, 1]);
        assert_eq!(rec.remaining(), 3);
        rec.measure(&c);
        rec.measure(&c);
        rec.measure(&c);
        assert_eq!(rec.remaining(), 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rec.measure(&c);
        }));
        assert!(result.is_err(), "over-budget measure must panic");
    }

    #[test]
    fn recorder_tracks_best() {
        let space = toy_space();
        let ctx = TuneContext::new(&space, 10, 0);
        let mut obj = |cfg: &Configuration| cfg.values()[0] as f64;
        let mut rec = Recorder::new(&ctx, &mut obj);
        rec.measure(&Configuration::from([5, 1]));
        rec.measure(&Configuration::from([2, 1]));
        rec.measure(&Configuration::from([7, 1]));
        assert_eq!(rec.best().unwrap().value, 2.0);
        let result = rec.finish();
        assert_eq!(result.best.config, Configuration::from([2, 1]));
        assert_eq!(result.history.len(), 3);
    }

    #[test]
    fn context_sampling_honours_constraint() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 1, 0).with_constraint(&cons);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(ctx.admits(&ctx.sample_config(&mut rng)));
        }
    }

    #[test]
    fn unconstrained_context_admits_everything() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 1, 0);
        assert!(ctx.admits(&Configuration::from([16, 16, 16, 8, 8, 8])));
    }

    #[test]
    fn owned_setup_lends_equivalent_context() {
        let setup = OwnedTuneSetup::new(imagecl::space(), 25, 9)
            .with_constraint(Box::new(imagecl::constraint()));
        assert!(setup.constrained());
        assert_eq!(setup.budget(), 25);
        assert_eq!(setup.seed(), 9);
        let ctx = setup.context();
        assert_eq!(ctx.budget, 25);
        assert_eq!(ctx.seed, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..50 {
            assert!(ctx.admits(&ctx.sample_config(&mut rng)));
        }
        // The owned setup samples exactly like a borrowed context built
        // from the same pieces and seed.
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let borrowed = TuneContext::new(&space, 25, 9).with_constraint(&cons);
        let mut r1 = ChaCha8Rng::seed_from_u64(4);
        let mut r2 = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            assert_eq!(
                setup.context().sample_config(&mut r1),
                borrowed.sample_config(&mut r2)
            );
        }
    }

    #[test]
    fn prior_wiring_reaches_the_context() {
        let space = toy_space();
        let mut prior = PriorHistory::new();
        prior.push(Configuration::from([2, 3]), 1.5, 1.0);
        let ctx = TuneContext::new(&space, 5, 0).with_prior(&prior);
        assert_eq!(ctx.seed_prior().unwrap().len(), 1);

        // Empty priors are dropped — the context stays cold.
        let empty = PriorHistory::new();
        let cold = TuneContext::new(&space, 5, 0).with_prior(&empty);
        assert!(cold.seed_prior().is_none());

        let setup = OwnedTuneSetup::new(toy_space(), 5, 0).with_prior(prior.clone());
        assert_eq!(setup.prior().unwrap(), &prior);
        assert_eq!(setup.context().seed_prior().unwrap().len(), 1);
        let cold_setup = OwnedTuneSetup::new(toy_space(), 5, 0).with_prior(PriorHistory::new());
        assert!(cold_setup.prior().is_none());
    }

    #[test]
    fn measure_batch_spends_budget_per_item_and_keeps_order() {
        let space = toy_space();
        let ctx = TuneContext::new(&space, 5, 0);
        let mut obj = |cfg: &Configuration| cfg.values()[0] as f64;
        let mut rec = Recorder::new(&ctx, &mut obj);
        let batch = [
            Configuration::from([5, 1]),
            Configuration::from([2, 1]),
            Configuration::from([7, 1]),
        ];
        let values = rec.measure_batch(&batch);
        assert_eq!(values, vec![5.0, 2.0, 7.0]);
        assert_eq!(rec.remaining(), 2);
        assert_eq!(rec.best().unwrap().value, 2.0);
        assert_eq!(rec.measure_batch(&[]), Vec::<f64>::new());
        assert_eq!(rec.remaining(), 2);
        let over = [
            Configuration::from([1, 1]),
            Configuration::from([1, 2]),
            Configuration::from([1, 3]),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rec.measure_batch(&over);
        }));
        assert!(result.is_err(), "over-budget batch must panic");
    }

    #[test]
    fn batch_width_defaults_to_one_and_floors_at_one() {
        let space = toy_space();
        assert_eq!(TuneContext::new(&space, 5, 0).batch, 1);
        assert_eq!(TuneContext::new(&space, 5, 0).with_batch(0).batch, 1);
        assert_eq!(TuneContext::new(&space, 5, 0).with_batch(8).batch, 8);
        let setup = OwnedTuneSetup::new(toy_space(), 5, 0).with_batch(4);
        assert_eq!(setup.batch(), 4);
        assert_eq!(setup.context().batch, 4);
        assert_eq!(OwnedTuneSetup::new(toy_space(), 5, 0).batch(), 1);
    }

    #[test]
    fn tune_result_serde_round_trips() {
        let mut history = History::new();
        history.push(Configuration::from([2, 3]), 1.5);
        history.push(Configuration::from([1, 1]), 0.5);
        let result = TuneResult {
            best: history.best().unwrap().clone(),
            history,
        };
        let json = serde_json::to_string(&result).unwrap();
        let back: TuneResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.best, result.best);
        assert_eq!(back.history.evaluations(), result.history.evaluations());
    }

    #[test]
    fn recorder_emits_objective_spans_and_trial_events() {
        let space = toy_space();
        let sink = crate::trace::VecSink::new();
        let ctx = TuneContext::new(&space, 3, 0).with_trace(&sink);
        let mut obj = |cfg: &Configuration| cfg.values()[0] as f64;
        let mut rec = Recorder::new(&ctx, &mut obj);
        rec.measure(&Configuration::from([5, 1]));
        rec.measure(&Configuration::from([2, 1]));
        rec.measure(&Configuration::from([7, 1]));
        let events = sink.events();
        // Per measurement: objective SpanBegin/SpanEnd + one Trial.
        assert_eq!(events.len(), 9);
        assert_eq!(crate::trace::trial_count(&events), 3);
        let trials: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.record {
                TraceRecord::Trial {
                    index, cost, best, ..
                } => Some((*index, *cost, *best)),
                _ => None,
            })
            .collect();
        assert_eq!(trials, vec![(0, 5.0, 5.0), (1, 2.0, 2.0), (2, 7.0, 2.0)]);
        let durations = crate::trace::phase_durations(&events);
        assert_eq!(durations["objective"].count, 3);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let space = toy_space();
        let ctx = TuneContext::new(&space, 0, 0);
        let mut obj = |_: &Configuration| 1.0;
        let _ = Recorder::new(&ctx, &mut obj);
    }
}
