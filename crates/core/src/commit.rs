//! Group commit: many writers, one fsync.
//!
//! A [`GroupCommitter`] owns a single background committer thread and
//! any number of registered append-only files. Writers enqueue byte
//! payloads and block; the committer drains the queue in arrival order,
//! waits out a bounded *flush window* so concurrent writers pile into
//! the same batch, writes everything, and issues **one** `sync_data`
//! per dirty [`Durability::Sync`] file for the whole batch. Every
//! waiter in the batch is then released at once.
//!
//! The payoff is durable-write throughput: with N sessions appending
//! concurrently, fsync-per-append pays N disk flushes where a group
//! commit pays one. The cost is bounded added latency (the flush
//! window) on an otherwise idle writer.
//!
//! Ordering guarantee: operations are applied in *ticket* order, and
//! tickets are assigned under the same lock that enqueues, so the
//! on-disk order equals the enqueue order. Callers that need
//! cross-writer ordering (e.g. a WAL snapshotting state and appending
//! a checkpoint atomically) can [`WriterHandle::enqueue`] under their
//! own lock — enqueueing never blocks on I/O — and
//! [`WriterHandle::wait`] outside it.
//!
//! The module is `std`-only so both the service's write-ahead log and
//! the knowledge-base store can ride the same committer.

use crate::trace::Durability;
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// What one committed batch looked like, handed to the batch observer
/// installed with [`GroupCommitter::set_batch_observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Payload writes committed in this batch (registrations, swaps,
    /// and explicit syncs are not counted).
    pub records: usize,
    /// `sync_data` calls this batch issued across all dirty files.
    pub fsyncs: usize,
}

/// Lifetime counters of one [`GroupCommitter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitterStats {
    /// Payload writes committed.
    pub appends: u64,
    /// Batches processed (each released all of its waiters at once).
    pub batches: u64,
    /// `sync_data` calls issued.
    pub fsyncs: u64,
}

/// A write ticket: completion token for one enqueued operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(u64);

/// One queued operation. The queue is strictly ticket-ordered because
/// tickets are assigned under the queue lock.
enum Op {
    /// Adopt a file under `id`. Processed in order, so writes enqueued
    /// after a registration always find their file.
    Register {
        id: u64,
        file: File,
        durability: Durability,
    },
    /// Append `bytes` to file `id`.
    Write {
        id: u64,
        bytes: Vec<u8>,
        ticket: u64,
    },
    /// Replace file `id` with `new_file` (segment rotation). The old
    /// file is synced first when `sync_old` — a sealed WAL segment
    /// must be durable before appends move past it.
    Swap {
        id: u64,
        new_file: File,
        sync_old: bool,
        ticket: u64,
    },
    /// Barrier: force a `sync_data` of file `id` at the end of this
    /// batch regardless of durability mode (compaction uses this
    /// before deleting superseded segments).
    Sync { id: u64, ticket: u64 },
}

struct QueueState {
    queue: Vec<Op>,
    next_ticket: u64,
    next_file_id: u64,
    /// Highest ticket whose batch has fully committed.
    completed: u64,
    /// Tickets that failed, with the reason; drained by their waiter.
    failed: HashMap<u64, String>,
    stop: bool,
}

type BatchObserver = Box<dyn Fn(BatchOutcome) + Send + Sync>;

struct Inner {
    state: Mutex<QueueState>,
    /// Signaled when work arrives or stop is requested.
    work: Condvar,
    /// Signaled when a batch completes.
    done: Condvar,
    flush_window: Duration,
    observer: Mutex<Option<BatchObserver>>,
    appends: AtomicU64,
    batches: AtomicU64,
    fsyncs: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Inner {
    /// Assigns a ticket and enqueues under one lock acquisition, so
    /// ticket order == queue order == on-disk order.
    fn enqueue(&self, build: impl FnOnce(u64) -> Op) -> io::Result<Ticket> {
        let mut state = lock(&self.state);
        if state.stop {
            return Err(io::Error::other("group committer stopped"));
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        let op = build(ticket);
        state.queue.push(op);
        self.work.notify_one();
        Ok(Ticket(ticket))
    }

    fn wait(&self, ticket: Ticket) -> io::Result<()> {
        let mut state = lock(&self.state);
        while state.completed < ticket.0 {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        match state.failed.remove(&ticket.0) {
            Some(reason) => Err(io::Error::other(reason)),
            None => Ok(()),
        }
    }
}

/// A registered file's append channel into the committer. Cloneable;
/// clones share the same underlying file.
#[derive(Clone)]
pub struct WriterHandle {
    inner: Arc<Inner>,
    id: u64,
}

impl fmt::Debug for WriterHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriterHandle")
            .field("id", &self.id)
            .finish()
    }
}

impl WriterHandle {
    /// Enqueues an append without waiting. Never blocks on I/O, so it
    /// is safe to call under a caller-side lock that must order
    /// writes. Pair with [`WriterHandle::wait`].
    pub fn enqueue(&self, bytes: &[u8]) -> io::Result<Ticket> {
        self.inner.enqueue(|ticket| Op::Write {
            id: self.id,
            bytes: bytes.to_vec(),
            ticket,
        })
    }

    /// Blocks until the batch containing `ticket` has been written
    /// (and, for a [`Durability::Sync`] file, synced to disk).
    pub fn wait(&self, ticket: Ticket) -> io::Result<()> {
        self.inner.wait(ticket)
    }

    /// Appends `bytes` and blocks until the containing batch commits:
    /// [`enqueue`](Self::enqueue) + [`wait`](Self::wait).
    pub fn append(&self, bytes: &[u8]) -> io::Result<()> {
        let ticket = self.enqueue(bytes)?;
        self.wait(ticket)
    }

    /// Enqueues a file swap (segment rotation) without waiting. Writes
    /// enqueued before the swap land in the old file, writes after in
    /// the new one. When `sync_old`, the outgoing file is synced
    /// before being released.
    pub fn enqueue_swap(&self, new_file: File, sync_old: bool) -> io::Result<Ticket> {
        self.inner.enqueue(|ticket| Op::Swap {
            id: self.id,
            new_file,
            sync_old,
            ticket,
        })
    }

    /// Barrier: blocks until everything enqueued so far for this file
    /// is written *and* `sync_data`'d, regardless of durability mode.
    pub fn sync(&self) -> io::Result<()> {
        let ticket = self.inner.enqueue(|ticket| Op::Sync {
            id: self.id,
            ticket,
        })?;
        self.inner.wait(ticket)
    }
}

/// The shared committer: one background thread batching appends from
/// any number of registered files into group commits.
pub struct GroupCommitter {
    inner: Arc<Inner>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupCommitter")
            .field("stats", &self.stats())
            .finish()
    }
}

impl GroupCommitter {
    /// Starts a committer whose batches wait out `flush_window` after
    /// the first arrival so concurrent writers can join. A zero window
    /// commits each drain immediately (useful for deterministic
    /// tests); production WALs want a few hundred microseconds.
    pub fn spawn(flush_window: Duration) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: Vec::new(),
                next_ticket: 1,
                next_file_id: 1,
                completed: 0,
                failed: HashMap::new(),
                stop: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            flush_window,
            observer: Mutex::new(None),
            appends: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        });
        let thread_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("group-commit".into())
            .spawn(move || run_committer(&thread_inner))
            .expect("spawn group-commit thread");
        GroupCommitter {
            inner,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Adopts `file` (append-positioned) into the committer and
    /// returns its write handle. `durability` decides whether batches
    /// touching this file end in a `sync_data`.
    pub fn register(&self, file: File, durability: Durability) -> WriterHandle {
        let id = {
            let mut state = lock(&self.inner.state);
            let id = state.next_file_id;
            state.next_file_id += 1;
            state.queue.push(Op::Register {
                id,
                file,
                durability,
            });
            self.inner.work.notify_one();
            id
        };
        WriterHandle {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// Installs (replacing) the per-batch observer, called after every
    /// committed batch with its size and fsync count. Lets a metrics
    /// layer histogram group-commit batch sizes without this module
    /// depending on it.
    pub fn set_batch_observer(&self, observer: impl Fn(BatchOutcome) + Send + Sync + 'static) {
        *lock(&self.inner.observer) = Some(Box::new(observer));
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CommitterStats {
        CommitterStats {
            appends: self.inner.appends.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.inner.state);
            state.stop = true;
            self.inner.work.notify_all();
        }
        if let Some(thread) = lock(&self.thread).take() {
            let _ = thread.join();
        }
    }
}

struct FileEntry {
    file: File,
    durability: Durability,
}

/// The committer thread: drain, linger, write, one fsync per dirty
/// file, release.
fn run_committer(inner: &Inner) {
    // Files live on this thread only; writers never touch them.
    let mut files: HashMap<u64, FileEntry> = HashMap::new();
    loop {
        let mut ops = {
            let mut state = lock(&inner.state);
            while state.queue.is_empty() {
                if state.stop {
                    return;
                }
                state = inner
                    .work
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            std::mem::take(&mut state.queue)
        };
        // The bounded flush window: concurrent writers blocked on this
        // batch's fsync would otherwise each pay their own; a short
        // linger folds them into it. Late arrivals keep ticket order
        // because both drains took the queue in push order.
        if !inner.flush_window.is_zero() {
            std::thread::sleep(inner.flush_window);
            let mut state = lock(&inner.state);
            ops.append(&mut state.queue);
        }
        commit_batch(inner, &mut files, ops);
    }
}

fn commit_batch(inner: &Inner, files: &mut HashMap<u64, FileEntry>, ops: Vec<Op>) {
    let mut failed: Vec<(u64, String)> = Vec::new();
    // Per-file: (wants end-of-batch sync, tickets that depend on it).
    let mut pending_sync: HashMap<u64, (bool, Vec<u64>)> = HashMap::new();
    let mut last_ticket = 0u64;
    let mut records = 0usize;
    let mut fsyncs = 0usize;
    for op in ops {
        match op {
            Op::Register {
                id,
                file,
                durability,
            } => {
                files.insert(id, FileEntry { file, durability });
            }
            Op::Write { id, bytes, ticket } => {
                last_ticket = ticket;
                match files.get_mut(&id) {
                    Some(entry) => match entry.file.write_all(&bytes) {
                        Ok(()) => {
                            records += 1;
                            if entry.durability == Durability::Sync {
                                let slot = pending_sync.entry(id).or_default();
                                slot.0 = true;
                                slot.1.push(ticket);
                            }
                        }
                        Err(e) => failed.push((ticket, e.to_string())),
                    },
                    None => failed.push((ticket, format!("file {id} not registered"))),
                }
            }
            Op::Swap {
                id,
                new_file,
                sync_old,
                ticket,
            } => {
                last_ticket = ticket;
                match files.get_mut(&id) {
                    Some(entry) => {
                        // Settle the outgoing file before letting go of
                        // it: sync now if requested or if earlier writes
                        // in this batch were promised a sync.
                        let (wants, waiters) = pending_sync.remove(&id).unwrap_or_default();
                        if sync_old || wants {
                            fsyncs += 1;
                            if let Err(e) = entry.file.sync_data() {
                                for t in waiters {
                                    failed.push((t, e.to_string()));
                                }
                                failed.push((ticket, e.to_string()));
                            }
                        }
                        entry.file = new_file;
                    }
                    None => failed.push((ticket, format!("file {id} not registered"))),
                }
            }
            Op::Sync { id, ticket } => {
                last_ticket = ticket;
                match files.get(&id) {
                    Some(_) => {
                        let slot = pending_sync.entry(id).or_default();
                        slot.0 = true;
                        slot.1.push(ticket);
                    }
                    None => failed.push((ticket, format!("file {id} not registered"))),
                }
            }
        }
    }
    for (id, (wants, waiters)) in pending_sync {
        if !wants {
            continue;
        }
        let Some(entry) = files.get(&id) else {
            continue;
        };
        fsyncs += 1;
        if let Err(e) = entry.file.sync_data() {
            for t in waiters {
                failed.push((t, e.to_string()));
            }
        }
    }
    inner.appends.fetch_add(records as u64, Ordering::Relaxed);
    inner.batches.fetch_add(1, Ordering::Relaxed);
    inner.fsyncs.fetch_add(fsyncs as u64, Ordering::Relaxed);
    {
        let mut state = lock(&inner.state);
        state.completed = state.completed.max(last_ticket);
        for (ticket, reason) in failed {
            state.failed.insert(ticket, reason);
        }
        inner.done.notify_all();
    }
    if records > 0 || fsyncs > 0 {
        if let Some(observer) = lock(&inner.observer).as_ref() {
            observer(BatchOutcome { records, fsyncs });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn temp_file(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "autotune-commit-test-{}-{tag}-{n}.bin",
            std::process::id()
        ))
    }

    fn create(path: &PathBuf) -> File {
        File::create(path).unwrap()
    }

    #[test]
    fn appends_land_in_order() {
        let path = temp_file("order");
        let committer = GroupCommitter::spawn(Duration::ZERO);
        let handle = committer.register(create(&path), Durability::Sync);
        for i in 0..10u8 {
            handle.append(&[i]).unwrap();
        }
        drop(committer);
        assert_eq!(std::fs::read(&path).unwrap(), (0..10u8).collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_writers_batch_into_fewer_fsyncs() {
        let path = temp_file("batch");
        let committer = Arc::new(GroupCommitter::spawn(Duration::from_millis(5)));
        let handle = committer.register(create(&path), Durability::Sync);
        let observed = Arc::new(AtomicU64::new(0));
        {
            let observed = Arc::clone(&observed);
            committer.set_batch_observer(move |batch| {
                observed.fetch_add(batch.records as u64, Ordering::Relaxed);
            });
        }
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let handle = handle.clone();
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        handle.append(&[i]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = committer.stats();
        assert_eq!(stats.appends, 32);
        assert_eq!(observed.load(Ordering::Relaxed), 32);
        // 32 sync appends across 8 threads with a 5ms window must
        // coalesce: strictly fewer fsyncs than appends is the whole
        // point of group commit.
        assert!(
            stats.fsyncs < stats.appends,
            "fsyncs {} !< appends {}",
            stats.fsyncs,
            stats.appends
        );
        drop(committer);
        assert_eq!(std::fs::read(&path).unwrap().len(), 32);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn swap_routes_later_appends_to_the_new_file() {
        let old = temp_file("swap-old");
        let new = temp_file("swap-new");
        let committer = GroupCommitter::spawn(Duration::ZERO);
        let handle = committer.register(create(&old), Durability::Sync);
        handle.append(b"old").unwrap();
        handle.enqueue_swap(create(&new), true).unwrap();
        handle.append(b"new").unwrap();
        drop(committer);
        assert_eq!(std::fs::read(&old).unwrap(), b"old");
        assert_eq!(std::fs::read(&new).unwrap(), b"new");
        std::fs::remove_file(&old).unwrap();
        std::fs::remove_file(&new).unwrap();
    }

    #[test]
    fn buffered_files_commit_without_fsync_and_sync_is_a_barrier() {
        let path = temp_file("buffered");
        let committer = GroupCommitter::spawn(Duration::ZERO);
        let handle = committer.register(create(&path), Durability::Buffered);
        handle.append(b"ab").unwrap();
        assert_eq!(committer.stats().fsyncs, 0);
        handle.sync().unwrap();
        assert_eq!(committer.stats().fsyncs, 1);
        drop(committer);
        assert_eq!(std::fs::read(&path).unwrap(), b"ab");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stopped_committer_rejects_new_work() {
        let path = temp_file("stopped");
        let committer = GroupCommitter::spawn(Duration::ZERO);
        let handle = committer.register(create(&path), Durability::Sync);
        handle.append(b"x").unwrap();
        drop(committer);
        assert!(handle.append(b"y").is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enqueue_then_wait_matches_append() {
        let path = temp_file("split");
        let committer = GroupCommitter::spawn(Duration::ZERO);
        let handle = committer.register(create(&path), Durability::Sync);
        let t1 = handle.enqueue(b"1").unwrap();
        let t2 = handle.enqueue(b"2").unwrap();
        assert!(t1 < t2);
        handle.wait(t2).unwrap();
        handle.wait(t1).unwrap();
        drop(committer);
        assert_eq!(std::fs::read(&path).unwrap(), b"12");
        std::fs::remove_file(&path).unwrap();
    }
}
