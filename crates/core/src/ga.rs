//! Genetic Algorithm, patterned on the implementation van Werkhoven ships
//! with Kernel Tuner (the paper states its GA makes "only minor changes"
//! to that implementation):
//!
//! * population of 20 chromosomes (configurations);
//! * truncation selection — the better half become parents;
//! * uniform crossover — each gene from either parent with probability ½;
//! * per-gene mutation with low probability (10%), re-drawing the gene
//!   uniformly from its range;
//! * generational replacement with single-elite carry-over;
//! * measurement cache: revisiting a chromosome reuses its recorded
//!   fitness without spending budget (Kernel Tuner behaviour).

use crate::objective::CachedObjective;
use crate::trace;
use crate::tuner::{Recorder, TuneContext, TuneResult, Tuner};
use crate::Objective;
use autotune_space::{neighborhood, Configuration};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// GA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Fraction of the population retained as parents.
    pub parent_fraction: f64,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 20,
            mutation_rate: 0.1,
            parent_fraction: 0.5,
        }
    }
}

/// The GA technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneticAlgorithm {
    /// Hyperparameters.
    pub params: GaParams,
}

impl GeneticAlgorithm {
    /// Uniform crossover of two parents.
    fn crossover<R: Rng + ?Sized>(
        a: &Configuration,
        b: &Configuration,
        rng: &mut R,
    ) -> Configuration {
        let values = a
            .values()
            .iter()
            .zip(b.values())
            .map(|(&x, &y)| if rng.gen::<bool>() { x } else { y })
            .collect();
        Configuration::new(values)
    }
}

impl Tuner for GeneticAlgorithm {
    fn name(&self) -> &'static str {
        "GA"
    }

    fn tune(&self, ctx: &TuneContext<'_>, objective: &mut dyn Objective) -> TuneResult {
        let p = self.params;
        assert!(p.population >= 2, "GA needs a population of at least 2");
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed);
        let mut cached = CachedObjective::new(objective);
        let mut rec = Recorder::new(ctx, &mut cached);

        let pop_size = p.population.min(ctx.budget).max(1);

        // Initial population: random feasible chromosomes. A warm start
        // seeds the first slot with the prior incumbent (when the
        // constraint admits it) so good prior genes enter the pool
        // immediately; the rest of the population stays random.
        let mut population: Vec<(Configuration, f64)> = Vec::with_capacity(pop_size);
        if let Some(prior) = ctx.seed_prior() {
            let inc = prior.incumbent().expect("non-empty prior").config.clone();
            if ctx.admits(&inc) && rec.remaining() > 0 {
                trace::point(ctx.trace, "prior_seed", &[("points", 1.0)]);
                let y = rec.measure(&inc);
                population.push((inc, y));
            }
        }
        // Random init draws are value-independent, so chunking them into
        // `ctx.batch`-wide objective calls is bit-identical to the
        // sequential one-by-one walk.
        while population.len() < pop_size && rec.remaining() > 0 {
            let width = ctx
                .batch
                .max(1)
                .min(rec.remaining())
                .min(pop_size - population.len());
            let chunk: Vec<_> = (0..width).map(|_| ctx.sample_config(&mut rng)).collect();
            let ys = rec.measure_batch(&chunk);
            population.extend(chunk.into_iter().zip(ys));
        }
        trace::point(
            ctx.trace,
            "init_population",
            &[("size", population.len() as f64)],
        );

        let n_parents = ((pop_size as f64 * p.parent_fraction).round() as usize).max(2);
        let mut generation = 0usize;

        while rec.remaining() > 0 {
            let spent_before = rec.spent();
            let selection = trace::span(ctx.trace, "selection");
            population.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"));
            let parents: Vec<Configuration> = population
                .iter()
                .take(n_parents.min(population.len()))
                .map(|(c, _)| c.clone())
                .collect();

            // Elitism: best chromosome survives unchanged (no budget).
            let elite = population[0].clone();
            selection.end();
            // A whole generation's children depend only on the parents
            // and the RNG — never on each other's fitness — so their
            // measurements can be deferred into `ctx.batch`-wide
            // objective calls. Fitness slots stay `None` until the
            // generation's batches flush; the walk below is bit-identical
            // to the sequential path at every batch width (at width 1,
            // every miss flushes immediately).
            let mut next: Vec<(Configuration, Option<f64>)> = vec![(elite.0, Some(elite.1))];
            let mut queued: Vec<Configuration> = Vec::new();

            let offspring = trace::span(ctx.trace, "mutation");
            while next.len() < pop_size && rec.remaining() > queued.len() {
                let pa = parents.choose(&mut rng).expect("parents non-empty");
                let pb = parents.choose(&mut rng).expect("parents non-empty");
                let mut child = Self::crossover(pa, pb, &mut rng);
                for k in 0..child.len() {
                    if rng.gen::<f64>() < p.mutation_rate {
                        neighborhood::mutate_dimension(ctx.space, &mut child, k, &mut rng);
                    }
                }
                // Infeasible children are repaired by re-drawing the
                // work-group genes from a feasible sample (the constraint
                // specification is available to this non-SMBO method).
                if !ctx.admits(&child) {
                    child = ctx.sample_config(&mut rng);
                }
                // Cached chromosomes — measured in an earlier generation
                // or queued in the current batch — re-use their fitness
                // without budget.
                if queued.contains(&child) {
                    next.push((child, None));
                } else if let Some(e) = rec
                    .history()
                    .evaluations()
                    .iter()
                    .rev()
                    .find(|e| e.config == child)
                {
                    let y = e.value;
                    next.push((child, Some(y)));
                } else {
                    queued.push(child.clone());
                    next.push((child, None));
                    if queued.len() >= ctx.batch.max(1) {
                        rec.measure_batch(&queued);
                        queued.clear();
                    }
                }
            }
            rec.measure_batch(&queued);
            offspring.end();
            // Resolve deferred fitness from the now-complete history.
            let mut next: Vec<(Configuration, f64)> = next
                .into_iter()
                .map(|(cfg, y)| {
                    let y = y.unwrap_or_else(|| {
                        rec.history()
                            .evaluations()
                            .iter()
                            .rev()
                            .find(|e| e.config == cfg)
                            .expect("queued children were measured")
                            .value
                    });
                    (cfg, y)
                })
                .collect();
            // A fully-converged population can produce a generation of
            // cache hits; restart pressure keeps the budget draining
            // (Kernel Tuner applies random immigrants similarly).
            if rec.spent() == spent_before && rec.remaining() > 0 {
                let immigrant = ctx.sample_config(&mut rng);
                let y = rec.measure(&immigrant);
                next.push((immigrant, y));
            }
            population = next;
            if ctx.trace.is_enabled() {
                let gen_best = population
                    .iter()
                    .map(|(_, y)| *y)
                    .fold(f64::INFINITY, f64::min);
                trace::point(
                    ctx.trace,
                    "generation",
                    &[
                        ("index", generation as f64),
                        ("best", gen_best),
                        ("measured", (rec.spent() - spent_before) as f64),
                    ],
                );
            }
            generation += 1;
        }
        rec.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::imagecl;

    /// Separable objective with optimum at all-ones.
    fn smooth(cfg: &Configuration) -> f64 {
        cfg.values().iter().map(|&v| (v * v) as f64).sum::<f64>()
    }

    #[test]
    fn spends_exact_budget() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 100, 5);
        let mut obj = smooth;
        let r = GeneticAlgorithm::default().tune(&ctx, &mut obj);
        assert_eq!(r.history.len(), 100);
    }

    #[test]
    fn improves_over_its_initial_population() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 200, 3);
        let mut obj = smooth;
        let r = GeneticAlgorithm::default().tune(&ctx, &mut obj);
        let init_best = r.history.evaluations()[..20]
            .iter()
            .map(|e| e.value)
            .fold(f64::INFINITY, f64::min);
        assert!(
            r.best.value < init_best,
            "GA best {} should beat init {init_best}",
            r.best.value
        );
    }

    #[test]
    fn approaches_known_optimum_with_generous_budget() {
        // Optimum of `smooth` is (1,1,1,1,1,1) with value 6.
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 400, 1);
        let mut obj = smooth;
        let r = GeneticAlgorithm::default().tune(&ctx, &mut obj);
        assert!(r.best.value <= 30.0, "GA best {}", r.best.value);
    }

    #[test]
    fn crossover_mixes_parents_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Configuration::from([1, 1, 1, 1]);
        let b = Configuration::from([9, 9, 9, 9]);
        for _ in 0..20 {
            let c = GeneticAlgorithm::crossover(&a, &b, &mut rng);
            assert!(c.values().iter().all(|&v| v == 1 || v == 9));
        }
    }

    #[test]
    fn respects_constraint() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let ctx = TuneContext::new(&space, 120, 8).with_constraint(&cons);
        let mut obj = smooth;
        let r = GeneticAlgorithm::default().tune(&ctx, &mut obj);
        for e in r.history.evaluations() {
            assert!(ctx.admits(&e.config));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let space = imagecl::space();
        let mut obj = smooth;
        let t = GeneticAlgorithm::default();
        let a = t.tune(&TuneContext::new(&space, 60, 17), &mut obj);
        let b = t.tune(&TuneContext::new(&space, 60, 17), &mut obj);
        assert_eq!(a.history.evaluations(), b.history.evaluations());
    }

    #[test]
    fn warm_start_seeds_the_first_chromosome() {
        use crate::prior::PriorHistory;
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = smooth;
        let donor_ctx = TuneContext::new(&space, 60, 1).with_constraint(&cons);
        let donor = GeneticAlgorithm::default().tune(&donor_ctx, &mut obj);
        let mut prior = PriorHistory::new();
        for e in donor.history.evaluations() {
            prior.push(e.config.clone(), e.value, 1.0);
        }

        let warm_ctx = TuneContext::new(&space, 40, 2)
            .with_constraint(&cons)
            .with_prior(&prior);
        let warm = GeneticAlgorithm::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.len(), 40);
        assert_eq!(warm.history.evaluations()[0].config, donor.best.config);
        assert!(warm.best.value <= donor.best.value);

        let again = GeneticAlgorithm::default().tune(&warm_ctx, &mut obj);
        assert_eq!(warm.history.evaluations(), again.history.evaluations());
    }

    #[test]
    fn batched_run_is_bit_identical_to_sequential() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut obj = smooth;
        let seq_ctx = TuneContext::new(&space, 100, 5).with_constraint(&cons);
        let seq = GeneticAlgorithm::default().tune(&seq_ctx, &mut obj);
        for batch in [2, 4, 10, 32] {
            let ctx = TuneContext::new(&space, 100, 5)
                .with_constraint(&cons)
                .with_batch(batch);
            let b = GeneticAlgorithm::default().tune(&ctx, &mut obj);
            assert_eq!(seq.history.evaluations(), b.history.evaluations());
            assert_eq!(seq.best, b.best);
        }
    }

    #[test]
    fn tiny_budget_below_population_size() {
        let space = imagecl::space();
        let ctx = TuneContext::new(&space, 5, 2);
        let mut obj = smooth;
        let r = GeneticAlgorithm::default().tune(&ctx, &mut obj);
        assert_eq!(r.history.len(), 5);
    }
}
