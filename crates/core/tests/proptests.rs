//! Property-based tests over the whole tuner roster: the invariants every
//! search technique must satisfy regardless of budget, seed, objective
//! shape, or constraint availability.

use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration, Constraint};
use proptest::prelude::*;

/// A family of cheap deterministic objectives with varied character.
fn objective_for(kind: u8) -> impl Fn(&Configuration) -> f64 + Copy {
    move |cfg: &Configuration| {
        let v = cfg.values();
        match kind % 4 {
            0 => v.iter().map(|&x| x as f64).sum(),
            1 => v.iter().map(|&x| (x as f64 - 4.0).powi(2)).sum(),
            2 => {
                // Multiplicative, penalizing large work-groups.
                v[3] as f64 * v[4] as f64 * v[5] as f64 + v[0] as f64
            }
            _ => {
                // Rippled: multimodal along the coarsening axes.
                v.iter()
                    .map(|&x| (x as f64 * 1.3).sin().abs() * 5.0 + x as f64 * 0.1)
                    .sum()
            }
        }
    }
}

proptest! {
    // Each case runs the full roster once; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_tuner_spends_exactly_its_budget(
        budget in 5usize..40,
        seed in 0u64..10_000,
        kind in 0u8..4,
    ) {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        for algo in Algorithm::ALL {
            let ctx = TuneContext::new(&space, budget, seed);
            let ctx = if algo.is_smbo() { ctx } else { ctx.with_constraint(&cons) };
            let f = objective_for(kind);
            let mut obj = move |cfg: &Configuration| f(cfg);
            let r = algo.tuner().tune(&ctx, &mut obj);
            prop_assert_eq!(r.history.len(), budget, "{} budget", algo.name());
            // The reported best matches the history minimum.
            let min = r.history.evaluations().iter()
                .map(|e| e.value).fold(f64::INFINITY, f64::min);
            prop_assert_eq!(r.best.value, min, "{} best", algo.name());
            // Best value is the objective of the best config (objective
            // is deterministic here).
            prop_assert_eq!(r.best.value, f(&r.best.config), "{} consistency", algo.name());
        }
    }

    #[test]
    fn constrained_tuners_stay_feasible(
        budget in 5usize..30,
        seed in 0u64..10_000,
    ) {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        for algo in Algorithm::ALL {
            if algo.is_smbo() {
                continue;
            }
            let ctx = TuneContext::new(&space, budget, seed).with_constraint(&cons);
            let mut obj = |cfg: &Configuration| cfg.values()[0] as f64;
            let r = algo.tuner().tune(&ctx, &mut obj);
            for e in r.history.evaluations() {
                prop_assert!(cons.is_satisfied(&e.config),
                    "{} proposed {}", algo.name(), e.config);
            }
        }
    }

    #[test]
    fn tuners_are_deterministic_per_seed(
        budget in 5usize..25,
        seed in 0u64..10_000,
        kind in 0u8..4,
    ) {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        for algo in Algorithm::ALL {
            let run = || {
                let ctx = TuneContext::new(&space, budget, seed);
                let ctx = if algo.is_smbo() { ctx } else { ctx.with_constraint(&cons) };
                let f = objective_for(kind);
                let mut obj = move |cfg: &Configuration| f(cfg);
                algo.tuner().tune(&ctx, &mut obj)
            };
            let a = run();
            let b = run();
            prop_assert_eq!(a.history.evaluations(), b.history.evaluations(),
                "{} must be reproducible", algo.name());
        }
    }

    #[test]
    fn all_proposals_live_in_the_space(
        budget in 5usize..25,
        seed in 0u64..10_000,
    ) {
        let space = imagecl::space();
        for algo in Algorithm::ALL {
            let ctx = TuneContext::new(&space, budget, seed);
            let mut obj = |cfg: &Configuration| {
                cfg.values().iter().map(|&v| v as f64).product()
            };
            let r = algo.tuner().tune(&ctx, &mut obj);
            for e in r.history.evaluations() {
                prop_assert!(space.contains(&e.config),
                    "{} proposed out-of-space {}", algo.name(), e.config);
            }
        }
    }
}
