//! Property tests for the flight recorder: across every tuner, tracing
//! is purely observational (a traced run returns bit-identical results
//! to an untraced one), trial events mirror the history one-to-one,
//! timestamps are monotone, and phase spans nest and balance.

use autotune_core::bohb::Bohb;
use autotune_core::fidelity::MultiFidelityObjective;
use autotune_core::hyperband::HyperBand;
use autotune_core::trace::{TraceRecord, VecSink};
use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration};
use proptest::prelude::*;

fn objective_value(cfg: &Configuration, twist: u32) -> f64 {
    cfg.values()
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let d = v as f64 - ((twist + i as u32) % 7) as f64;
            d * d
        })
        .sum()
}

/// Asserts the flight-recorder invariants on one event stream.
fn check_stream(
    events: &[autotune_core::TraceEvent],
    history_len: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    // Trial events mirror the history one-to-one, indices in order,
    // best-so-far tracking the running minimum.
    let trials: Vec<(usize, f64, f64)> = events
        .iter()
        .filter_map(|e| match &e.record {
            TraceRecord::Trial {
                index, cost, best, ..
            } => Some((*index, *cost, *best)),
            _ => None,
        })
        .collect();
    prop_assert_eq!(trials.len(), history_len, "{}: trial count", label);
    let mut incumbent = f64::INFINITY;
    for (i, (index, cost, best)) in trials.iter().enumerate() {
        prop_assert_eq!(*index, i, "{}: trial index order", label);
        incumbent = incumbent.min(*cost);
        prop_assert_eq!(*best, incumbent, "{}: best-so-far", label);
    }
    // Timestamps monotone.
    prop_assert!(
        events.windows(2).all(|w| w[0].t_us <= w[1].t_us),
        "{}: timestamps must be monotone",
        label
    );
    // Spans strictly nested and balanced.
    let mut stack: Vec<&str> = Vec::new();
    for e in events {
        match &e.record {
            TraceRecord::SpanBegin { name } => stack.push(name),
            TraceRecord::SpanEnd { name } => {
                prop_assert_eq!(
                    stack.pop(),
                    Some(name.as_str()),
                    "{}: span end without matching begin",
                    label
                );
            }
            _ => {}
        }
    }
    prop_assert!(stack.is_empty(), "{}: unclosed spans {:?}", label, stack);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    #[test]
    fn tracing_is_observational_for_every_tuner(
        seed in 0u64..1_000,
        budget in 10usize..40,
        twist in 0u32..100,
    ) {
        let space = imagecl::space();
        for algo in Algorithm::ALL {
            let label = algo.name();
            let plain = {
                let ctx = TuneContext::new(&space, budget, seed);
                let mut obj = |cfg: &Configuration| objective_value(cfg, twist);
                algo.tuner().tune(&ctx, &mut obj)
            };
            let sink = VecSink::new();
            let traced = {
                let ctx = TuneContext::new(&space, budget, seed).with_trace(&sink);
                let mut obj = |cfg: &Configuration| objective_value(cfg, twist);
                algo.tuner().tune(&ctx, &mut obj)
            };
            // NullSink (default) run bit-identical to the traced run.
            prop_assert_eq!(&plain.best, &traced.best, "{}: best diverged", label);
            prop_assert_eq!(
                plain.history.evaluations(),
                traced.history.evaluations(),
                "{}: history diverged",
                label
            );

            let events = sink.take();
            check_stream(&events, traced.history.len(), label)?;
            // Each tuner contributes at least one algorithm-specific
            // span or point beyond the Recorder's trial/objective pair.
            prop_assert!(
                events.iter().any(|e| !matches!(&e.record, TraceRecord::Trial { .. })
                    && e.record.name() != "objective"),
                "{}: no algorithm-specific events",
                label
            );
        }
    }

    #[test]
    fn tracing_is_observational_for_multi_fidelity_searches(
        seed in 0u64..1_000,
        budget in 20u32..60,
    ) {
        struct Toy {
            cost: f64,
        }
        impl MultiFidelityObjective for Toy {
            fn evaluate_at(&mut self, cfg: &Configuration, fidelity: f64) -> f64 {
                self.cost += fidelity;
                let truth: f64 = cfg.values().iter().map(|&v| (v * v) as f64).sum();
                truth * (1.0 + (1.0 - fidelity) * 0.1)
            }
            fn cost_spent(&self) -> f64 {
                self.cost
            }
        }

        let space = imagecl::space();
        let budget = budget as f64;

        let plain_hb =
            HyperBand::default().tune_mf(&space, &mut Toy { cost: 0.0 }, budget, seed);
        let sink = VecSink::new();
        let traced_hb = HyperBand::default().tune_mf_traced(
            &space,
            &mut Toy { cost: 0.0 },
            budget,
            seed,
            &sink,
        );
        prop_assert_eq!(
            plain_hb.history.evaluations(),
            traced_hb.history.evaluations()
        );
        let events = sink.take();
        check_stream(&events, traced_hb.history.len(), "HyperBand")?;
        prop_assert!(events.iter().any(|e| e.record.name() == "bracket"));
        prop_assert!(events.iter().any(|e| e.record.name() == "rung"));

        let plain_bohb = Bohb::default().tune_mf(&space, &mut Toy { cost: 0.0 }, budget, seed);
        let sink = VecSink::new();
        let traced_bohb = Bohb::default().tune_mf_traced(
            &space,
            &mut Toy { cost: 0.0 },
            budget,
            seed,
            &sink,
        );
        prop_assert_eq!(
            plain_bohb.history.evaluations(),
            traced_bohb.history.evaluations()
        );
        let events = sink.take();
        check_stream(&events, traced_bohb.history.len(), "BOHB")?;
        prop_assert!(events.iter().any(|e| e.record.name() == "bohb_model"));
    }
}
