//! Quick calibration probe: median %-of-optimum per algorithm and sample
//! size on one (benchmark, architecture) pair. Not part of the test
//! suite; used to sanity-check the study's trend shapes during
//! development.

use autotune_core::{Algorithm, TuneContext};
use autotune_space::imagecl;
use gpu_sim::{arch, kernels::Benchmark, oracle, SimulatedKernel};

fn main() {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .get(1)
        .and_then(|s| Benchmark::parse(s))
        .unwrap_or(Benchmark::Harris);
    let gpu = args
        .get(2)
        .and_then(|s| arch::by_name(s))
        .unwrap_or_else(arch::gtx_980);
    let reps: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12);

    let kernel = bench.model();
    let opt = oracle::strided_optimum(kernel.as_ref(), &gpu, 1);
    println!(
        "{} on {}: optimum {:.4} ms at {}",
        bench.name(),
        gpu.name,
        opt.time_ms,
        opt.config
    );

    for budget in [25usize, 50, 100, 200, 400] {
        print!("S={budget:>4}: ");
        for algo in Algorithm::PAPER_FIVE {
            let mut results = Vec::new();
            for rep in 0..reps {
                let seed = (budget as u64) << 32 | (rep as u64) << 8 | algo as u64;
                let mut sim = SimulatedKernel::new(bench.model(), gpu.clone(), seed);
                let ctx = TuneContext::new(&space, budget, seed);
                let ctx = if algo.is_smbo() {
                    ctx
                } else {
                    ctx.with_constraint(&constraint)
                };
                let mut obj = |cfg: &autotune_space::Configuration| sim.measure(cfg);
                let r = algo.tuner().tune(&ctx, &mut obj);
                // Final configuration re-measured 10x, median reported.
                let final_t = sim.measure_final(&r.best.config);
                results.push(100.0 * opt.time_ms / final_t);
            }
            results.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = results[results.len() / 2];
            print!("{}={median:>5.1}%  ", algo.name());
        }
        println!();
    }
}
