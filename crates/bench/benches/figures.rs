//! One benchmark group per paper artefact.
//!
//! Each group measures regenerating that artefact's aggregation and
//! rendering from a cached miniature study (the expensive experiment
//! phase is benchmarked once, end-to-end, in `study/end_to_end`).

use autotune_bench::{micro_config, mini_study};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::design::ExperimentDesign;
use experiments::{grid, metrics, render, table1};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let design = ExperimentDesign::paper();
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(table1::render(black_box(&design))))
    });
}

fn bench_fig2(c: &mut Criterion) {
    let study = mini_study();
    let mut g = c.benchmark_group("fig2");
    g.bench_function("aggregate", |b| {
        b.iter(|| black_box(metrics::fig2(black_box(&study))))
    });
    let panels = metrics::fig2(&study);
    g.bench_function("render", |b| {
        b.iter(|| {
            let mut out = String::new();
            for p in &panels {
                out.push_str(&render::heatmap(p, "%"));
            }
            black_box(out)
        })
    });
    g.bench_function("csv", |b| {
        b.iter(|| black_box(render::heatmaps_csv(black_box(&panels))))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let study = mini_study();
    let mut g = c.benchmark_group("fig3");
    g.bench_function("aggregate_with_bootstrap", |b| {
        b.iter(|| black_box(metrics::fig3(black_box(&study), 0.95, 1)))
    });
    let lines = metrics::fig3(&study, 0.95, 1);
    g.bench_function("render", |b| {
        b.iter(|| black_box(render::aggregate_table(black_box(&lines))))
    });
    g.finish();
}

fn bench_fig4a(c: &mut Criterion) {
    let study = mini_study();
    c.bench_function("fig4a/aggregate", |b| {
        b.iter(|| black_box(metrics::fig4a(black_box(&study))))
    });
}

fn bench_fig4b(c: &mut Criterion) {
    let study = mini_study();
    let mut g = c.benchmark_group("fig4b");
    g.bench_function("cles_and_mwu", |b| {
        b.iter(|| black_box(metrics::fig4b(black_box(&study))))
    });
    let panels = metrics::fig4b(&study);
    g.bench_function("csv", |b| {
        b.iter(|| black_box(render::cles_csv(black_box(&panels))))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let config = micro_config();
    let mut g = c.benchmark_group("study");
    g.sample_size(10);
    g.bench_function("end_to_end_micro", |b| {
        b.iter(|| black_box(grid::run_study(black_box(&config))))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4a,
    bench_fig4b,
    bench_end_to_end
);
criterion_main!(figures);
