//! Knowledge-base costs: fingerprint hashing, store append/lookup, and
//! what a warm start buys (and costs) at the first suggestion.
//!
//! The store sits on the session open/close path, so its costs bound
//! how much latency the kb integration can add to a `tuned` request:
//! one `canonical` hash + one `prior_for` assembly per open, one
//! `append` per close.

use autotune_core::{Algorithm, PriorHistory, TuneContext};
use autotune_kb::{canonical, family, KbStore, PriorWeighting, ProblemTag, StudyRecord};
use autotune_space::{imagecl, sample, Configuration};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::path::PathBuf;

fn temp_kb(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "autotune-kb-bench-{}-{tag}.kb.jsonl",
        std::process::id()
    ))
}

/// A donor study with `n` feasible evaluations.
fn donor_record(arch: &str, seed: u64, n: usize) -> StudyRecord {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let evaluations: Vec<_> = (0..n)
        .map(|i| {
            let config = sample::constrained(&space, &constraint, &mut rng);
            let value = config.values().iter().map(|&v| v as f64).sum::<f64>() + i as f64 * 0.01;
            autotune_core::Evaluation { config, value }
        })
        .collect();
    let tag = ProblemTag::new("convolution", arch);
    StudyRecord {
        fingerprint: canonical(&tag, &space, Some(&constraint)),
        family: family(&tag, &space, Some(&constraint)),
        problem: tag,
        session: format!("donor-{seed}"),
        seed,
        recorded_at_ms: seed,
        algorithm: "BO GP".to_string(),
        budget: n,
        converged: true,
        best: evaluations[0].clone(),
        evaluations,
    }
}

/// Fingerprint hash cost over the real imagecl space + constraint.
fn bench_fingerprint(c: &mut Criterion) {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let tag = ProblemTag::new("convolution", "Titan V");
    let mut g = c.benchmark_group("kb/fingerprint");
    g.bench_function("canonical", |b| {
        b.iter(|| black_box(canonical(black_box(&tag), &space, Some(&constraint))))
    });
    g.bench_function("family", |b| {
        b.iter(|| black_box(family(black_box(&tag), &space, Some(&constraint))))
    });
    g.finish();
}

/// Store append (the per-close cost) and prior/instant-answer lookups
/// (the per-open cost) on a store holding `studies` donor records.
fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("kb/store");
    g.sample_size(20);

    g.bench_function("append", |b| {
        let path = temp_kb("append");
        let _ = std::fs::remove_file(&path);
        let mut store = KbStore::open(&path).expect("open");
        let record = donor_record("Titan V", 1, 64);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut r = record.clone();
            r.seed = seed;
            store.append(r).expect("append")
        });
        drop(store);
        let _ = std::fs::remove_file(&path);
    });

    for studies in [4usize, 32] {
        let path = temp_kb(&format!("lookup-{studies}"));
        let _ = std::fs::remove_file(&path);
        let mut store = KbStore::open(&path).expect("open");
        for i in 0..studies {
            // Half same-architecture, half family-only transfer donors.
            let arch = if i % 2 == 0 { "Titan V" } else { "GTX 980" };
            store
                .append(donor_record(arch, i as u64, 64))
                .expect("append");
        }
        let stats = store.stats();
        assert_eq!(stats.studies, studies as u64);
        let tag = ProblemTag::new("convolution", "Titan V");
        let space = imagecl::space();
        let constraint = imagecl::constraint();
        let fp = canonical(&tag, &space, Some(&constraint));
        let fam = family(&tag, &space, Some(&constraint));
        let weighting = PriorWeighting::default();
        g.bench_function(BenchmarkId::new("prior_for", studies), |b| {
            b.iter(|| black_box(store.prior_for(fp, fam, &weighting)))
        });
        g.bench_function(BenchmarkId::new("instant_answer", studies), |b| {
            b.iter(|| black_box(store.instant_answer(fp, 32)))
        });
        drop(store);
        let _ = std::fs::remove_file(&path);
    }
    g.finish();
}

/// What the warm start costs and buys at suggestion time: a budget-1
/// run is dominated by the surrogate's first suggestion, so cold vs
/// seeded compares random init against a prior-fed model.
fn bench_first_suggest(c: &mut Criterion) {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut prior = PriorHistory::new();
    for i in 0..64 {
        let config = sample::constrained(&space, &constraint, &mut rng);
        let value = config.values().iter().map(|&v| v as f64).sum::<f64>();
        prior.push(config, value, 1.0 - i as f64 * 0.01);
    }

    let mut g = c.benchmark_group("kb/first_suggest");
    g.sample_size(20);
    for algorithm in [Algorithm::BoGp, Algorithm::BoTpe] {
        let name = algorithm.name().replace(' ', "_");
        g.bench_function(BenchmarkId::new("cold", &name), |b| {
            b.iter(|| {
                let ctx = TuneContext::new(&space, 1, 3);
                let mut objective =
                    |cfg: &Configuration| cfg.values().iter().map(|&v| v as f64).sum();
                black_box(algorithm.tuner().tune(&ctx, &mut objective))
            })
        });
        g.bench_function(BenchmarkId::new("seeded", &name), |b| {
            b.iter(|| {
                let ctx = TuneContext::new(&space, 1, 3).with_prior(&prior);
                let mut objective =
                    |cfg: &Configuration| cfg.values().iter().map(|&v| v as f64).sum();
                black_box(algorithm.tuner().tune(&ctx, &mut objective))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fingerprint, bench_store, bench_first_suggest);
criterion_main!(benches);
