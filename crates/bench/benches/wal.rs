//! Durable write-path throughput: per-session fsync-per-append journals
//! against the shared group-commit write-ahead log.
//!
//! The scenario is the `tuned` hot path under concurrent load: N
//! sessions each persisting a stream of eval records before the engine
//! may see them. The JSONL backend pays one `sync_data` per append per
//! session; the WAL batches every session's appends through one
//! committer thread and pays one `sync_data` per *batch*. The headline
//! number is the 16-session case — the regression-gated claim is that
//! group commit sustains several times the durable append throughput of
//! sixteen independently fsyncing writers.

use autotune_core::Algorithm;
use autotune_service::journal::JournalWriter;
use autotune_service::{Durability, SessionSpec, Wal, WalConfig};
use autotune_space::Configuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Appends each worker persists per measured iteration. Large enough
/// that batching has something to merge, small enough that one
/// criterion sample stays in the low milliseconds on a real disk.
const APPENDS_PER_SESSION: usize = 16;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "autotune-wal-bench-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn spec(seed: u64) -> SessionSpec {
    SessionSpec::imagecl(Algorithm::RandomSearch, 64, seed)
}

fn cfg(i: usize) -> Configuration {
    Configuration::new(vec![(i as u32 % 7) + 1, 2, 3, 4, 5, 6])
}

/// One measured round of the JSONL backend: `sessions` threads, each
/// owning a private journal file opened with [`Durability::Sync`],
/// racing to persist their streams. Setup (directory, open, `open`
/// record) is excluded from the clock.
fn fsync_per_append_round(sessions: usize) -> Duration {
    let dir = temp_dir("jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let writers: Vec<JournalWriter> = (0..sessions)
        .map(|s| {
            let path = dir.join(format!("s{s}.jsonl"));
            JournalWriter::create_with(&path, &format!("s{s}"), &spec(s as u64), Durability::Sync)
                .unwrap()
        })
        .collect();
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let handles: Vec<_> = writers
        .into_iter()
        .map(|mut writer| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..APPENDS_PER_SESSION {
                    writer.append_eval(&cfg(i), i as f64 + 0.5).unwrap();
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for handle in handles {
        handle.join().unwrap();
    }
    let elapsed = start.elapsed();
    std::fs::remove_dir_all(&dir).unwrap();
    elapsed
}

/// One measured round of the WAL backend: the same `sessions` threads
/// and streams, but every append rides the shared group committer
/// (sync durability, production flush window).
fn group_commit_round(sessions: usize) -> Duration {
    let dir = temp_dir("wal");
    let wal = Arc::new(Wal::open(WalConfig::new(&dir), None).unwrap());
    for s in 0..sessions {
        wal.open_session(&format!("s{s}"), &spec(s as u64)).unwrap();
    }
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            let wal = Arc::clone(&wal);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let name = format!("s{s}");
                barrier.wait();
                for i in 0..APPENDS_PER_SESSION {
                    wal.append_eval(&name, &cfg(i), i as f64 + 0.5, None)
                        .unwrap();
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for handle in handles {
        handle.join().unwrap();
    }
    let elapsed = start.elapsed();
    drop(wal);
    std::fs::remove_dir_all(&dir).unwrap();
    elapsed
}

/// Durable append throughput, N concurrent sessions, both backends.
/// Criterion reports time per round = time to durably persist
/// `N * APPENDS_PER_SESSION` records; lower is better, and the ratio
/// between the two backends at the same N is the group-commit win.
fn bench_durable_appends(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal/durable_appends");
    g.sample_size(10);
    for sessions in [1usize, 4, 16] {
        g.bench_function(BenchmarkId::new("fsync_per_append", sessions), |b| {
            b.iter_custom(|iters| (0..iters).map(|_| fsync_per_append_round(sessions)).sum())
        });
        g.bench_function(BenchmarkId::new("group_commit", sessions), |b| {
            b.iter_custom(|iters| (0..iters).map(|_| group_commit_round(sessions)).sum())
        });
    }
    g.finish();
}

/// The recovery side of the checkpoint bargain: reopening a log that
/// still holds a session's whole eval-by-eval lifetime against one
/// that compacted it down to a single checkpoint frame.
fn bench_recovery_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal/reopen");
    g.sample_size(10);
    for (label, compacted) in [("full_history", false), ("compacted", true)] {
        let dir = temp_dir(&format!("reopen-{label}"));
        let mut config = WalConfig::new(&dir);
        config.durability = Durability::Buffered;
        config.checkpoint_interval = usize::MAX;
        {
            let wal = Wal::open(config.clone(), None).unwrap();
            wal.open_session("long", &spec(1)).unwrap();
            for i in 0..256 {
                wal.append_eval("long", &cfg(i), i as f64 + 0.5, None)
                    .unwrap();
            }
            if compacted {
                wal.compact().unwrap();
            }
            wal.sync().unwrap();
        }
        g.bench_function(BenchmarkId::new("replay_256_evals", label), |b| {
            b.iter(|| {
                let wal = Wal::open(config.clone(), None).unwrap();
                assert_eq!(wal.recover_session("long").unwrap().evals.len(), 256);
                wal
            })
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench_durable_appends, bench_recovery_replay);
criterion_main!(benches);
