//! Flight-recorder overhead: what tracing costs a search, and what it
//! costs when it is *off*.
//!
//! The `TraceSink` contract promises that the default `NullSink` is
//! free — its methods are empty and `#[inline]`, and every tuner guards
//! payload construction behind `is_enabled()`. The `null_vs_bare` group
//! checks that promise by running the same seeded search with the
//! implicit NullSink and with an explicit one (identical by contract);
//! `vec_sink` and `emit` price the enabled path.

use autotune_core::trace::{NullSink, TraceRecord, TraceSink, VecSink, NULL_SINK};
use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, Configuration};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn objective(cfg: &Configuration) -> f64 {
    cfg.values().iter().map(|&v| (v as f64 - 5.0).abs()).sum()
}

/// The same GA run three ways: default context (NullSink baked in),
/// explicit NullSink via `with_trace`, and a live VecSink. The first
/// two must be indistinguishable; the third prices real recording.
fn bench_traced_search(c: &mut Criterion) {
    const BUDGET: usize = 200;
    let space = imagecl::space();
    let mut g = c.benchmark_group("trace/ga_200_samples");
    g.throughput(Throughput::Elements(BUDGET as u64));

    g.bench_function("untraced", |b| {
        b.iter(|| {
            let ctx = TuneContext::new(&space, BUDGET, 42);
            black_box(
                Algorithm::GeneticAlgorithm
                    .tuner()
                    .tune(&ctx, &mut objective),
            )
        })
    });
    g.bench_function("null_sink", |b| {
        b.iter(|| {
            let ctx = TuneContext::new(&space, BUDGET, 42).with_trace(&NULL_SINK);
            black_box(
                Algorithm::GeneticAlgorithm
                    .tuner()
                    .tune(&ctx, &mut objective),
            )
        })
    });
    g.bench_function("vec_sink", |b| {
        b.iter(|| {
            let sink = VecSink::new();
            let ctx = TuneContext::new(&space, BUDGET, 42).with_trace(&sink);
            let result = Algorithm::GeneticAlgorithm
                .tuner()
                .tune(&ctx, &mut objective);
            black_box((result, sink.take()))
        })
    });
    g.finish();
}

/// Raw per-event cost of the two sink implementations.
fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace/emit");
    let null = NullSink;
    g.bench_function(BenchmarkId::new("sink", "null"), |b| {
        b.iter(|| {
            null.emit(black_box(TraceRecord::Trial {
                index: 7,
                config: vec![1, 2, 3, 4, 5, 6],
                cost: 1.25,
                best: 1.25,
            }))
        })
    });
    let vec = VecSink::new();
    g.bench_function(BenchmarkId::new("sink", "vec"), |b| {
        b.iter(|| {
            vec.emit(black_box(TraceRecord::Trial {
                index: 7,
                config: vec![1, 2, 3, 4, 5, 6],
                cost: 1.25,
                best: 1.25,
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_traced_search, bench_emit);
criterion_main!(benches);
