//! Session-engine throughput: suggest/report round-trips per second.
//!
//! Every ask-tell round trip crosses two rendezvous channels and a
//! thread switch, so this measures the service layer's overhead floor —
//! what it costs to run a tuner behind the engine instead of in-process.
//! Real deployments amortize it against multi-millisecond kernel
//! measurements; the bench uses a free objective to isolate the
//! machinery itself.

use autotune_core::Algorithm;
use autotune_service::{
    AskTellSession, BatchSuggestion, SessionManager, SessionSpec, SpaceSpec, Suggestion,
};
use autotune_space::{Configuration, Param, ParamSpace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn toy_spec(budget: usize, seed: u64) -> SessionSpec {
    SessionSpec {
        algorithm: Algorithm::RandomSearch,
        budget,
        seed,
        space: SpaceSpec::Custom {
            space: ParamSpace::new(vec![
                Param::new("a", 1, 16),
                Param::new("b", 1, 16),
                Param::new("c", 1, 16),
            ]),
        },
        warm_start: Default::default(),
        problem: None,
        prior: None,
        batch: 1,
    }
}

fn objective(cfg: &Configuration) -> f64 {
    cfg.values().iter().map(|&v| v as f64).sum()
}

fn drive_to_completion(spec: SessionSpec) -> f64 {
    let mut session = AskTellSession::open(spec).expect("open");
    loop {
        match session.suggest().expect("suggest") {
            Suggestion::Evaluate(cfg) => session.report(objective(&cfg)).expect("report"),
            Suggestion::Finished(result) => return result.best.value,
        }
    }
}

/// One session, full budget: round-trips per second through a single
/// engine thread.
fn bench_single_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("service/roundtrips");
    for budget in [64usize, 256] {
        g.throughput(Throughput::Elements(budget as u64));
        g.bench_function(BenchmarkId::from_parameter(budget), |b| {
            b.iter(|| black_box(drive_to_completion(toy_spec(budget, 42))))
        });
    }
    g.finish();
}

/// N sessions driven by N threads through one shared manager: how much
/// concurrent sessions interfere (they should barely — the registry lock
/// is only held for lookups).
fn bench_concurrent_sessions(c: &mut Criterion) {
    const BUDGET: usize = 128;
    let mut g = c.benchmark_group("service/concurrent_sessions");
    g.sample_size(10);
    for sessions in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements((BUDGET * sessions) as u64));
        g.bench_function(BenchmarkId::from_parameter(sessions), |b| {
            b.iter(|| {
                let manager = Arc::new(SessionManager::in_memory());
                for i in 0..sessions {
                    manager
                        .open(&format!("s{i}"), toy_spec(BUDGET, i as u64))
                        .expect("open");
                }
                let handles: Vec<_> = (0..sessions)
                    .map(|i| {
                        let manager = Arc::clone(&manager);
                        std::thread::spawn(move || {
                            let name = format!("s{i}");
                            loop {
                                match manager.suggest(&name).expect("suggest") {
                                    Suggestion::Evaluate(cfg) => {
                                        manager.report(&name, objective(&cfg)).expect("report")
                                    }
                                    Suggestion::Finished(result) => return result.best.value,
                                }
                            }
                        })
                    })
                    .collect();
                let total: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
                black_box(total)
            })
        });
    }
    g.finish();
}

/// The sharded-scheduler acceptance bench: 64 concurrent sessions
/// through one shared manager, driven one round-trip at a time versus
/// through the batch ops. Batching collapses per-value rendezvous pairs
/// into chunked ones and cuts registry traffic by the batch width, so
/// the batched mode bounds what a real fleet of measurement workers
/// saves; the sequential mode doubles as a shard-contention probe (64
/// driver threads hashing across the 16 registry shards).
fn bench_64_sessions(c: &mut Criterion) {
    const SESSIONS: usize = 64;
    const BUDGET: usize = 64;
    const WIDTH: usize = 8;
    let mut g = c.benchmark_group("service/64_sessions");
    g.sample_size(10);
    g.throughput(Throughput::Elements((BUDGET * SESSIONS) as u64));
    for (label, width) in [("sequential", 1usize), ("batched_8", WIDTH)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let manager = Arc::new(SessionManager::in_memory());
                for i in 0..SESSIONS {
                    manager
                        .open(
                            &format!("s{i}"),
                            toy_spec(BUDGET, i as u64).with_batch(width),
                        )
                        .expect("open");
                }
                let handles: Vec<_> = (0..SESSIONS)
                    .map(|i| {
                        let manager = Arc::clone(&manager);
                        std::thread::spawn(move || {
                            let name = format!("s{i}");
                            loop {
                                match manager.suggest_batch(&name, width).expect("suggest_batch") {
                                    BatchSuggestion::Evaluate(cfgs) => {
                                        let values: Vec<f64> = cfgs.iter().map(objective).collect();
                                        manager.report_batch(&name, &values).expect("report_batch");
                                    }
                                    BatchSuggestion::Finished(result) => return result.best.value,
                                }
                            }
                        })
                    })
                    .collect();
                let total: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
                black_box(total)
            })
        });
    }
    g.finish();
}

/// Metrics overhead: what one fully-instrumented snapshot + Prometheus
/// rendering costs, and the per-event price of the counter/histogram
/// primitives the hot paths pay.
fn bench_metrics(c: &mut Criterion) {
    use autotune_service::metrics::{Counter, Histogram};
    use std::time::Duration;

    let mut g = c.benchmark_group("service/metrics");

    g.bench_function("observe", |b| {
        let h = Histogram::latency();
        let d = Duration::from_micros(17);
        b.iter(|| h.observe(black_box(d)))
    });
    g.bench_function("counter_inc", |b| {
        let counter = Counter::new();
        b.iter(|| counter.inc())
    });

    // A manager that has seen traffic, so the snapshot is non-trivial.
    let manager = Arc::new(SessionManager::in_memory());
    manager.open("warm", toy_spec(64, 1)).expect("open");
    loop {
        match manager.suggest("warm").expect("suggest") {
            Suggestion::Evaluate(cfg) => manager.report("warm", objective(&cfg)).expect("report"),
            Suggestion::Finished(_) => break,
        }
    }
    g.bench_function("snapshot", |b| {
        b.iter(|| black_box(manager.metrics().snapshot()))
    });
    let snapshot = manager.metrics().snapshot();
    g.bench_function("render_prometheus", |b| {
        b.iter(|| black_box(snapshot.render_prometheus()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_session,
    bench_concurrent_sessions,
    bench_64_sessions,
    bench_metrics
);
criterion_main!(benches);
