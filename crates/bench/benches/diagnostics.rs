//! Search-health diagnostics overhead: the per-event cost of feeding
//! the streaming diagnostics from a realistic trace stream, the price
//! of rendering a report, and the offline band detectors.
//!
//! The serving-path claim this group keeps honest: diagnostics ride the
//! existing trace sink, so a session with `--diagnostics` pays
//! nanoseconds per trial on the engine thread — and a session without
//! it pays one `Option` branch (the `disabled_branch` baseline).

use autotune_core::trace::{TraceEvent, TraceRecord};
use autotune_core::{BandDetector, DiagnosticsConfig, SearchDiagnostics};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// A realistic guided-search stream: per trial one acquisition span
/// with a score, one surrogate prediction, and the trial itself —
/// exactly what BO GP emits once past its startup design.
fn guided_stream(trials: usize, seed: u64) -> Vec<TraceEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(trials * 5);
    let mut t_us = 0u64;
    let mut best = f64::INFINITY;
    let mut push = |t_us: &mut u64, record: TraceRecord| {
        *t_us += 17;
        events.push(TraceEvent {
            t_us: *t_us,
            record,
        });
    };
    for index in 0..trials {
        let cost = 4.0 / (1.0 + index as f64 * 0.1) + rng.gen_range(0.0..0.5);
        push(
            &mut t_us,
            TraceRecord::SpanBegin {
                name: "acquisition".into(),
            },
        );
        push(
            &mut t_us,
            TraceRecord::Point {
                name: "acquisition_value".into(),
                fields: vec![("score".into(), rng.gen_range(0.0..1.0))],
            },
        );
        push(
            &mut t_us,
            TraceRecord::SpanEnd {
                name: "acquisition".into(),
            },
        );
        push(
            &mut t_us,
            TraceRecord::Point {
                name: "surrogate_pred".into(),
                fields: vec![("value".into(), cost + rng.gen_range(-0.2..0.2))],
            },
        );
        best = best.min(cost);
        push(
            &mut t_us,
            TraceRecord::Trial {
                index,
                config: vec![1, 2, 4, 8, 2, 1],
                cost,
                best,
            },
        );
    }
    events
}

fn bench_observe(c: &mut Criterion) {
    const TRIALS: usize = 400;
    let events = guided_stream(TRIALS, 7);
    let mut g = c.benchmark_group("diagnostics/observe");
    g.throughput(Throughput::Elements(events.len() as u64));

    // The full stream folded into a fresh instance: amortized per-event
    // cost including the streaming MWU the advisor maintains.
    g.bench_function("guided_stream", |b| {
        b.iter(|| {
            let mut d = SearchDiagnostics::new(DiagnosticsConfig::default());
            for e in &events {
                d.observe(e);
            }
            black_box(d.drain_new_pathologies().len())
        })
    });

    // What every diagnostics-off session pays instead: the engine
    // sink's `Option<SearchDiagnostics>` is `None`, one branch per
    // event.
    g.bench_function("disabled_branch", |b| {
        b.iter(|| {
            let mut d: Option<SearchDiagnostics> = None;
            let mut seen = 0usize;
            for e in &events {
                if let Some(d) = d.as_mut() {
                    d.observe(e);
                }
                seen += 1;
            }
            black_box((d.is_some(), seen))
        })
    });
    g.finish();
}

fn bench_report(c: &mut Criterion) {
    let events = guided_stream(400, 11);
    let mut d = SearchDiagnostics::new(DiagnosticsConfig::default());
    for e in &events {
        d.observe(e);
    }
    let mut g = c.benchmark_group("diagnostics/report");
    // `diagnose` renders on the serving thread while the per-session
    // guard is held — this is that hold time.
    g.bench_function("render", |b| b.iter(|| black_box(d.report())));
    g.finish();
}

fn bench_band_detectors(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    // The committed study's shape: ~10 repetitions per cell.
    let lower: Vec<f64> = (0..10).map(|_| rng.gen_range(2.0..3.0)).collect();
    let higher: Vec<f64> = (0..10).map(|_| rng.gen_range(2.5..3.5)).collect();
    let detector = BandDetector::default();
    let mut g = c.benchmark_group("diagnostics/band_detectors");
    g.bench_function("overfitting_dip_n10", |b| {
        b.iter(|| black_box(detector.overfitting_dip(&lower, &higher)))
    });
    g.bench_function("worse_than_random_n10", |b| {
        b.iter(|| black_box(detector.worse_than_random(&higher, &lower)))
    });
    g.finish();
}

criterion_group!(benches, bench_observe, bench_report, bench_band_detectors);
criterion_main!(benches);
