//! Component benchmarks: the computational kernels every experiment sits
//! on. These set the budget expectations for the full study (e.g. one
//! BO-GP run at S=400 performs ~400 incremental GP updates plus periodic
//! grid-search refits).

use autotune_bench::training_set;
use autotune_core::{Algorithm, TuneContext};
use autotune_space::{imagecl, sample, Configuration};
use autotune_stats::{cles, mwu, Alternative};
use autotune_surrogates::gp::model::{default_grid, GaussianProcess, GpParams};
use autotune_surrogates::{RandomForest, RandomForestParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::dataset::Dataset;
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::{arch, model, oracle};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let space = imagecl::space();
    let gpu = arch::rtx_titan();
    let cfg = Configuration::from([2, 4, 1, 8, 4, 1]);
    for bench in Benchmark::ALL {
        let kernel = bench.model();
        g.bench_function(BenchmarkId::new("kernel_time", bench.name()), |b| {
            b.iter(|| {
                black_box(model::kernel_time_ms(
                    kernel.as_ref(),
                    &gpu,
                    black_box(&cfg),
                ))
            })
        });
    }
    g.bench_function("oracle_strided_1009", |b| {
        let kernel = Benchmark::Add.model();
        b.iter(|| black_box(oracle::strided_optimum(kernel.as_ref(), &gpu, 1009)))
    });
    g.bench_function("dataset_generate_256", |b| {
        b.iter(|| {
            black_box(Dataset::generate(
                Benchmark::Add,
                &gpu,
                256,
                NoiseModel::study_default(),
                1,
            ))
        })
    });
    let _ = space;
    g.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp");
    for n in [50usize, 100, 200] {
        let (x, y) = training_set(n);
        g.bench_function(BenchmarkId::new("fit", n), |b| {
            b.iter(|| {
                black_box(GaussianProcess::fit(x.clone(), y.clone(), GpParams::default()).unwrap())
            })
        });
    }
    let (x, y) = training_set(100);
    let gp = GaussianProcess::fit(x.clone(), y.clone(), GpParams::default()).unwrap();
    g.bench_function("predict_100", |b| {
        let q = vec![0.3; 6];
        b.iter(|| black_box(gp.predict(black_box(&q))))
    });
    g.bench_function("add_point_100", |b| {
        b.iter_batched(
            || gp.clone(),
            |mut gp| {
                gp.add_point(vec![0.9; 6], 1.0).unwrap();
                black_box(gp)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("grid_search_50", |b| {
        let (x, y) = training_set(50);
        let grid = default_grid();
        b.iter(|| {
            black_box(GaussianProcess::fit_with_grid_search(
                x.clone(),
                y.clone(),
                &grid,
            ))
        })
    });
    g.finish();
}

fn bench_forest(c: &mut Criterion) {
    let mut g = c.benchmark_group("random_forest");
    for n in [90usize, 390] {
        let (x, y) = training_set(n);
        g.bench_function(BenchmarkId::new("fit_100_trees", n), |b| {
            b.iter(|| black_box(RandomForest::fit(&x, &y, &RandomForestParams::default(), 1)))
        });
    }
    let (x, y) = training_set(90);
    let forest = RandomForest::fit(&x, &y, &RandomForestParams::default(), 1);
    g.bench_function("predict", |b| {
        let q = vec![0.4; 6];
        b.iter(|| black_box(forest.predict(black_box(&q))))
    });
    g.finish();
}

fn bench_tuners(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner_run_s25");
    g.sample_size(10);
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    for algo in Algorithm::PAPER_FIVE {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                let kernel = Benchmark::Add.model();
                let mut sim = gpu_sim::SimulatedKernel::new(kernel, arch::gtx_980(), 3);
                let ctx = TuneContext::new(&space, 25, 3);
                let ctx = if algo.is_smbo() {
                    ctx
                } else {
                    ctx.with_constraint(&constraint)
                };
                let mut obj = |cfg: &Configuration| sim.measure(cfg);
                black_box(algo.tuner().tune(&ctx, &mut obj))
            })
        });
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let space = imagecl::space();
    let a: Vec<f64> = sample::uniform_many(&space, 200, &mut rng)
        .iter()
        .map(|cfg| cfg.values().iter().map(|&v| v as f64).sum())
        .collect();
    let b_vals: Vec<f64> = a.iter().map(|v| v * 1.1 + 0.3).collect();
    g.bench_function("mwu_200x200", |bch| {
        bch.iter(|| black_box(mwu::mann_whitney_u(&a, &b_vals, Alternative::TwoSided)))
    });
    g.bench_function("cles_200x200", |bch| {
        bch.iter(|| black_box(cles::common_language_effect_size(&a, &b_vals)))
    });
    g.bench_function("bootstrap_mean_ci_1000", |bch| {
        bch.iter(|| black_box(autotune_stats::bootstrap::mean_ci(&a, 1000, 0.95, 1)))
    });
    g.finish();
}

criterion_group!(
    components,
    bench_simulator,
    bench_gp,
    bench_forest,
    bench_tuners,
    bench_stats
);
criterion_main!(components);
