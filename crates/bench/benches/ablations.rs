//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! These measure the *cost* side of each choice (wall time of a tuning
//! run under each variant); the *quality* side is reported by
//! `cargo run -p experiments --bin ablations`.

use autotune_core::bo_gp::{BayesOptGp, BoGpParams};
use autotune_core::bo_tpe::{BayesOptTpe, TpeParams};
use autotune_core::ga::{GaParams, GeneticAlgorithm};
use autotune_core::{TuneContext, Tuner};
use autotune_space::{imagecl, Configuration};
use autotune_surrogates::acquisition::Acquisition;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::{arch, SimulatedKernel};
use std::hint::black_box;

const BUDGET: usize = 50;

fn run_tuner(tuner: &dyn Tuner, constrained: bool, noise: NoiseModel) -> f64 {
    let space = imagecl::space();
    let constraint = imagecl::constraint();
    let mut sim =
        SimulatedKernel::with_noise(Benchmark::Harris.model(), arch::gtx_980(), noise, 11);
    let ctx = TuneContext::new(&space, BUDGET, 11);
    let ctx = if constrained {
        ctx.with_constraint(&constraint)
    } else {
        ctx
    };
    let mut obj = |cfg: &Configuration| sim.measure(cfg);
    tuner.tune(&ctx, &mut obj).best.value
}

fn ablate_gp_refit_cadence(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/gp_refit_every");
    g.sample_size(10);
    for refit in [5usize, 25, 50] {
        let tuner = BayesOptGp {
            params: BoGpParams {
                refit_every: refit,
                ..BoGpParams::default()
            },
        };
        g.bench_function(BenchmarkId::from_parameter(refit), |b| {
            b.iter(|| black_box(run_tuner(&tuner, false, NoiseModel::study_default())))
        });
    }
    g.finish();
}

fn ablate_acquisition(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/acquisition");
    g.sample_size(10);
    let variants: [(&str, Acquisition); 3] = [
        ("ei", Acquisition::ExpectedImprovement { xi: 0.01 }),
        ("lcb", Acquisition::LowerConfidenceBound { kappa: 1.96 }),
        ("poi", Acquisition::ProbabilityOfImprovement { xi: 0.01 }),
    ];
    for (name, acq) in variants {
        let tuner = BayesOptGp {
            params: BoGpParams {
                acquisition: acq,
                ..BoGpParams::default()
            },
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_tuner(&tuner, false, NoiseModel::study_default())))
        });
    }
    g.finish();
}

fn ablate_tpe_gamma(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/tpe_gamma");
    g.sample_size(10);
    for gamma in [0.15f64, 0.25, 0.5] {
        let tuner = BayesOptTpe {
            params: TpeParams {
                gamma,
                ..TpeParams::default()
            },
        };
        g.bench_function(BenchmarkId::from_parameter(gamma), |b| {
            b.iter(|| black_box(run_tuner(&tuner, false, NoiseModel::study_default())))
        });
    }
    g.finish();
}

fn ablate_ga_population(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/ga_population");
    g.sample_size(10);
    for pop in [10usize, 20, 40] {
        let tuner = GeneticAlgorithm {
            params: GaParams {
                population: pop,
                ..GaParams::default()
            },
        };
        g.bench_function(BenchmarkId::from_parameter(pop), |b| {
            b.iter(|| black_box(run_tuner(&tuner, true, NoiseModel::study_default())))
        });
    }
    g.finish();
}

fn ablate_constraint_specification(c: &mut Criterion) {
    // The paper's "design point in which non-SMBO methods are favored":
    // GA with and without the a-priori constraint.
    let mut g = c.benchmark_group("ablation/ga_constraint");
    g.sample_size(10);
    let tuner = GeneticAlgorithm::default();
    g.bench_function("with_constraint", |b| {
        b.iter(|| black_box(run_tuner(&tuner, true, NoiseModel::study_default())))
    });
    g.bench_function("without_constraint", |b| {
        b.iter(|| black_box(run_tuner(&tuner, false, NoiseModel::study_default())))
    });
    g.finish();
}

fn ablate_noise_level(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/noise_scale");
    g.sample_size(10);
    let tuner = GeneticAlgorithm::default();
    for scale in [0.0f64, 1.0, 4.0] {
        g.bench_function(BenchmarkId::from_parameter(scale), |b| {
            b.iter(|| black_box(run_tuner(&tuner, true, NoiseModel::scaled(scale))))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_gp_refit_cadence,
    ablate_acquisition,
    ablate_tpe_gamma,
    ablate_ga_population,
    ablate_constraint_specification,
    ablate_noise_level
);
criterion_main!(ablations);
