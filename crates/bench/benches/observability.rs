//! Observatory overhead: per-observation cost of the streaming
//! estimators and the price of one metrics time-series sample.
//!
//! The streaming module exists so the study monitor can fold every
//! finished repetition in on the worker threads' critical path —
//! these groups keep that cost honest (nanoseconds per push, not
//! microseconds), and `tsdb/sample` prices the `tuned` sampler tick.

use autotune_service::ServiceMetrics;
use autotune_stats::{Alternative, Extrema, P2Quantile, StreamingMwu, Welford};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// A reproducible observation stream with ties (one-decimal values).
fn observations(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(0.0..400.0_f64) * 10.0).round() / 10.0)
        .collect()
}

fn bench_streaming_estimators(c: &mut Criterion) {
    const N: usize = 10_000;
    let values = observations(N, 7);
    let mut g = c.benchmark_group("observability/streaming_push");
    g.throughput(Throughput::Elements(N as u64));

    g.bench_function("welford", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for &v in &values {
                w.push(v);
            }
            black_box((w.mean(), w.variance()))
        })
    });
    g.bench_function("extrema", |b| {
        b.iter(|| {
            let mut e = Extrema::new();
            for &v in &values {
                e.push(v);
            }
            black_box((e.min(), e.max()))
        })
    });
    g.bench_function("p2_median", |b| {
        b.iter(|| {
            let mut q = P2Quantile::median();
            for &v in &values {
                q.push(v);
            }
            black_box(q.quantile())
        })
    });
    g.finish();
}

/// The incremental MWU pays a binary search + insert per observation,
/// so its per-push cost grows with the sample — bench the sizes the
/// study actually sees (tens to hundreds of repeats per cell).
fn bench_streaming_mwu(c: &mut Criterion) {
    let mut g = c.benchmark_group("observability/streaming_mwu");
    for &n in &[50usize, 400] {
        let a = observations(n, 11);
        let b_side = observations(n, 13);
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_function(format!("push_pair_n{n}"), |b| {
            b.iter(|| {
                let mut mwu = StreamingMwu::new();
                for (&x, &y) in a.iter().zip(&b_side) {
                    mwu.push_a(x);
                    mwu.push_b(y);
                }
                black_box(mwu.result(Alternative::TwoSided).p_value)
            })
        });
    }
    g.finish();
}

fn bench_tsdb_sampling(c: &mut Criterion) {
    let metrics = ServiceMetrics::default();
    // A realistic registry: live counters and a warm latency histogram.
    for _ in 0..1000 {
        metrics.requests.inc();
        metrics.engine_reports.inc();
        metrics
            .dispatch_seconds
            .observe(std::time::Duration::from_micros(250));
    }
    let mut g = c.benchmark_group("observability/tsdb");
    g.bench_function("sample", |b| {
        let mut tick: u64 = 0;
        b.iter(|| {
            tick += 1;
            black_box(metrics.sample_timeseries(tick))
        })
    });
    g.bench_function("snapshot_only", |b| {
        b.iter(|| black_box(metrics.snapshot()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_streaming_estimators,
    bench_streaming_mwu,
    bench_tsdb_sampling
);
criterion_main!(benches);
