//! Observatory overhead: per-observation cost of the streaming
//! estimators, the price of one metrics time-series sample, and the
//! event log's emission-site cost.
//!
//! The streaming module exists so the study monitor can fold every
//! finished repetition in on the worker threads' critical path —
//! these groups keep that cost honest (nanoseconds per push, not
//! microseconds), and `tsdb/sample` prices the `tuned` sampler tick.
//! The `event_log` group proves the "logging off is ~free" claim the
//! serving path relies on: a disabled log's emit is one atomic load
//! (the message closure never runs), and an off-threshold `record_op`
//! is one load plus a compare.

use autotune_service::log::{rid_scope, EventLog, LogLevel};
use autotune_service::ServiceMetrics;
use autotune_stats::{Alternative, Extrema, P2Quantile, StreamingMwu, Welford};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// A reproducible observation stream with ties (one-decimal values).
fn observations(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(0.0..400.0_f64) * 10.0).round() / 10.0)
        .collect()
}

fn bench_streaming_estimators(c: &mut Criterion) {
    const N: usize = 10_000;
    let values = observations(N, 7);
    let mut g = c.benchmark_group("observability/streaming_push");
    g.throughput(Throughput::Elements(N as u64));

    g.bench_function("welford", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for &v in &values {
                w.push(v);
            }
            black_box((w.mean(), w.variance()))
        })
    });
    g.bench_function("extrema", |b| {
        b.iter(|| {
            let mut e = Extrema::new();
            for &v in &values {
                e.push(v);
            }
            black_box((e.min(), e.max()))
        })
    });
    g.bench_function("p2_median", |b| {
        b.iter(|| {
            let mut q = P2Quantile::median();
            for &v in &values {
                q.push(v);
            }
            black_box(q.quantile())
        })
    });
    g.finish();
}

/// The incremental MWU pays a binary search + insert per observation,
/// so its per-push cost grows with the sample — bench the sizes the
/// study actually sees (tens to hundreds of repeats per cell).
fn bench_streaming_mwu(c: &mut Criterion) {
    let mut g = c.benchmark_group("observability/streaming_mwu");
    for &n in &[50usize, 400] {
        let a = observations(n, 11);
        let b_side = observations(n, 13);
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_function(format!("push_pair_n{n}"), |b| {
            b.iter(|| {
                let mut mwu = StreamingMwu::new();
                for (&x, &y) in a.iter().zip(&b_side) {
                    mwu.push_a(x);
                    mwu.push_b(y);
                }
                black_box(mwu.result(Alternative::TwoSided).p_value)
            })
        });
    }
    g.finish();
}

fn bench_tsdb_sampling(c: &mut Criterion) {
    let metrics = ServiceMetrics::default();
    // A realistic registry: live counters and a warm latency histogram.
    for _ in 0..1000 {
        metrics.requests.inc();
        metrics.engine_reports.inc();
        metrics
            .dispatch_seconds
            .observe(std::time::Duration::from_micros(250));
    }
    let mut g = c.benchmark_group("observability/tsdb");
    g.bench_function("sample", |b| {
        let mut tick: u64 = 0;
        b.iter(|| {
            tick += 1;
            black_box(metrics.sample_timeseries(tick))
        })
    });
    g.bench_function("snapshot_only", |b| {
        b.iter(|| black_box(metrics.snapshot()))
    });
    g.finish();
}

fn bench_event_log(c: &mut Criterion) {
    const N: usize = 10_000;
    let mut g = c.benchmark_group("observability/event_log");
    g.throughput(Throughput::Elements(N as u64));

    // The default serving path: every emission site hits a disabled
    // log. The closure must never be evaluated.
    let off = EventLog::null();
    g.bench_function("emit_disabled", |b| {
        b.iter(|| {
            for i in 0..N {
                off.debug("engine", Some("bench"), || {
                    format!("expensive message {i} that must never be built")
                });
            }
            black_box(off.counts().logged)
        })
    });
    g.bench_function("record_op_off_threshold", |b| {
        let elapsed = std::time::Duration::from_micros(50);
        b.iter(|| {
            for _ in 0..N {
                off.record_op("suggest", elapsed);
            }
            black_box(off.counts().slow_ops)
        })
    });

    // The enabled path, with a rid in scope, generous rate limit, and
    // the ring absorbing every record — the worst on-path cost.
    let on = EventLog::enabled(LogLevel::Debug);
    on.set_rate_limit(f64::MAX, f64::MAX);
    g.bench_function("emit_enabled_ring", |b| {
        let _scope = rid_scope("r-benchbenchbench", true);
        b.iter(|| {
            for i in 0..N {
                on.debug("engine", Some("bench"), || format!("suggest served #{i}"));
            }
            black_box(on.counts().logged)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_streaming_estimators,
    bench_streaming_mwu,
    bench_tsdb_sampling,
    bench_event_log
);
criterion_main!(benches);
