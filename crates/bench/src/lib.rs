//! Shared fixtures for the Criterion benchmark harness.
//!
//! The benches are organized as:
//!
//! * `benches/figures.rs` — one group per paper artefact (Table I,
//!   Fig. 2, Fig. 3, Fig. 4a, Fig. 4b): measures regenerating each
//!   artefact from a cached miniature study, plus one end-to-end
//!   mini-study benchmark.
//! * `benches/components.rs` — the computational kernels underneath:
//!   simulator evaluation, GP fit/predict, RF fit, TPE rounds, MWU/CLES,
//!   dataset generation, oracle scans.
//! * `benches/ablations.rs` — cost of the design choices DESIGN.md calls
//!   out (GP refit cadence, acquisition function, TPE γ, GA population,
//!   constraint specification on/off, noise level).

use autotune_core::Algorithm;
use experiments::grid::{run_study, StudyConfig, StudyResults};
use gpu_sim::arch;
use gpu_sim::kernels::Benchmark;

/// A miniature but complete study: 1 benchmark, 1 architecture, the
/// paper's five algorithms at the smallest scale. Used as the cached
/// input for the per-figure aggregation benches.
pub fn mini_study() -> StudyResults {
    let mut c = StudyConfig::smoke();
    c.algorithms = Algorithm::PAPER_FIVE.to_vec();
    c.benchmarks = vec![Benchmark::Add];
    c.architectures = vec![arch::gtx_980()];
    c.dataset_size = 400;
    c.oracle_stride = 1009;
    c.threads = 1;
    run_study(&c)
}

/// An even smaller study configuration for the end-to-end benchmark
/// (run *inside* the measurement loop, so it must be quick).
pub fn micro_config() -> StudyConfig {
    let mut c = StudyConfig::smoke();
    c.algorithms = vec![Algorithm::RandomSearch, Algorithm::GeneticAlgorithm];
    c.benchmarks = vec![Benchmark::Add];
    c.architectures = vec![arch::gtx_980()];
    c.dataset_size = 500;
    c.oracle_stride = 4001;
    c.threads = 1;
    c
}

/// Deterministic feature matrix + targets for surrogate-model benches.
pub fn training_set(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let space = autotune_space::imagecl::space();
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(7);
    let cfgs = autotune_space::sample::uniform_many(&space, n, &mut rng);
    let kernel = Benchmark::Harris.model();
    let gpu = arch::titan_v();
    let x: Vec<Vec<f64>> = cfgs.iter().map(|c| space.to_unit_features(c)).collect();
    let y: Vec<f64> = cfgs
        .iter()
        .map(|c| gpu_sim::model::kernel_time_ms(kernel.as_ref(), &gpu, c).ln())
        .collect();
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_study_covers_all_cells() {
        // The full mini_study runs BO GP at S=400, which is too slow for
        // debug-mode tests; the micro configuration exercises the same
        // pipeline. mini_study itself runs (in release) inside the benches.
        let r = run_study(&micro_config());
        assert_eq!(r.cells.len(), 2 * 5); // 2 algorithms x 5 sample sizes
    }

    #[test]
    fn training_set_shapes() {
        let (x, y) = training_set(32);
        assert_eq!(x.len(), 32);
        assert_eq!(y.len(), 32);
        assert!(x.iter().all(|r| r.len() == 6));
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
