//! Property-based tests for the search-space substrate.

use autotune_space::constraint::Constraint;
use autotune_space::{imagecl, neighborhood, sample, Configuration, Param, ParamSpace};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy producing a modest random space (2-6 params, cardinalities 1-10).
fn arb_space() -> impl Strategy<Value = ParamSpace> {
    proptest::collection::vec((0u32..5, 1u32..10), 2..=6).prop_map(|ranges| {
        ParamSpace::new(
            ranges
                .into_iter()
                .enumerate()
                .map(|(i, (lo, span))| Param::new(format!("p{i}"), lo, lo + span))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn index_bijection_round_trips((space, frac) in (arb_space(), 0.0..1.0f64)) {
        let idx = ((space.size() - 1) as f64 * frac) as u64;
        let cfg = space.config_at(idx);
        prop_assert!(space.contains(&cfg));
        prop_assert_eq!(space.index_of(&cfg), idx);
    }

    #[test]
    fn unit_features_round_trip((space, frac) in (arb_space(), 0.0..1.0f64)) {
        let idx = ((space.size() - 1) as f64 * frac) as u64;
        let cfg = space.config_at(idx);
        let feats = space.to_unit_features(&cfg);
        prop_assert!(feats.iter().all(|f| (0.0..=1.0).contains(f)));
        prop_assert_eq!(space.from_unit_features(&feats), cfg);
    }

    #[test]
    fn uniform_sampling_stays_in_space((space, seed) in (arb_space(), 0u64..1000)) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for cfg in sample::uniform_many(&space, 32, &mut rng) {
            prop_assert!(space.contains(&cfg));
        }
    }

    #[test]
    fn neighbors_are_in_space_and_distance_one((space, frac) in (arb_space(), 0.0..1.0f64)) {
        let idx = ((space.size() - 1) as f64 * frac) as u64;
        let cfg = space.config_at(idx);
        for n in neighborhood::neighbors(&space, &cfg) {
            prop_assert!(space.contains(&n));
            prop_assert_eq!(neighborhood::hamming(&cfg, &n), 1);
        }
    }

    #[test]
    fn lhs_samples_are_valid((seed, n) in (0u64..100, 1usize..40)) {
        let space = imagecl::space();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples = sample::latin_hypercube(&space, n, &mut rng);
        prop_assert_eq!(samples.len(), n);
        for s in &samples {
            prop_assert!(space.contains(s));
        }
    }

    #[test]
    fn floyd_indices_are_distinct_and_bounded((seed, limit, n) in (0u64..100, 10u64..500, 1usize..10)) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let picks = sample::indices_without_replacement(limit, n, &mut rng);
        let set: std::collections::HashSet<_> = picks.iter().copied().collect();
        prop_assert_eq!(set.len(), n);
        prop_assert!(picks.iter().all(|&i| i < limit));
    }

    #[test]
    fn imagecl_constraint_agrees_with_manual_product(idx in 0u64..2_097_152) {
        let space = imagecl::space();
        let cfg = space.config_at(idx);
        let manual = cfg.get(imagecl::XW) as u64
            * cfg.get(imagecl::YW) as u64
            * cfg.get(imagecl::ZW) as u64
            <= imagecl::MAX_WORK_GROUP;
        prop_assert_eq!(imagecl::constraint().is_satisfied(&cfg), manual);
    }

    #[test]
    fn constrained_sampler_only_emits_feasible(seed in 0u64..50) {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = sample::constrained(&space, &cons, &mut rng);
        prop_assert!(cons.is_satisfied(&cfg));
    }
}

#[test]
fn uniform_sampling_is_roughly_uniform_over_small_space() {
    // Chi-squared-style sanity check on a 12-cell space: no cell should be
    // wildly over/under-represented after 12_000 draws.
    let space = ParamSpace::new(vec![Param::new("a", 0, 3), Param::new("b", 0, 2)]);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut counts = vec![0u32; space.size() as usize];
    for _ in 0..12_000 {
        let cfg = sample::uniform(&space, &mut rng);
        counts[space.index_of(&cfg) as usize] += 1;
    }
    let expected = 1_000.0;
    for (i, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expected).abs() / expected;
        assert!(
            dev < 0.15,
            "cell {i} count {c} deviates {dev:.2} from uniform"
        );
    }
}

#[test]
fn feasible_fraction_matches_constant() {
    // Monte-Carlo estimate of the feasible fraction should be close to the
    // exact FEASIBLE_SIZE / size ratio (~0.918).
    let space = imagecl::space();
    let cons = imagecl::constraint();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let n = 20_000;
    let feasible = sample::uniform_many(&space, n, &mut rng)
        .iter()
        .filter(|c| cons.is_satisfied(c))
        .count();
    let observed = feasible as f64 / n as f64;
    let exact = imagecl::FEASIBLE_SIZE as f64 / space.size() as f64;
    assert!(
        (observed - exact).abs() < 0.01,
        "observed {observed:.3} vs exact {exact:.3}"
    );
}

#[test]
fn config_display_and_conversion_interop() {
    let cfg = Configuration::from([1, 2, 3, 4, 5, 6]);
    let ic = imagecl::ImageClConfig::from_configuration(&cfg);
    assert_eq!(ic.coarsen, (1, 2, 3));
    assert_eq!(ic.work_group, (4, 5, 6));
    assert_eq!(cfg.to_string(), "(1, 2, 3, 4, 5, 6)");
}
