//! The product space of all tuning parameters.

use crate::config::Configuration;
use crate::param::Param;
use serde::{Deserialize, Serialize};

/// An ordered collection of [`Param`]s and the mixed-radix bijection
/// between flat indices `0..size()` and [`Configuration`]s.
///
/// The first declared parameter is the *fastest-varying* digit: indices
/// `0, 1, 2, …` step parameter 0 through its range before parameter 1
/// advances. This makes exhaustive scans cache-friendly for models keyed
/// on the leading parameters and gives random index sampling a uniform
/// distribution over configurations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpace {
    params: Vec<Param>,
}

impl ParamSpace {
    /// Builds a space from an ordered parameter list.
    pub fn new(params: Vec<Param>) -> Self {
        ParamSpace { params }
    }

    /// The ordered parameters.
    #[inline]
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Number of tuning parameters (the dimensionality).
    #[inline]
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// Total number of configurations (the product of cardinalities).
    pub fn size(&self) -> u64 {
        self.params.iter().map(Param::cardinality).product()
    }

    /// `true` when every value of `cfg` lies in its parameter's range and
    /// the arity matches.
    pub fn contains(&self, cfg: &Configuration) -> bool {
        cfg.len() == self.dims()
            && self
                .params
                .iter()
                .zip(cfg.values())
                .all(|(p, &v)| p.contains(v))
    }

    /// Maps a configuration to its flat index.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not an element of the space.
    pub fn index_of(&self, cfg: &Configuration) -> u64 {
        assert!(self.contains(cfg), "configuration {cfg} not in space");
        let mut index = 0u64;
        let mut stride = 1u64;
        for (p, &v) in self.params.iter().zip(cfg.values()) {
            index += p.ordinal(v) * stride;
            stride *= p.cardinality();
        }
        index
    }

    /// Maps a flat index to its configuration. Inverse of
    /// [`ParamSpace::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    pub fn config_at(&self, index: u64) -> Configuration {
        assert!(index < self.size(), "index {index} out of range");
        let mut rem = index;
        let mut values = Vec::with_capacity(self.dims());
        for p in &self.params {
            let card = p.cardinality();
            values.push(p.value_at(rem % card));
            rem /= card;
        }
        Configuration::new(values)
    }

    /// Normalizes a configuration into `[0,1]^d` features for surrogate
    /// models, one dimension per parameter.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match.
    pub fn to_unit_features(&self, cfg: &Configuration) -> Vec<f64> {
        assert_eq!(cfg.len(), self.dims(), "arity mismatch");
        self.params
            .iter()
            .zip(cfg.values())
            .map(|(p, &v)| p.to_unit(v))
            .collect()
    }

    /// Snaps a vector of unit-interval coordinates back to the nearest
    /// configuration (inverse of [`ParamSpace::to_unit_features`] up to
    /// rounding). Coordinates outside `[0,1]` are clamped.
    pub fn from_unit_features(&self, feats: &[f64]) -> Configuration {
        assert_eq!(feats.len(), self.dims(), "arity mismatch");
        let values = self
            .params
            .iter()
            .zip(feats)
            .map(|(p, &f)| {
                let f = f.clamp(0.0, 1.0);
                let span = (p.hi() - p.lo()) as f64;
                p.lo() + (f * span).round() as u32
            })
            .collect();
        Configuration::new(values)
    }

    /// Iterator over every configuration in index order. On the paper's
    /// space this is 2,097,152 items — use for exhaustive oracle scans only.
    pub fn iter(&self) -> impl Iterator<Item = Configuration> + '_ {
        (0..self.size()).map(move |i| self.config_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ParamSpace {
        ParamSpace::new(vec![
            Param::new("a", 1, 3),
            Param::new("b", 0, 1),
            Param::new("c", 5, 6),
        ])
    }

    #[test]
    fn size_is_product() {
        assert_eq!(small_space().size(), 3 * 2 * 2);
    }

    #[test]
    fn index_bijection_round_trips() {
        let s = small_space();
        for i in 0..s.size() {
            let cfg = s.config_at(i);
            assert!(s.contains(&cfg));
            assert_eq!(s.index_of(&cfg), i);
        }
    }

    #[test]
    fn first_param_varies_fastest() {
        let s = small_space();
        assert_eq!(s.config_at(0).values(), &[1, 0, 5]);
        assert_eq!(s.config_at(1).values(), &[2, 0, 5]);
        assert_eq!(s.config_at(3).values(), &[1, 1, 5]);
    }

    #[test]
    fn contains_rejects_wrong_arity_and_range() {
        let s = small_space();
        assert!(!s.contains(&Configuration::from([1, 0])));
        assert!(!s.contains(&Configuration::from([4, 0, 5])));
        assert!(s.contains(&Configuration::from([3, 1, 6])));
    }

    #[test]
    #[should_panic(expected = "not in space")]
    fn index_of_rejects_foreign_config() {
        small_space().index_of(&Configuration::from([9, 9, 9]));
    }

    #[test]
    fn unit_features_round_trip() {
        let s = small_space();
        for i in 0..s.size() {
            let cfg = s.config_at(i);
            let feats = s.to_unit_features(&cfg);
            assert!(feats.iter().all(|f| (0.0..=1.0).contains(f)));
            assert_eq!(s.from_unit_features(&feats), cfg);
        }
    }

    #[test]
    fn from_unit_features_clamps() {
        let s = small_space();
        let cfg = s.from_unit_features(&[-3.0, 7.0, 0.5]);
        assert!(s.contains(&cfg));
        assert_eq!(cfg.values()[0], 1);
        assert_eq!(cfg.values()[1], 1);
    }

    #[test]
    fn iter_covers_space_once() {
        let s = small_space();
        let seen: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(seen.len() as u64, s.size());
    }
}
