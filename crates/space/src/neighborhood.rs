//! ±1 per-dimension neighbourhoods over the integer lattice.
//!
//! The metaheuristics move locally: GA mutation nudges one gene, simulated
//! annealing proposes a neighbour, and the local-search refinement used by
//! the surrogate-prediction step walks the lattice. All of those share the
//! neighbourhood notion defined here: configurations differing by exactly
//! ±1 in exactly one parameter (clamped to the range).

use crate::config::Configuration;
use crate::spec::ParamSpace;
use rand::Rng;

/// All lattice neighbours of `cfg`: for each dimension, the configurations
/// with that value incremented and decremented by one (when in range).
///
/// The result has between `d` (at a corner of the box) and `2d` entries
/// and never contains `cfg` itself.
pub fn neighbors(space: &ParamSpace, cfg: &Configuration) -> Vec<Configuration> {
    let mut out = Vec::with_capacity(2 * space.dims());
    for (k, p) in space.params().iter().enumerate() {
        let v = cfg.get(k);
        if v > p.lo() {
            let mut c = cfg.clone();
            c.values_mut()[k] = v - 1;
            out.push(c);
        }
        if v < p.hi() {
            let mut c = cfg.clone();
            c.values_mut()[k] = v + 1;
            out.push(c);
        }
    }
    out
}

/// A uniformly random lattice neighbour of `cfg`.
///
/// # Panics
///
/// Panics if the space has no neighbours (every parameter has cardinality
/// one) — such a space has a single configuration and nothing to search.
pub fn random_neighbor<R: Rng + ?Sized>(
    space: &ParamSpace,
    cfg: &Configuration,
    rng: &mut R,
) -> Configuration {
    let candidates = neighbors(space, cfg);
    assert!(
        !candidates.is_empty(),
        "degenerate space: no neighbouring configurations exist"
    );
    let i = rng.gen_range(0..candidates.len());
    candidates.into_iter().nth(i).expect("index in range")
}

/// Replaces dimension `k` of `cfg` with a uniformly random in-range value
/// *different from the current one* — the GA's per-gene mutation operator.
///
/// # Panics
///
/// Panics if parameter `k` has cardinality one (no different value exists).
pub fn mutate_dimension<R: Rng + ?Sized>(
    space: &ParamSpace,
    cfg: &mut Configuration,
    k: usize,
    rng: &mut R,
) {
    let p = &space.params()[k];
    assert!(
        p.cardinality() > 1,
        "cannot mutate single-valued parameter {}",
        p.name()
    );
    let current = cfg.get(k);
    loop {
        let v = rng.gen_range(p.lo()..=p.hi());
        if v != current {
            cfg.values_mut()[k] = v;
            return;
        }
    }
}

/// Hamming distance between two configurations: the number of parameters
/// on which they differ. Used by population-diversity diagnostics.
///
/// # Panics
///
/// Panics if arities differ.
pub fn hamming(a: &Configuration, b: &Configuration) -> usize {
    assert_eq!(a.len(), b.len(), "hamming: arity mismatch");
    a.values()
        .iter()
        .zip(b.values())
        .filter(|(x, y)| x != y)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![Param::new("a", 1, 4), Param::new("b", 1, 2)])
    }

    #[test]
    fn interior_point_has_2d_neighbors() {
        let s = ParamSpace::new(vec![Param::new("a", 1, 5), Param::new("b", 1, 5)]);
        let n = neighbors(&s, &Configuration::from([3, 3]));
        assert_eq!(n.len(), 4);
        assert!(n.contains(&Configuration::from([2, 3])));
        assert!(n.contains(&Configuration::from([4, 3])));
        assert!(n.contains(&Configuration::from([3, 2])));
        assert!(n.contains(&Configuration::from([3, 4])));
    }

    #[test]
    fn corner_point_has_d_neighbors() {
        let s = space();
        let n = neighbors(&s, &Configuration::from([1, 1]));
        assert_eq!(n.len(), 2);
        assert!(!n.contains(&Configuration::from([1, 1])));
    }

    #[test]
    fn all_neighbors_differ_in_exactly_one_dim() {
        let s = space();
        let c = Configuration::from([2, 2]);
        for n in neighbors(&s, &c) {
            assert_eq!(hamming(&c, &n), 1);
            assert!(s.contains(&n));
        }
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        let s = space();
        let c = Configuration::from([2, 1]);
        let all = neighbors(&s, &c);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let n = random_neighbor(&s, &c, &mut rng);
            assert!(all.contains(&n));
        }
    }

    #[test]
    fn mutation_changes_exactly_that_gene() {
        let s = space();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let mut c = Configuration::from([2, 1]);
            mutate_dimension(&s, &mut c, 0, &mut rng);
            assert_ne!(c.get(0), 2);
            assert_eq!(c.get(1), 1);
            assert!(s.contains(&c));
        }
    }

    #[test]
    #[should_panic(expected = "single-valued")]
    fn mutation_rejects_degenerate_param() {
        let s = ParamSpace::new(vec![Param::new("a", 3, 3)]);
        let mut c = Configuration::from([3]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        mutate_dimension(&s, &mut c, 0, &mut rng);
    }

    #[test]
    fn hamming_counts_differences() {
        assert_eq!(
            hamming(
                &Configuration::from([1, 2, 3]),
                &Configuration::from([1, 9, 4])
            ),
            2
        );
        assert_eq!(
            hamming(&Configuration::from([1, 2]), &Configuration::from([1, 2])),
            0
        );
    }
}
