//! Deterministic samplers over a [`ParamSpace`].
//!
//! Every sampler takes an explicit [`Rng`] so experiments are reproducible
//! from a seed; the experiment harness derives independent streams per
//! (algorithm, benchmark, architecture, sample size, repetition).

use crate::config::Configuration;
use crate::constraint::Constraint;
use crate::spec::ParamSpace;
use rand::seq::SliceRandom;
use rand::Rng;

/// Draws one configuration uniformly at random from the whole space
/// (ignoring constraints).
pub fn uniform<R: Rng + ?Sized>(space: &ParamSpace, rng: &mut R) -> Configuration {
    let idx = rng.gen_range(0..space.size());
    space.config_at(idx)
}

/// Draws `n` configurations uniformly with replacement.
pub fn uniform_many<R: Rng + ?Sized>(
    space: &ParamSpace,
    n: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    (0..n).map(|_| uniform(space, rng)).collect()
}

/// Draws one configuration uniformly from the *feasible* subspace by
/// rejection sampling.
///
/// The paper generated "only executable configurations" for the non-SMBO
/// methods using the `Xw*Yw*Zw <= 256` constraint; rejection is exact and,
/// for that constraint, accepts ~93% of proposals, so the expected number
/// of tries is small.
///
/// # Panics
///
/// Panics after `10_000` consecutive rejections — a feasible region that
/// sparse indicates a mis-specified constraint, not bad luck.
pub fn constrained<R: Rng + ?Sized>(
    space: &ParamSpace,
    constraint: &dyn Constraint,
    rng: &mut R,
) -> Configuration {
    const MAX_TRIES: usize = 10_000;
    for _ in 0..MAX_TRIES {
        let cfg = uniform(space, rng);
        if constraint.is_satisfied(&cfg) {
            return cfg;
        }
    }
    panic!(
        "rejection sampler failed after {MAX_TRIES} tries; constraint `{}` too sparse",
        constraint.describe()
    );
}

/// Draws `n` feasible configurations with replacement.
pub fn constrained_many<R: Rng + ?Sized>(
    space: &ParamSpace,
    constraint: &dyn Constraint,
    n: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    (0..n)
        .map(|_| constrained(space, constraint, rng))
        .collect()
}

/// Latin-hypercube sample of `n` configurations.
///
/// Each parameter's range is cut into `n` equal strata and each stratum is
/// used exactly once per dimension (with independent random permutations),
/// which spreads a small initialization budget far more evenly than i.i.d.
/// uniform draws. Used by the Bayesian optimizers' design-of-experiments
/// initialization option.
pub fn latin_hypercube<R: Rng + ?Sized>(
    space: &ParamSpace,
    n: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    if n == 0 {
        return Vec::new();
    }
    let d = space.dims();
    // One shuffled stratum order per dimension.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        strata.push(order);
    }
    (0..n)
        .map(|i| {
            let feats: Vec<f64> = (0..d)
                .map(|k| {
                    // Uniform point inside stratum `strata[k][i]` of [0,1].
                    let s = strata[k][i] as f64;
                    (s + rng.gen::<f64>()) / n as f64
                })
                .collect();
            space.from_unit_features(&feats)
        })
        .collect()
}

/// Draws `n` *distinct* flat indices uniformly without replacement
/// (Floyd's algorithm). Used to subdivide the pre-generated 20k-sample
/// dataset into per-experiment subsets, mirroring the paper's pipeline.
///
/// # Panics
///
/// Panics if `n as u64 > limit`.
pub fn indices_without_replacement<R: Rng + ?Sized>(limit: u64, n: usize, rng: &mut R) -> Vec<u64> {
    assert!(
        n as u64 <= limit,
        "cannot draw {n} distinct values from {limit}"
    );
    // Floyd's algorithm: O(n) draws, O(n) memory, exact uniformity.
    let mut chosen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    for j in (limit - n as u64)..limit {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ProductAtMost;
    use crate::param::Param;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![Param::new("a", 1, 16), Param::new("b", 1, 8)])
    }

    #[test]
    fn uniform_stays_in_space() {
        let s = space();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(s.contains(&uniform(&s, &mut rng)));
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let s = space();
        let a = uniform_many(&s, 10, &mut ChaCha8Rng::seed_from_u64(7));
        let b = uniform_many(&s, 10, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = uniform_many(&s, 10, &mut ChaCha8Rng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn constrained_respects_constraint() {
        let s = space();
        let c = ProductAtMost::new(vec![0, 1], 16);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for cfg in constrained_many(&s, &c, 100, &mut rng) {
            assert!(cfg.get(0) as u64 * cfg.get(1) as u64 <= 16);
        }
    }

    #[test]
    fn latin_hypercube_spreads_strata() {
        let s = space();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 16;
        let samples = latin_hypercube(&s, n, &mut rng);
        assert_eq!(samples.len(), n);
        // With n strata over param "a" (cardinality 16), LHS must touch
        // many distinct values — far more than i.i.d. sampling's typical
        // collision-heavy draw. Require at least 12 distinct of 16.
        let distinct: std::collections::HashSet<u32> = samples.iter().map(|c| c.get(0)).collect();
        assert!(
            distinct.len() >= 12,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn latin_hypercube_empty_is_empty() {
        let s = space();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(latin_hypercube(&s, 0, &mut rng).is_empty());
    }

    #[test]
    fn floyd_draws_distinct_indices() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let picks = indices_without_replacement(100, 50, &mut rng);
        assert_eq!(picks.len(), 50);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 50);
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    fn floyd_full_draw_is_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut picks = indices_without_replacement(20, 20, &mut rng);
        picks.sort_unstable();
        assert_eq!(picks, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn floyd_rejects_oversized_request() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = indices_without_replacement(5, 6, &mut rng);
    }
}
