//! A single integer tuning parameter.

use serde::{Deserialize, Serialize};

/// One named integer tuning parameter with an inclusive range `[lo, hi]`.
///
/// All parameters in the study are small positive integers (coarsening
/// factors, work-group dimensions), so `u32` values suffice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    name: String,
    lo: u32,
    hi: u32,
}

impl Param {
    /// Creates a parameter spanning the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(name: impl Into<String>, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "parameter range must satisfy lo <= hi");
        Param {
            name: name.into(),
            lo,
            hi,
        }
    }

    /// Parameter name (e.g. `"Xt"` or `"Yw"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Smallest admissible value.
    #[inline]
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Largest admissible value.
    #[inline]
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// Number of admissible values.
    #[inline]
    pub fn cardinality(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }

    /// `true` when `v` lies in `[lo, hi]`.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        (self.lo..=self.hi).contains(&v)
    }

    /// Iterator over every admissible value, ascending.
    pub fn values(&self) -> impl Iterator<Item = u32> + '_ {
        self.lo..=self.hi
    }

    /// Maps a value to its zero-based ordinal within the range.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn ordinal(&self, v: u32) -> u64 {
        assert!(self.contains(v), "value {v} out of range for {}", self.name);
        (v - self.lo) as u64
    }

    /// Inverse of [`Param::ordinal`].
    ///
    /// # Panics
    ///
    /// Panics if `ord >= cardinality()`.
    #[inline]
    pub fn value_at(&self, ord: u64) -> u32 {
        assert!(ord < self.cardinality(), "ordinal {ord} out of range");
        self.lo + ord as u32
    }

    /// Normalizes a value into the unit interval: `lo -> 0.0`, `hi -> 1.0`.
    /// Single-value parameters map to `0.5`. Used to build surrogate-model
    /// features on a common scale.
    #[inline]
    pub fn to_unit(&self, v: u32) -> f64 {
        if self.hi == self.lo {
            return 0.5;
        }
        (v - self.lo) as f64 / (self.hi - self.lo) as f64
    }

    /// Clamps an arbitrary integer into the admissible range.
    #[inline]
    pub fn clamp(&self, v: i64) -> u32 {
        v.clamp(self.lo as i64, self.hi as i64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_counts_inclusive_range() {
        assert_eq!(Param::new("x", 1, 16).cardinality(), 16);
        assert_eq!(Param::new("x", 5, 5).cardinality(), 1);
    }

    #[test]
    fn ordinal_round_trips() {
        let p = Param::new("x", 3, 9);
        for v in p.lo()..=p.hi() {
            assert_eq!(p.value_at(p.ordinal(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ordinal_rejects_outside() {
        Param::new("x", 1, 8).ordinal(9);
    }

    #[test]
    fn unit_normalization_endpoints() {
        let p = Param::new("x", 1, 16);
        assert_eq!(p.to_unit(1), 0.0);
        assert_eq!(p.to_unit(16), 1.0);
        assert_eq!(Param::new("y", 4, 4).to_unit(4), 0.5);
    }

    #[test]
    fn clamp_bounds() {
        let p = Param::new("x", 2, 6);
        assert_eq!(p.clamp(-5), 2);
        assert_eq!(p.clamp(100), 6);
        assert_eq!(p.clamp(4), 4);
    }

    #[test]
    fn values_iterates_all() {
        let p = Param::new("x", 1, 4);
        assert_eq!(p.values().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn rejects_inverted_range() {
        let _ = Param::new("x", 5, 4);
    }
}
