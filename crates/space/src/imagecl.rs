//! The exact search space of the paper.
//!
//! Six tuning parameters, in declaration order:
//!
//! | index | name | range | meaning |
//! |---|---|---|---|
//! | 0 | `Xt` | 1..=16 | thread coarsening in X (elements per thread) |
//! | 1 | `Yt` | 1..=16 | thread coarsening in Y |
//! | 2 | `Zt` | 1..=16 | thread coarsening in Z |
//! | 3 | `Xw` | 1..=8  | work-group size in X |
//! | 4 | `Yw` | 1..=8  | work-group size in Y |
//! | 5 | `Zw` | 1..=8  | work-group size in Z |
//!
//! Total: `16^3 * 8^3 = 2_097_152` configurations. The a-priori
//! constraint `Xw*Yw*Zw <= 256` (the OpenCL max work-group size on the
//! studied GPUs) is available separately because the paper only applied
//! it to the non-SMBO methods.

use crate::config::Configuration;
use crate::constraint::ProductAtMost;
use crate::param::Param;
use crate::spec::ParamSpace;

/// Index of the `Xt` coarsening parameter.
pub const XT: usize = 0;
/// Index of the `Yt` coarsening parameter.
pub const YT: usize = 1;
/// Index of the `Zt` coarsening parameter.
pub const ZT: usize = 2;
/// Index of the `Xw` work-group parameter.
pub const XW: usize = 3;
/// Index of the `Yw` work-group parameter.
pub const YW: usize = 4;
/// Index of the `Zw` work-group parameter.
pub const ZW: usize = 5;

/// Maximum work-group volume the constraint admits.
pub const MAX_WORK_GROUP: u64 = 256;

/// The paper's 6-parameter search space.
pub fn space() -> ParamSpace {
    ParamSpace::new(vec![
        Param::new("Xt", 1, 16),
        Param::new("Yt", 1, 16),
        Param::new("Zt", 1, 16),
        Param::new("Xw", 1, 8),
        Param::new("Yw", 1, 8),
        Param::new("Zw", 1, 8),
    ])
}

/// The paper's a-priori feasibility constraint: `Xw*Yw*Zw <= 256`.
pub fn constraint() -> ProductAtMost {
    ProductAtMost::new(vec![XW, YW, ZW], MAX_WORK_GROUP)
}

/// Convenience accessors for the six semantic fields of a configuration
/// drawn from [`space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageClConfig {
    /// Thread-coarsening factors `(Xt, Yt, Zt)`.
    pub coarsen: (u32, u32, u32),
    /// Work-group dimensions `(Xw, Yw, Zw)`.
    pub work_group: (u32, u32, u32),
}

impl ImageClConfig {
    /// Destructures a raw configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` does not have exactly six parameters.
    pub fn from_configuration(cfg: &Configuration) -> Self {
        assert_eq!(cfg.len(), 6, "ImageCL configurations have 6 parameters");
        ImageClConfig {
            coarsen: (cfg.get(XT), cfg.get(YT), cfg.get(ZT)),
            work_group: (cfg.get(XW), cfg.get(YW), cfg.get(ZW)),
        }
    }

    /// Total elements each thread processes.
    pub fn coarsening_volume(&self) -> u64 {
        self.coarsen.0 as u64 * self.coarsen.1 as u64 * self.coarsen.2 as u64
    }

    /// Threads per work-group.
    pub fn work_group_volume(&self) -> u64 {
        self.work_group.0 as u64 * self.work_group.1 as u64 * self.work_group.2 as u64
    }

    /// `true` when the work-group volume respects [`MAX_WORK_GROUP`].
    pub fn is_launchable(&self) -> bool {
        self.work_group_volume() <= MAX_WORK_GROUP
    }
}

/// Number of feasible configurations under [`constraint`]. Computed once
/// by exhaustive scan in the tests and recorded here as a constant for
/// cheap assertions elsewhere: of the `8^3 = 512` work-group shapes, 480
/// satisfy the volume limit, so `16^3 * 480 = 1_966_080`.
pub const FEASIBLE_SIZE: u64 = 1_966_080;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    #[test]
    fn space_matches_paper_cardinality() {
        assert_eq!(space().size(), 2_097_152);
        assert_eq!(space().dims(), 6);
    }

    #[test]
    fn constraint_boundary_cases() {
        let c = constraint();
        // 8*8*4 = 256 allowed, 8*8*5 = 320 rejected.
        assert!(c.is_satisfied(&Configuration::from([1, 1, 1, 8, 8, 4])));
        assert!(!c.is_satisfied(&Configuration::from([1, 1, 1, 8, 8, 5])));
    }

    #[test]
    fn feasible_size_constant_is_exact() {
        // Count feasible work-group shapes exhaustively; coarsening dims
        // are unconstrained so multiply by 16^3.
        let mut wg_ok = 0u64;
        for x in 1..=8u64 {
            for y in 1..=8u64 {
                for z in 1..=8u64 {
                    if x * y * z <= MAX_WORK_GROUP {
                        wg_ok += 1;
                    }
                }
            }
        }
        assert_eq!(wg_ok * 16 * 16 * 16, FEASIBLE_SIZE);
    }

    #[test]
    fn image_cl_config_accessors() {
        let cfg = Configuration::from([2, 4, 1, 8, 2, 2]);
        let ic = ImageClConfig::from_configuration(&cfg);
        assert_eq!(ic.coarsen, (2, 4, 1));
        assert_eq!(ic.work_group, (8, 2, 2));
        assert_eq!(ic.coarsening_volume(), 8);
        assert_eq!(ic.work_group_volume(), 32);
        assert!(ic.is_launchable());
    }

    #[test]
    fn launchable_matches_constraint() {
        let s = space();
        let c = constraint();
        // Spot-check a grid of configurations rather than all 2M.
        for idx in (0..s.size()).step_by(10_007) {
            let cfg = s.config_at(idx);
            let ic = ImageClConfig::from_configuration(&cfg);
            assert_eq!(ic.is_launchable(), c.is_satisfied(&cfg));
        }
    }

    #[test]
    fn parameter_indices_line_up() {
        let s = space();
        assert_eq!(s.params()[XT].name(), "Xt");
        assert_eq!(s.params()[ZW].name(), "Zw");
        assert_eq!(s.params()[XW].hi(), 8);
        assert_eq!(s.params()[ZT].hi(), 16);
    }
}
