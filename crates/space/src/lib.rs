//! Search-space substrate for the autotuning study.
//!
//! The paper tunes 6 integer parameters — three thread-coarsening factors
//! `{X,Y,Z}_t ∈ [1..16]` and three work-group dimensions `{X,Y,Z}_w ∈
//! [1..8]` — giving a space of `16^3 * 8^3 = 2_097_152` configurations,
//! with the a-priori constraint that the work-group volume must not exceed
//! 256 threads.
//!
//! This crate provides everything the search techniques and the simulator
//! need to talk about that space:
//!
//! * [`Param`] / [`ParamSpace`] — named integer ranges and their product
//!   space, with a mixed-radix bijection between configurations and flat
//!   indices (so random search can sample indices and exhaustive scans can
//!   iterate the whole space).
//! * [`Configuration`] — one point of the space.
//! * [`constraint`] — boolean feasibility predicates, notably the paper's
//!   `Xw*Yw*Zw <= 256` work-group volume limit.
//! * [`sample`] — uniform, constrained (rejection) and Latin-hypercube
//!   samplers, all deterministic given a seed.
//! * [`neighborhood`] — ±1 per-dimension neighbourhoods used by the
//!   metaheuristics (GA mutation, simulated annealing moves).
//! * [`imagecl`] — the exact space and constraint of the paper.
//!
//! # Example
//!
//! ```
//! use autotune_space::{imagecl, Constraint};
//!
//! let space = imagecl::space();
//! assert_eq!(space.size(), 2_097_152);
//! let cfg = space.config_at(0);
//! assert_eq!(cfg.values(), &[1, 1, 1, 1, 1, 1]);
//! assert!(imagecl::constraint().is_satisfied(&cfg));
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod constraint;
pub mod imagecl;
pub mod neighborhood;
pub mod param;
pub mod sample;
pub mod spec;

pub use config::Configuration;
pub use constraint::{Constraint, ConstraintSet, ProductAtMost};
pub use param::Param;
pub use spec::ParamSpace;
