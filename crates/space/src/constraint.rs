//! Feasibility constraints over configurations.
//!
//! The paper's non-SMBO methods (random search, random forest, GA) were
//! given a *constraint specification* — only work-group shapes whose
//! volume is at most 256 threads were ever generated — while the SMBO
//! libraries offered no such hook and had to discover infeasibility the
//! hard way. These types model that design point explicitly so the
//! harness (and the ablation benches) can toggle it per algorithm.

use crate::config::Configuration;
use std::fmt;

/// A boolean feasibility predicate over configurations.
pub trait Constraint: fmt::Debug + Send + Sync {
    /// `true` when the configuration is admissible.
    fn is_satisfied(&self, cfg: &Configuration) -> bool;

    /// Human-readable description for logs and reports.
    fn describe(&self) -> String;
}

/// Requires the product of the values at `dims` to be at most `limit`.
///
/// The paper's instance is `ProductAtMost { dims: [3,4,5], limit: 256 }`:
/// the work-group volume `Xw*Yw*Zw` must not exceed 256 threads (the
/// OpenCL max work-group size on the studied GPUs).
#[derive(Debug, Clone)]
pub struct ProductAtMost {
    dims: Vec<usize>,
    limit: u64,
}

impl ProductAtMost {
    /// Creates the constraint over the given parameter indices.
    pub fn new(dims: Vec<usize>, limit: u64) -> Self {
        ProductAtMost { dims, limit }
    }

    /// Parameter indices entering the product.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Upper bound on the product.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

impl Constraint for ProductAtMost {
    fn is_satisfied(&self, cfg: &Configuration) -> bool {
        let mut product = 1u64;
        for &d in &self.dims {
            product = product.saturating_mul(cfg.get(d) as u64);
            if product > self.limit {
                return false;
            }
        }
        true
    }

    fn describe(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(|d| format!("p{d}")).collect();
        format!("{} <= {}", dims.join("*"), self.limit)
    }
}

/// Conjunction of constraints; empty set accepts everything.
#[derive(Debug, Default)]
pub struct ConstraintSet {
    constraints: Vec<Box<dyn Constraint>>,
}

impl ConstraintSet {
    /// An empty (always-satisfied) set.
    pub fn none() -> Self {
        ConstraintSet::default()
    }

    /// Builds a set from boxed constraints.
    pub fn new(constraints: Vec<Box<dyn Constraint>>) -> Self {
        ConstraintSet { constraints }
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: Box<dyn Constraint>) {
        self.constraints.push(c);
    }

    /// Number of constraints in the conjunction.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` when no constraints are registered.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

impl Constraint for ConstraintSet {
    fn is_satisfied(&self, cfg: &Configuration) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied(cfg))
    }

    fn describe(&self) -> String {
        if self.constraints.is_empty() {
            return "true".to_string();
        }
        self.constraints
            .iter()
            .map(|c| c.describe())
            .collect::<Vec<_>>()
            .join(" && ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_constraint_boundary() {
        let c = ProductAtMost::new(vec![0, 1, 2], 256);
        assert!(c.is_satisfied(&Configuration::from([8, 8, 4]))); // 256 exactly
        assert!(!c.is_satisfied(&Configuration::from([8, 8, 5]))); // 320
        assert!(c.is_satisfied(&Configuration::from([1, 1, 1])));
    }

    #[test]
    fn product_constraint_only_reads_named_dims() {
        let c = ProductAtMost::new(vec![1], 4);
        assert!(c.is_satisfied(&Configuration::from([100, 4, 100])));
        assert!(!c.is_satisfied(&Configuration::from([1, 5, 1])));
    }

    #[test]
    fn product_does_not_overflow() {
        let c = ProductAtMost::new(vec![0, 1], 10);
        let huge = Configuration::from([u32::MAX, u32::MAX]);
        assert!(!c.is_satisfied(&huge));
    }

    #[test]
    fn empty_set_accepts_everything() {
        let s = ConstraintSet::none();
        assert!(s.is_empty());
        assert!(s.is_satisfied(&Configuration::from([9, 9, 9])));
        assert_eq!(s.describe(), "true");
    }

    #[test]
    fn set_is_conjunction() {
        let mut s = ConstraintSet::none();
        s.push(Box::new(ProductAtMost::new(vec![0], 5)));
        s.push(Box::new(ProductAtMost::new(vec![1], 3)));
        assert_eq!(s.len(), 2);
        assert!(s.is_satisfied(&Configuration::from([5, 3])));
        assert!(!s.is_satisfied(&Configuration::from([6, 3])));
        assert!(!s.is_satisfied(&Configuration::from([5, 4])));
        assert!(s.describe().contains("&&"));
    }
}
