//! A single point of the search space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One configuration: a value for every tuning parameter, in the order the
/// parameters were declared in the owning [`ParamSpace`](crate::ParamSpace).
///
/// Configurations are small (6 values in the paper's space), so they are
/// cheap to clone and hash; tuners pass them around by value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    values: Vec<u32>,
}

impl Configuration {
    /// Wraps a value vector.
    pub fn new(values: Vec<u32>) -> Self {
        Configuration { values }
    }

    /// Borrow of the raw values.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Mutable borrow of the raw values (used by GA crossover/mutation).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [u32] {
        &mut self.values
    }

    /// Number of parameters.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` for the empty configuration (zero parameters).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.values[i]
    }

    /// Values as `f64` features (unnormalized). Surrogate models that want
    /// unit-scaled features should go through
    /// [`ParamSpace::to_unit_features`](crate::ParamSpace::to_unit_features).
    pub fn as_f64(&self) -> Vec<f64> {
        self.values.iter().map(|&v| v as f64).collect()
    }
}

impl From<Vec<u32>> for Configuration {
    fn from(values: Vec<u32>) -> Self {
        Configuration::new(values)
    }
}

impl From<&[u32]> for Configuration {
    fn from(values: &[u32]) -> Self {
        Configuration::new(values.to_vec())
    }
}

impl<const N: usize> From<[u32; N]> for Configuration {
    fn from(values: [u32; N]) -> Self {
        Configuration::new(values.to_vec())
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let c: Configuration = [1, 2, 3].into();
        assert_eq!(c.values(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.get(1), 2);
    }

    #[test]
    fn display_is_tuple_like() {
        let c = Configuration::from([4, 8, 1]);
        assert_eq!(c.to_string(), "(4, 8, 1)");
    }

    #[test]
    fn as_f64_preserves_values() {
        let c = Configuration::from([3, 7]);
        assert_eq!(c.as_f64(), vec![3.0, 7.0]);
    }

    #[test]
    fn hash_and_eq_by_value() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Configuration::from([1, 2]));
        assert!(set.contains(&Configuration::from([1, 2])));
        assert!(!set.contains(&Configuration::from([2, 1])));
    }
}
