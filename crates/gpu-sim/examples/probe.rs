//! Developer calibration probe: strided oracle scan of every
//! (benchmark, architecture) pair, printing the best configuration and
//! time. Used while calibrating the performance model; kept as a quick
//! landscape sanity check.

use gpu_sim::{arch, kernels::Benchmark, model};
fn main() {
    let space = autotune_space::imagecl::space();
    for bench in Benchmark::ALL {
        for a in arch::study_architectures() {
            let k = bench.model();
            let mut best = f64::INFINITY;
            let mut bc = None;
            let mut idx = 0u64;
            while idx < space.size() {
                let c = space.config_at(idx);
                let t = model::kernel_time_ms(k.as_ref(), &a, &c);
                if t < best {
                    best = t;
                    bc = Some(c);
                }
                idx += 97;
            }
            println!(
                "{:>10} {:>9}: best {:>8.3} ms at {}",
                bench.name(),
                a.name,
                best,
                bc.unwrap()
            );
        }
    }
}
