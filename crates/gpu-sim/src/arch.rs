//! GPU architecture descriptors.
//!
//! The three presets mirror the paper's testbed — GTX 980 (Maxwell,
//! 2014), Titan V (Volta, 2017) and RTX Titan (Turing, 2019) — using the
//! GPUs' published specifications. The latency-hiding thresholds
//! (`warps_for_peak_*`) are model calibration constants chosen from the
//! microbenchmark literature: newer architectures reach peak issue rate
//! and bandwidth with fewer resident warps.

use serde::{Deserialize, Serialize};

/// Static description of one GPU architecture, as consumed by the
/// performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArchitecture {
    /// Marketing name, e.g. `"RTX Titan"`.
    pub name: String,
    /// Microarchitecture family, e.g. `"Turing"`.
    pub family: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (32 on every NVIDIA part studied).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Register allocation granularity (registers per warp allocation unit).
    pub register_alloc_unit: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u32,
    /// Shared memory allocation granularity, bytes.
    pub shared_mem_alloc_unit: u32,
    /// Shader clock, GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth, GB/s.
    pub dram_bandwidth_gbps: f64,
    /// FP32 lanes (CUDA cores) per SM — issue slots per cycle.
    pub fp32_lanes_per_sm: u32,
    /// L2 cache size, bytes.
    pub l2_size_bytes: u64,
    /// Resident warps per SM needed to saturate the FP32 pipelines.
    pub warps_for_peak_compute: u32,
    /// Resident warps per SM needed to saturate DRAM bandwidth.
    pub warps_for_peak_bandwidth: u32,
    /// Fraction of redundant (cache-missed) re-fetches absorbed by the
    /// L1/L2 hierarchy in strided access patterns, `0..1`; newer parts
    /// with larger caches absorb more.
    pub cache_absorption: f64,
    /// Kernel launch overhead, milliseconds.
    pub launch_overhead_ms: f64,
    /// Host↔device PCIe bandwidth, GB/s (excluded from kernel timing).
    pub pcie_bandwidth_gbps: f64,
}

impl GpuArchitecture {
    /// Peak FP32 throughput in operations per second.
    pub fn peak_flops(&self) -> f64 {
        self.sm_count as f64 * self.fp32_lanes_per_sm as f64 * self.clock_ghz * 1e9
    }

    /// Machine balance in FP32 ops per DRAM byte; kernels with higher
    /// arithmetic intensity are compute-bound on this part.
    pub fn balance_flops_per_byte(&self) -> f64 {
        self.peak_flops() / (self.dram_bandwidth_gbps * 1e9)
    }

    /// Maximum resident threads across the whole device.
    pub fn max_resident_threads(&self) -> u64 {
        self.sm_count as u64 * self.max_threads_per_sm as u64
    }
}

/// GTX 980 — Maxwell GM204, released fall 2014 (the paper's oldest part).
pub fn gtx_980() -> GpuArchitecture {
    GpuArchitecture {
        name: "GTX 980".into(),
        family: "Maxwell".into(),
        sm_count: 16,
        warp_size: 32,
        max_threads_per_sm: 2048,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        max_threads_per_block: 1024,
        registers_per_sm: 65_536,
        register_alloc_unit: 256,
        shared_mem_per_sm: 98_304, // 96 KiB
        shared_mem_alloc_unit: 256,
        clock_ghz: 1.216,
        dram_bandwidth_gbps: 224.0,
        fp32_lanes_per_sm: 128,
        l2_size_bytes: 2 * 1024 * 1024,
        // Maxwell's deep pipelines and GDDR5 latency need many warps.
        warps_for_peak_compute: 16,
        warps_for_peak_bandwidth: 36,
        cache_absorption: 0.55,
        launch_overhead_ms: 0.007,
        pcie_bandwidth_gbps: 12.0, // PCIe 3.0 x16 effective
    }
}

/// Titan V — Volta GV100, released 2017.
pub fn titan_v() -> GpuArchitecture {
    GpuArchitecture {
        name: "Titan V".into(),
        family: "Volta".into(),
        sm_count: 80,
        warp_size: 32,
        max_threads_per_sm: 2048,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
        max_threads_per_block: 1024,
        registers_per_sm: 65_536,
        register_alloc_unit: 256,
        shared_mem_per_sm: 98_304, // up to 96 KiB configurable
        shared_mem_alloc_unit: 256,
        clock_ghz: 1.455,
        dram_bandwidth_gbps: 652.8, // HBM2
        fp32_lanes_per_sm: 64,
        l2_size_bytes: 4_718_592, // 4.5 MiB
        warps_for_peak_compute: 8,
        warps_for_peak_bandwidth: 24,
        cache_absorption: 0.70,
        launch_overhead_ms: 0.006,
        pcie_bandwidth_gbps: 12.0,
    }
}

/// RTX Titan — Turing TU102, released 2018/2019 (the paper's newest part).
pub fn rtx_titan() -> GpuArchitecture {
    GpuArchitecture {
        name: "RTX Titan".into(),
        family: "Turing".into(),
        sm_count: 72,
        warp_size: 32,
        max_threads_per_sm: 1024, // Turing halves resident threads per SM
        max_warps_per_sm: 32,
        max_blocks_per_sm: 16,
        max_threads_per_block: 1024,
        registers_per_sm: 65_536,
        register_alloc_unit: 256,
        shared_mem_per_sm: 65_536, // 64 KiB
        shared_mem_alloc_unit: 256,
        clock_ghz: 1.770,
        dram_bandwidth_gbps: 672.0, // GDDR6
        fp32_lanes_per_sm: 64,
        l2_size_bytes: 6 * 1024 * 1024,
        warps_for_peak_compute: 8,
        warps_for_peak_bandwidth: 22,
        cache_absorption: 0.75,
        launch_overhead_ms: 0.005,
        pcie_bandwidth_gbps: 12.0,
    }
}

/// All three study architectures, oldest first — the iteration order used
/// by the experiment grid.
pub fn study_architectures() -> Vec<GpuArchitecture> {
    vec![gtx_980(), titan_v(), rtx_titan()]
}

/// Looks an architecture up by (case-insensitive) name; `None` when the
/// name matches no preset.
pub fn by_name(name: &str) -> Option<GpuArchitecture> {
    study_architectures()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_published_core_counts() {
        assert_eq!(gtx_980().sm_count * gtx_980().fp32_lanes_per_sm, 2048);
        assert_eq!(titan_v().sm_count * titan_v().fp32_lanes_per_sm, 5120);
        assert_eq!(rtx_titan().sm_count * rtx_titan().fp32_lanes_per_sm, 4608);
    }

    #[test]
    fn peak_flops_are_in_the_published_ballpark() {
        // peak_flops counts FP32 *issue slots* per second; the marketing
        // TFLOPS numbers (GTX 980 ~5, Titan V ~14.9, RTX Titan ~16.3)
        // count an FMA as two flops, i.e. exactly 2x these values.
        assert!((gtx_980().peak_flops() / 1e12 - 2.49).abs() < 0.2);
        assert!((titan_v().peak_flops() / 1e12 - 7.45).abs() < 0.3);
        assert!((rtx_titan().peak_flops() / 1e12 - 8.15).abs() < 0.3);
    }

    #[test]
    fn machine_balances_sit_in_the_usual_gpu_band() {
        // All three parts balance near 11-12 issue-slots per DRAM byte
        // (the vendor kept compute and bandwidth in rough proportion);
        // Turing is the most compute-rich of the three.
        let m = gtx_980().balance_flops_per_byte();
        let v = titan_v().balance_flops_per_byte();
        let t = rtx_titan().balance_flops_per_byte();
        for (name, b) in [("maxwell", m), ("volta", v), ("turing", t)] {
            assert!((10.0..13.5).contains(&b), "{name} balance {b:.1}");
        }
        assert!(t > v && t > m, "turing {t:.1} should be the highest");
    }

    #[test]
    fn warp_math_is_consistent() {
        for a in study_architectures() {
            assert_eq!(a.max_threads_per_sm, a.max_warps_per_sm * a.warp_size);
            assert!(a.warps_for_peak_compute <= a.max_warps_per_sm);
            assert!(a.warps_for_peak_bandwidth <= a.max_warps_per_sm);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("titan v").unwrap().family, "Volta");
        assert_eq!(by_name("RTX TITAN").unwrap().family, "Turing");
        assert!(by_name("A100").is_none());
    }

    #[test]
    fn resident_thread_totals() {
        assert_eq!(gtx_980().max_resident_threads(), 16 * 2048);
        assert_eq!(rtx_titan().max_resident_threads(), 72 * 1024);
    }
}
