//! Host↔device transfer model.
//!
//! The paper's measurement protocol (§VI-A) is explicit: upload the data,
//! *then* start the timer; stop the timer after the kernel, *before*
//! downloading results. Transfers are therefore modelled here for
//! completeness (the examples show how much of the wall time they
//! represent) but never enter the tuned objective.

use crate::arch::GpuArchitecture;
use crate::kernels::{Benchmark, KernelModel};

/// Fixed per-transfer latency (driver + DMA setup), milliseconds.
pub const TRANSFER_LATENCY_MS: f64 = 0.02;

/// Time to move `bytes` across PCIe in one direction, milliseconds.
pub fn transfer_time_ms(arch: &GpuArchitecture, bytes: u64) -> f64 {
    TRANSFER_LATENCY_MS + bytes as f64 / (arch.pcie_bandwidth_gbps * 1e6)
}

/// Bytes uploaded to the device before a benchmark runs.
pub fn upload_bytes(bench: Benchmark, kernel: &dyn KernelModel) -> u64 {
    let elems = kernel.problem().elements();
    match bench {
        Benchmark::Add => 2 * elems * 4, // two input images
        Benchmark::Harris => elems * 4,  // one input image
        Benchmark::Mandelbrot => 0,      // generated on device
    }
}

/// Bytes downloaded after a benchmark runs (all three write one plane).
pub fn download_bytes(kernel: &dyn KernelModel) -> u64 {
    kernel.problem().elements() * 4
}

/// Wall-clock time of one benchmark run *including* transfers — what a
/// user of the kernel would wait for, as opposed to the timed region the
/// study optimizes.
pub fn wall_time_ms(
    arch: &GpuArchitecture,
    bench: Benchmark,
    kernel: &dyn KernelModel,
    kernel_ms: f64,
) -> f64 {
    let up = upload_bytes(bench, kernel);
    let down = download_bytes(kernel);
    let mut total = kernel_ms + transfer_time_ms(arch, down);
    if up > 0 {
        total += transfer_time_ms(arch, up);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let a = arch::titan_v();
        let t1 = transfer_time_ms(&a, 1 << 20);
        let t2 = transfer_time_ms(&a, 1 << 24);
        assert!(t2 > t1);
        // 768 MiB at 12 GB/s ≈ 67 ms.
        let t = transfer_time_ms(&a, 768 * 1024 * 1024);
        assert!((60.0..75.0).contains(&t), "{t}");
    }

    #[test]
    fn upload_sizes_match_kernel_signatures() {
        let add = Benchmark::Add.model();
        let harris = Benchmark::Harris.model();
        let mandel = Benchmark::Mandelbrot.model();
        let n = 8192 * 8192 * 4;
        assert_eq!(upload_bytes(Benchmark::Add, add.as_ref()), 2 * n);
        assert_eq!(upload_bytes(Benchmark::Harris, harris.as_ref()), n);
        assert_eq!(upload_bytes(Benchmark::Mandelbrot, mandel.as_ref()), 0);
        assert_eq!(download_bytes(add.as_ref()), n);
    }

    #[test]
    fn wall_time_dominated_by_transfers_for_streaming_kernels() {
        // The paper's rationale for excluding transfers: for Add, PCIe
        // moves 12 bytes/element at ~12 GB/s while the kernel moves the
        // same data at hundreds of GB/s. Wall time >> kernel time.
        let a = arch::titan_v();
        let k = Benchmark::Add.model();
        let kernel_ms = 1.5;
        let wall = wall_time_ms(&a, Benchmark::Add, k.as_ref(), kernel_ms);
        assert!(wall > 20.0 * kernel_ms, "wall {wall} vs kernel {kernel_ms}");
    }

    #[test]
    fn mandelbrot_pays_only_download() {
        let a = arch::rtx_titan();
        let k = Benchmark::Mandelbrot.model();
        let wall = wall_time_ms(&a, Benchmark::Mandelbrot, k.as_ref(), 3.0);
        let down = transfer_time_ms(&a, download_bytes(k.as_ref()));
        assert!((wall - (3.0 + down)).abs() < 1e-12);
    }
}
