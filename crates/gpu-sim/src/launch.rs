//! Launch geometry derived from a tuning configuration.
//!
//! ImageCL maps an `X x Y (x Z)` element domain onto a grid of work-groups:
//! each thread processes a tile of `Xt x Yt x Zt` *contiguous* elements
//! (thread coarsening), and work-groups have `Xw x Yw x Zw` threads, so
//! one work-group covers a `(Xw*Xt) x (Yw*Yt) x (Zw*Zt)` element tile.

use autotune_space::imagecl::ImageClConfig;
use autotune_space::Configuration;
use serde::{Deserialize, Serialize};

/// Size of the element domain a kernel runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemSize {
    /// Elements in X (fastest-moving, contiguous in memory).
    pub x: u64,
    /// Elements in Y.
    pub y: u64,
    /// Elements in Z (1 for the paper's 2-D image workloads).
    pub z: u64,
}

impl ProblemSize {
    /// A 2-D problem (`z = 1`).
    pub const fn new_2d(x: u64, y: u64) -> Self {
        ProblemSize { x, y, z: 1 }
    }

    /// Total useful elements.
    pub fn elements(&self) -> u64 {
        self.x * self.y * self.z
    }
}

/// The paper's fixed problem size: `X = 8192, Y = 8192`.
pub const PAPER_PROBLEM: ProblemSize = ProblemSize::new_2d(8192, 8192);

/// Fully-derived launch geometry for one configuration on one problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchConfig {
    /// The semantic view of the tuning configuration.
    pub cfg: ImageClConfig,
    /// Work-groups along each axis.
    pub grid: (u64, u64, u64),
    /// Threads per work-group (`Xw*Yw*Zw`).
    pub threads_per_block: u32,
    /// Warps per work-group (ceiling division by the warp size).
    pub warps_per_block: u32,
    /// Elements covered by one work-group tile along each axis.
    pub block_tile: (u64, u64, u64),
    /// Total work-groups in the launch.
    pub total_blocks: u64,
    /// Useful elements (un-padded problem domain).
    pub useful_elements: u64,
    /// Elements including the padding introduced by ceiling division.
    pub padded_elements: u64,
    /// Fraction of threads that have *any* useful work. For 2-D problems
    /// every thread with `z > 0` is idle, so this is `1 / Zw` when
    /// `z = 1` (and the `Zt` loop degenerates).
    pub useful_thread_fraction: f64,
}

impl LaunchConfig {
    /// Derives the launch for `cfg` over `problem`, using warp size `warp`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` does not have the 6 ImageCL parameters.
    pub fn derive(cfg: &Configuration, problem: ProblemSize, warp: u32) -> LaunchConfig {
        let ic = ImageClConfig::from_configuration(cfg);
        let (xt, yt, zt) = ic.coarsen;
        let (xw, yw, zw) = ic.work_group;

        let tile_x = (xw * xt) as u64;
        let tile_y = (yw * yt) as u64;
        let tile_z = (zw * zt) as u64;

        let grid_x = problem.x.div_ceil(tile_x);
        let grid_y = problem.y.div_ceil(tile_y);
        let grid_z = problem.z.div_ceil(tile_z);

        let threads_per_block = xw * yw * zw;
        let warps_per_block = threads_per_block.div_ceil(warp);
        let total_blocks = grid_x * grid_y * grid_z;

        let padded_elements =
            grid_x * tile_x * grid_y * tile_y * grid_z * tile_z.min(problem.z.max(1));

        // Threads whose z-slice exists in the domain do useful work. For a
        // 2-D problem only z = 0 threads (and only the first Zt iteration)
        // touch real elements.
        let z_threads_useful = (zw as u64).min(problem.z.div_ceil(zt as u64)).max(1);
        let useful_thread_fraction = z_threads_useful as f64 / zw as f64;

        LaunchConfig {
            cfg: ic,
            grid: (grid_x, grid_y, grid_z),
            threads_per_block,
            warps_per_block,
            block_tile: (tile_x, tile_y, tile_z),
            total_blocks,
            useful_elements: problem.elements(),
            padded_elements,
            useful_thread_fraction,
        }
    }

    /// Padding overhead: padded / useful elements, `>= 1`.
    pub fn padding_factor(&self) -> f64 {
        self.padded_elements as f64 / self.useful_elements as f64
    }

    /// Fraction of warp lanes occupied by real threads in the last,
    /// possibly partial warp of a block — `1.0` when `threads_per_block`
    /// is a warp multiple.
    pub fn warp_occupation(&self, warp: u32) -> f64 {
        self.threads_per_block as f64 / (self.warps_per_block * warp) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(values: [u32; 6]) -> LaunchConfig {
        LaunchConfig::derive(&Configuration::from(values), PAPER_PROBLEM, 32)
    }

    #[test]
    fn simple_geometry() {
        // Xt=1,Yt=1,Zt=1, Xw=8,Yw=4,Zw=1: 32-thread blocks tiling 8x4.
        let l = launch([1, 1, 1, 8, 4, 1]);
        assert_eq!(l.threads_per_block, 32);
        assert_eq!(l.warps_per_block, 1);
        assert_eq!(l.grid, (1024, 2048, 1));
        assert_eq!(l.total_blocks, 1024 * 2048);
        assert_eq!(l.padded_elements, l.useful_elements);
        assert_eq!(l.useful_thread_fraction, 1.0);
    }

    #[test]
    fn coarsening_shrinks_grid() {
        let l = launch([4, 2, 1, 8, 4, 1]);
        // Tile: (8*4) x (4*2) = 32 x 8.
        assert_eq!(l.block_tile, (32, 8, 1));
        assert_eq!(l.grid, (256, 1024, 1));
    }

    #[test]
    fn non_dividing_tile_pads() {
        // Tile x: 8*3 = 24; 8192 / 24 = 341.33 -> 342 blocks, padding.
        let l = launch([3, 1, 1, 8, 1, 1]);
        assert_eq!(l.grid.0, 342);
        assert!(l.padding_factor() > 1.0);
        assert!(l.padding_factor() < 1.01);
    }

    #[test]
    fn z_threads_are_idle_on_2d_problems() {
        let l = launch([1, 1, 1, 8, 4, 4]);
        assert_eq!(l.threads_per_block, 128);
        assert_eq!(l.useful_thread_fraction, 0.25);
        // Grid z never exceeds 1 for a 2-D problem.
        assert_eq!(l.grid.2, 1);
    }

    #[test]
    fn partial_warp_occupation() {
        // 5x5x1 block = 25 threads -> 1 warp, 25/32 occupied.
        let l = launch([1, 1, 1, 5, 5, 1]);
        assert_eq!(l.warps_per_block, 1);
        assert!((l.warp_occupation(32) - 25.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn full_warp_occupation_is_one() {
        let l = launch([1, 1, 1, 8, 8, 1]);
        assert_eq!(l.warp_occupation(32), 1.0);
    }

    #[test]
    fn zt_loop_counts_once_for_2d() {
        // Zt = 16 with z = 1: the z loop covers the whole (single) slice
        // with its first iteration; useful fraction is governed by Zw.
        let l = launch([1, 1, 16, 4, 4, 2]);
        assert_eq!(l.useful_thread_fraction, 0.5);
        assert_eq!(l.grid.2, 1);
    }

    #[test]
    fn problem_size_helpers() {
        assert_eq!(PAPER_PROBLEM.elements(), 8192 * 8192);
        assert_eq!(ProblemSize::new_2d(10, 20).elements(), 200);
    }
}
