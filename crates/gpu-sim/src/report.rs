//! Human-readable performance reports — the simulator's "profiler view".
//!
//! Autotuners tell you *which* configuration is fastest; engineers also
//! want to know *why*. [`explain`] renders the model's full decomposition
//! for one configuration (launch geometry, occupancy and its limiter,
//! pipeline times, waves, divergence) the way `nvprof`-era tooling would.

use crate::arch::GpuArchitecture;
use crate::kernels::KernelModel;
use crate::launch::LaunchConfig;
use crate::model::{self, KernelTimeBreakdown};
use crate::occupancy::OccupancyLimiter;
use autotune_space::Configuration;
use std::fmt::Write as _;

/// Renders a multi-line report explaining the model's prediction for
/// `cfg` on `arch`.
pub fn explain(kernel: &dyn KernelModel, arch: &GpuArchitecture, cfg: &Configuration) -> String {
    let b = model::breakdown(kernel, arch, cfg);
    let launch = LaunchConfig::derive(cfg, kernel.problem(), arch.warp_size);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} — configuration {}",
        kernel.name(),
        arch.name,
        cfg
    );

    if !b.valid {
        let _ = writeln!(
            out,
            "  LAUNCH FAILS: work-group volume {} exceeds the ImageCL limit of {} \
             (or the block cannot be scheduled); penalty {} ms",
            launch.threads_per_block,
            model::IMAGECL_MAX_WORK_GROUP,
            model::FAILURE_PENALTY_MS
        );
        return out;
    }

    let _ = writeln!(
        out,
        "  launch: {} blocks of {} threads ({} warps), tile {}x{} elements",
        launch.total_blocks,
        launch.threads_per_block,
        launch.warps_per_block,
        launch.block_tile.0,
        launch.block_tile.1,
    );
    let _ = writeln!(
        out,
        "  occupancy: {:.0}% ({} blocks/SM, {} warps/SM), limited by {}",
        b.occupancy.occupancy * 100.0,
        b.occupancy.active_blocks_per_sm,
        b.occupancy.active_warps_per_sm,
        limiter_name(b.occupancy.limiter),
    );
    let _ = writeln!(
        out,
        "  pipelines: compute {:.3} ms, memory {:.3} ms -> {}-bound",
        b.compute_ms,
        b.memory_ms,
        if b.memory_bound() {
            "memory"
        } else {
            "compute"
        },
    );
    let _ = writeln!(
        out,
        "  waves: {:.1} ({:.1}% tail overhead); imbalance x{:.3}",
        b.waves,
        (b.wave_factor - 1.0) * 100.0,
        b.imbalance,
    );
    let _ = writeln!(out, "  predicted kernel time: {:.4} ms", b.total_ms);
    out
}

/// One-line summary of the dominant bottleneck, for tables.
pub fn bottleneck(b: &KernelTimeBreakdown) -> &'static str {
    if !b.valid {
        return "launch failure";
    }
    if b.wave_factor > 1.25 {
        return "tail wave";
    }
    if b.imbalance > 1.3 {
        return "divergence";
    }
    if b.occupancy.occupancy < 0.25 {
        return "occupancy";
    }
    if b.memory_bound() {
        "memory bandwidth"
    } else {
        "compute throughput"
    }
}

fn limiter_name(l: OccupancyLimiter) -> &'static str {
    match l {
        OccupancyLimiter::Blocks => "the blocks-per-SM ceiling",
        OccupancyLimiter::Warps => "the warp ceiling",
        OccupancyLimiter::Registers => "the register file",
        OccupancyLimiter::SharedMemory => "shared memory",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::kernels::Benchmark;

    #[test]
    fn report_covers_all_sections() {
        let k = Benchmark::Harris.model();
        let a = arch::gtx_980();
        let r = explain(k.as_ref(), &a, &Configuration::from([1, 2, 1, 8, 4, 1]));
        for needle in [
            "launch:",
            "occupancy:",
            "pipelines:",
            "waves:",
            "predicted kernel time",
        ] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
    }

    #[test]
    fn invalid_launch_reports_failure() {
        let k = Benchmark::Add.model();
        let a = arch::titan_v();
        let r = explain(k.as_ref(), &a, &Configuration::from([1, 1, 1, 8, 8, 8]));
        assert!(r.contains("LAUNCH FAILS"));
        assert!(!r.contains("pipelines:"));
    }

    #[test]
    fn bottleneck_classification() {
        let a = arch::gtx_980();
        // Streaming kernel with a good config: memory bandwidth.
        let add = Benchmark::Add.model();
        let b = model::breakdown(add.as_ref(), &a, &Configuration::from([1, 1, 1, 8, 4, 1]));
        assert_eq!(bottleneck(&b), "memory bandwidth");
        // Invalid launch.
        let b = model::breakdown(add.as_ref(), &a, &Configuration::from([1, 1, 1, 8, 8, 8]));
        assert_eq!(bottleneck(&b), "launch failure");
        // Single-thread blocks on Mandelbrot: 31 of 32 lanes idle, so the
        // classifier blames compute throughput (true — the pipes are
        // starved even though occupancy slots are half full).
        let m = Benchmark::Mandelbrot.model();
        let b = model::breakdown(m.as_ref(), &a, &Configuration::from([1, 1, 1, 1, 1, 1]));
        assert_eq!(bottleneck(&b), "compute throughput");
        // A large shared-memory stencil tile starves occupancy instead:
        // an 8x-coarsened 64x64 tile needs ~18.5 KiB of shared memory, so
        // only 3 blocks (6 of 32 warps) fit per Turing SM.
        let h = Benchmark::Harris.model();
        let ta = crate::arch::rtx_titan();
        let b = model::breakdown(h.as_ref(), &ta, &Configuration::from([8, 8, 1, 8, 8, 1]));
        assert!(b.valid);
        assert_eq!(bottleneck(&b), "occupancy");
    }

    #[test]
    fn mandelbrot_big_tiles_blame_divergence_or_tail() {
        let a = arch::rtx_titan();
        let m = Benchmark::Mandelbrot.model();
        let b = model::breakdown(m.as_ref(), &a, &Configuration::from([16, 16, 1, 8, 8, 1]));
        assert!(
            matches!(bottleneck(&b), "divergence" | "tail wave"),
            "got {}",
            bottleneck(&b)
        );
    }
}
