//! SM occupancy calculator.
//!
//! Mirrors NVIDIA's occupancy-calculator arithmetic: the number of blocks
//! an SM can host simultaneously is the minimum over four hard limits —
//! resident blocks, resident warps, register file, shared memory — each
//! computed with the hardware's allocation granularities. Occupancy
//! cliffs from these limits are a primary source of structure in GPU
//! autotuning landscapes.

use crate::arch::GpuArchitecture;
use serde::{Deserialize, Serialize};

/// Which hardware resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// Hit the architectural blocks-per-SM ceiling.
    Blocks,
    /// Hit the warps/threads-per-SM ceiling.
    Warps,
    /// Register file exhausted.
    Registers,
    /// Shared memory exhausted.
    SharedMemory,
}

/// Result of the occupancy computation for one block shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM (0 when the block cannot be scheduled at all).
    pub active_blocks_per_sm: u32,
    /// Warps resident per SM.
    pub active_warps_per_sm: u32,
    /// `active_warps / max_warps`, in `[0,1]`.
    pub occupancy: f64,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
}

impl Occupancy {
    /// `true` when at least one block fits on an SM.
    pub fn schedulable(&self) -> bool {
        self.active_blocks_per_sm > 0
    }
}

/// Computes occupancy for a block of `threads_per_block` threads using
/// `regs_per_thread` registers and `smem_per_block` bytes of shared
/// memory on `arch`.
///
/// Returns an [`Occupancy`] with `active_blocks_per_sm == 0` (limiter set
/// to the resource that failed) when a single block already exceeds an
/// SM's resources — such launches fail on real hardware.
pub fn occupancy(
    arch: &GpuArchitecture,
    threads_per_block: u32,
    regs_per_thread: u32,
    smem_per_block: u32,
) -> Occupancy {
    assert!(threads_per_block > 0, "block must have at least one thread");
    let warps_per_block = threads_per_block.div_ceil(arch.warp_size);

    // Register allocation is per warp, rounded up to the allocation unit.
    let regs_per_warp = (regs_per_thread * arch.warp_size).div_ceil(arch.register_alloc_unit)
        * arch.register_alloc_unit;
    let regs_per_block = regs_per_warp * warps_per_block;

    // Shared memory allocation rounds up to its granule.
    let smem_alloc = if smem_per_block == 0 {
        0
    } else {
        smem_per_block.div_ceil(arch.shared_mem_alloc_unit) * arch.shared_mem_alloc_unit
    };

    let by_blocks = arch.max_blocks_per_sm;
    let by_warps = arch.max_warps_per_sm / warps_per_block;
    let by_regs = arch
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_smem = arch
        .shared_mem_per_sm
        .checked_div(smem_alloc)
        .unwrap_or(u32::MAX);

    let (active, limiter) = [
        (by_blocks, OccupancyLimiter::Blocks),
        (by_warps, OccupancyLimiter::Warps),
        (by_regs, OccupancyLimiter::Registers),
        (by_smem, OccupancyLimiter::SharedMemory),
    ]
    .into_iter()
    .min_by_key(|&(v, _)| v)
    .expect("four candidates");

    let active_warps = active * warps_per_block;
    Occupancy {
        active_blocks_per_sm: active,
        active_warps_per_sm: active_warps,
        occupancy: active_warps as f64 / arch.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn small_blocks_hit_block_limit() {
        // 32-thread blocks, tiny footprint: Maxwell hosts at most 32
        // blocks -> 32 warps of 64 -> 50% occupancy.
        let a = arch::gtx_980();
        let o = occupancy(&a, 32, 16, 0);
        assert_eq!(o.limiter, OccupancyLimiter::Blocks);
        assert_eq!(o.active_blocks_per_sm, 32);
        assert_eq!(o.active_warps_per_sm, 32);
        assert!((o.occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn large_blocks_hit_warp_limit() {
        let a = arch::gtx_980();
        // 256-thread blocks = 8 warps; 64/8 = 8 blocks; 64 warps = 100%.
        let o = occupancy(&a, 256, 16, 0);
        assert_eq!(o.limiter, OccupancyLimiter::Warps);
        assert_eq!(o.active_blocks_per_sm, 8);
        assert_eq!(o.occupancy, 1.0);
    }

    #[test]
    fn register_pressure_caps_occupancy() {
        let a = arch::gtx_980();
        // 128 regs/thread * 32 = 4096 regs/warp; 65536/4096 = 16 warps.
        // 256-thread blocks = 8 warps -> 2 blocks by registers.
        let o = occupancy(&a, 256, 128, 0);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
        assert_eq!(o.active_blocks_per_sm, 2);
        assert!((o.occupancy - 16.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_caps_occupancy() {
        let a = arch::rtx_titan();
        // 48 KiB blocks on a 64 KiB SM: one block resident.
        let o = occupancy(&a, 128, 32, 48 * 1024);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
        assert_eq!(o.active_blocks_per_sm, 1);
    }

    #[test]
    fn oversized_block_is_unschedulable() {
        let a = arch::rtx_titan();
        // More shared memory than the SM has at all.
        let o = occupancy(&a, 128, 32, 80 * 1024);
        assert!(!o.schedulable());
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn register_granularity_rounds_up() {
        let a = arch::gtx_980();
        // 33 regs/thread -> 1056/warp -> rounds to 1280 (5 units of 256).
        // 65536 / (1280 * 1 warp) = 51 blocks by regs, so blocks limit
        // (32) binds for 32-thread blocks.
        let o = occupancy(&a, 32, 33, 0);
        assert_eq!(o.limiter, OccupancyLimiter::Blocks);
        // But with 8-warp blocks: 65536/(1280*8) = 6 blocks.
        let o = occupancy(&a, 256, 33, 0);
        assert_eq!(o.active_blocks_per_sm, 6);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn turing_has_lower_warp_ceiling() {
        let m = occupancy(&arch::gtx_980(), 256, 32, 0);
        let t = occupancy(&arch::rtx_titan(), 256, 32, 0);
        // Turing: 32 warps/SM / 8 warps per block = 4 blocks.
        assert_eq!(t.active_blocks_per_sm, 4);
        assert!(t.active_warps_per_sm < m.active_warps_per_sm);
        // Both still reach 100% of their own ceilings.
        assert_eq!(t.occupancy, 1.0);
        assert_eq!(m.occupancy, 1.0);
    }

    #[test]
    fn partial_warp_blocks_round_warps_up() {
        let a = arch::gtx_980();
        // 33-thread blocks occupy 2 warps of space.
        let o = occupancy(&a, 33, 16, 0);
        assert_eq!(o.active_warps_per_sm, o.active_blocks_per_sm * 2);
    }
}
