//! Warp-level memory coalescing and effective-bandwidth model.
//!
//! DRAM traffic on NVIDIA parts moves in 32-byte sectors. A warp-wide
//! load touches some set of sectors determined by the lane→address map;
//! the ratio of useful bytes to fetched sector bytes is the *coalescing
//! efficiency*. ImageCL's contiguous-tile coarsening makes consecutive
//! lanes in X access addresses `lane * Xt` elements apart, so `Xt` acts
//! as an inter-lane stride and efficiency falls as `Xt` grows — partially
//! recovered by the cache hierarchy, since the skipped elements are
//! needed by the *same* warp's later iterations ([`GpuArchitecture::
//! cache_absorption`] models how much of that re-use the L1/L2 capture).

use crate::arch::GpuArchitecture;
use crate::launch::LaunchConfig;

/// Bytes per DRAM sector (fixed across the studied architectures).
pub const SECTOR_BYTES: u64 = 32;

/// Element size of the study's single-precision image data.
pub const ELEM_BYTES: u64 = 4;

/// Sectors touched by one warp-wide access where `lanes_x` consecutive
/// lanes access addresses `stride_elems` elements apart (4-byte
/// elements), and the warp folds the remaining lanes onto separate image
/// rows (each row group starting a fresh sector run).
///
/// Exact for the paper's row-major layout where rows are far apart.
pub fn sectors_per_warp_access(warp_size: u32, lanes_x: u32, stride_elems: u32) -> u64 {
    assert!(lanes_x > 0 && warp_size > 0 && stride_elems > 0);
    let lanes_x = lanes_x.min(warp_size);
    let row_groups = warp_size.div_ceil(lanes_x) as u64;
    let stride_bytes = stride_elems as u64 * ELEM_BYTES;
    let sectors_per_group = if stride_bytes >= SECTOR_BYTES {
        // Every lane lands in its own sector.
        lanes_x as u64
    } else {
        // Lanes cover a contiguous-ish span of lanes_x * stride bytes.
        (lanes_x as u64 * stride_bytes).div_ceil(SECTOR_BYTES)
    };
    row_groups * sectors_per_group
}

/// Coalescing efficiency of one warp access: useful bytes / fetched bytes,
/// in `(0, 1]`.
pub fn access_efficiency(warp_size: u32, lanes_x: u32, stride_elems: u32) -> f64 {
    let sectors = sectors_per_warp_access(warp_size, lanes_x, stride_elems);
    let useful = warp_size as u64 * ELEM_BYTES;
    (useful as f64 / (sectors * SECTOR_BYTES) as f64).min(1.0)
}

/// Effective DRAM bytes transferred per *useful* element for a streaming
/// access pattern under launch `l`, given the kernel's ideal (perfectly
/// coalesced) bytes per element.
///
/// ImageCL's X thread-coarsening uses the **cyclic** (round-robin)
/// distribution — on iteration `k`, lane `i` of a row group accesses
/// element `base + k*Xw + i` — precisely so that warp accesses stay
/// unit-stride regardless of the coarsening factor (the standard
/// implementation choice for coarsened streaming kernels). Two effects
/// remain:
///
/// 1. **Row-group layout**: warps folded over narrow `Xw` touch one
///    partially-used sector per row ([`access_efficiency`] at stride 1).
/// 2. **Cache pressure**: each warp's working set spans `Xt` sector runs
///    concurrently; large coarsening factors evict re-usable lines, and
///    a cache-richness-dependent fraction of those re-fetches reaches
///    DRAM.
pub fn effective_bytes_per_element(
    arch: &GpuArchitecture,
    l: &LaunchConfig,
    ideal_bytes_per_element: f64,
) -> f64 {
    let lanes_x = l.cfg.work_group.0;
    let raw_eff = access_efficiency(arch.warp_size, lanes_x, 1);
    let layout_factor = 1.0 / raw_eff;

    let xt = l.cfg.coarsen.0 as f64;
    let pressure_factor = 1.0 + 0.03 * (xt - 1.0) * (1.0 - arch.cache_absorption);

    ideal_bytes_per_element * layout_factor * pressure_factor
}

/// Fraction of peak DRAM bandwidth achievable with `active_warps_per_sm`
/// resident warps: bandwidth ramps roughly linearly with concurrency
/// until `warps_for_peak_bandwidth` (Little's law), then saturates.
pub fn bandwidth_utilization(arch: &GpuArchitecture, active_warps_per_sm: u32) -> f64 {
    if active_warps_per_sm == 0 {
        return 0.0;
    }
    (active_warps_per_sm as f64 / arch.warps_for_peak_bandwidth as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::launch::{LaunchConfig, PAPER_PROBLEM};
    use autotune_space::Configuration;

    #[test]
    fn unit_stride_full_row_is_perfect() {
        // 32 lanes in x, stride 1: 32 * 4 = 128 B = 4 sectors, all useful.
        assert_eq!(sectors_per_warp_access(32, 32, 1), 4);
        assert_eq!(access_efficiency(32, 32, 1), 1.0);
    }

    #[test]
    fn folded_rows_unit_stride_still_perfect() {
        // 8 lanes in x over 4 rows: each row group = 8*4 = 32 B = 1 sector.
        assert_eq!(sectors_per_warp_access(32, 8, 1), 4);
        assert_eq!(access_efficiency(32, 8, 1), 1.0);
    }

    #[test]
    fn stride_degrades_efficiency_monotonically() {
        let mut prev = f64::INFINITY;
        for xt in 1..=16 {
            let eff = access_efficiency(32, 8, xt);
            assert!(eff <= prev + 1e-12, "eff not monotone at stride {xt}");
            prev = eff;
        }
        // Worst case: every lane its own sector -> 4/32 = 0.125.
        assert!((access_efficiency(32, 8, 16) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn wide_stride_is_one_sector_per_lane() {
        // stride 8 elements = 32 bytes: exactly one sector per lane.
        assert_eq!(sectors_per_warp_access(32, 8, 8), 32);
        // and beyond does not get worse (still one sector per lane).
        assert_eq!(sectors_per_warp_access(32, 8, 16), 32);
    }

    #[test]
    fn narrow_x_blocks_fold_to_more_sectors() {
        // 1 lane per row, 32 rows: one sector per lane regardless of stride.
        assert_eq!(sectors_per_warp_access(32, 1, 1), 32);
        assert!((access_efficiency(32, 1, 1) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn cyclic_coarsening_keeps_traffic_mild() {
        let a = arch::gtx_980();
        let mk = |xt: u32| {
            LaunchConfig::derive(&Configuration::from([xt, 1, 1, 8, 4, 1]), PAPER_PROBLEM, 32)
        };
        let b1 = effective_bytes_per_element(&a, &mk(1), 12.0);
        let b16 = effective_bytes_per_element(&a, &mk(16), 12.0);
        assert!(
            (b1 - 12.0).abs() < 1e-9,
            "unit coarsening must be ideal, got {b1}"
        );
        // Cyclic distribution: only cache pressure grows, bounded ~25%.
        assert!(b16 > b1);
        assert!(
            b16 < 1.3 * b1,
            "cyclic coarsening penalty too strong: {b16}"
        );
    }

    #[test]
    fn cache_rich_arch_suffers_less_pressure() {
        let maxwell = arch::gtx_980();
        let turing = arch::rtx_titan();
        let l = LaunchConfig::derive(&Configuration::from([8, 1, 1, 8, 4, 1]), PAPER_PROBLEM, 32);
        let bm = effective_bytes_per_element(&maxwell, &l, 12.0);
        let bt = effective_bytes_per_element(&turing, &l, 12.0);
        assert!(bt < bm, "turing {bt} should beat maxwell {bm}");
    }

    #[test]
    fn narrow_x_blocks_inflate_traffic() {
        let a = arch::gtx_980();
        let wide =
            LaunchConfig::derive(&Configuration::from([1, 1, 1, 8, 4, 1]), PAPER_PROBLEM, 32);
        let narrow =
            LaunchConfig::derive(&Configuration::from([1, 1, 1, 2, 8, 1]), PAPER_PROBLEM, 32);
        let bw = effective_bytes_per_element(&a, &wide, 12.0);
        let bn = effective_bytes_per_element(&a, &narrow, 12.0);
        assert!(
            bn > 2.0 * bw,
            "narrow rows must waste sectors: {bn} vs {bw}"
        );
    }

    #[test]
    fn bandwidth_ramp_saturates() {
        let a = arch::gtx_980();
        assert_eq!(bandwidth_utilization(&a, 0), 0.0);
        assert!(bandwidth_utilization(&a, 9) < bandwidth_utilization(&a, 18));
        assert_eq!(bandwidth_utilization(&a, a.warps_for_peak_bandwidth), 1.0);
        assert_eq!(bandwidth_utilization(&a, 64), 1.0);
    }
}
