//! The Harris benchmark: Harris corner detection.
//!
//! Per pixel: Sobel gradients `Ix`, `Iy` (two 3x3 convolutions), the
//! structure-tensor products `Ixx`, `Iyy`, `Ixy`, a 3x3 box sum of each,
//! and the corner response `R = det(M) - k * trace(M)^2` with the
//! conventional `k = 0.04`.
//!
//! Performance character: a 5x5-support stencil (~100 FP ops/pixel).
//! The generated ImageCL kernel stages the input tile — block tile plus
//! a 2-pixel halo on each side — in shared memory, so the shared-memory
//! footprint grows with the block tile and becomes an occupancy limiter
//! for large tiles: the classic stencil autotuning trade-off (bigger
//! tiles amortize the halo, smaller tiles keep more blocks resident).

use super::{loop_overhead_cycles, register_estimate, KernelModel};
use crate::launch::ProblemSize;
use autotune_space::imagecl::ImageClConfig;

/// Stencil radius: Sobel (1) + box window (1), i.e. a 2-pixel halo.
pub const HALO: u64 = 2;

/// Harris response constant `k`.
pub const HARRIS_K: f32 = 0.04;

/// Performance descriptor for Harris.
#[derive(Debug, Clone)]
pub struct HarrisKernel {
    problem: ProblemSize,
}

impl HarrisKernel {
    /// Creates the descriptor over the given domain.
    pub fn new(problem: ProblemSize) -> Self {
        HarrisKernel { problem }
    }

    /// Shared-memory tile dimensions for a configuration: block tile plus
    /// halo on both sides, single-precision.
    fn tile_bytes(cfg: &ImageClConfig) -> u64 {
        let tx = (cfg.work_group.0 * cfg.coarsen.0) as u64 + 2 * HALO;
        let ty = (cfg.work_group.1 * cfg.coarsen.1) as u64 + 2 * HALO;
        tx * ty * 4
    }
}

impl KernelModel for HarrisKernel {
    fn name(&self) -> &'static str {
        "Harris"
    }

    fn problem(&self) -> ProblemSize {
        self.problem
    }

    fn regs_per_thread(&self, cfg: &ImageClConfig) -> u32 {
        // Gradient accumulators, tensor products and window sums stay
        // live per unrolled column.
        register_estimate(38, 3, 2, cfg)
    }

    fn smem_per_block(&self, cfg: &ImageClConfig) -> u32 {
        Self::tile_bytes(cfg).min(u32::MAX as u64) as u32
    }

    fn compute_cycles_per_element(&self, cfg: &ImageClConfig) -> f64 {
        // Sobel: 2 filters x ~17 ops; products: 3; box sums: 3 x 9 adds;
        // response: ~6; staging/index arithmetic: ~8. ~105 total. The
        // 3x3 windows of adjacent X-columns overlap, so X-coarsening can
        // keep column sums in registers and skip ~30% of window adds.
        let reuse_saving = 30.0 * (1.0 - 1.0 / cfg.coarsen.0 as f64).min(0.7);
        105.0 - reuse_saving + loop_overhead_cycles(cfg)
    }

    fn ideal_dram_bytes_per_element(&self, cfg: &ImageClConfig) -> f64 {
        // One input read amortized over the block tile (halo re-fetched
        // per block) plus one output store.
        let tx = (cfg.work_group.0 * cfg.coarsen.0) as f64;
        let ty = (cfg.work_group.1 * cfg.coarsen.1) as f64;
        let halo_factor = ((tx + 2.0 * HALO as f64) * (ty + 2.0 * HALO as f64)) / (tx * ty);
        4.0 * halo_factor + 4.0
    }

    fn imbalance_factor(&self, _cfg: &ImageClConfig) -> f64 {
        // Uniform stencil work (image content does not change the op
        // count).
        1.0
    }
}

/// CPU reference implementation of the Harris response over a row-major
/// `width x height` single-channel image. Border pixels (within
/// [`HALO`]) are written as 0.
///
/// # Panics
///
/// Panics if `input.len() != width * height` or output length mismatches.
pub fn harris_reference(input: &[f32], width: usize, height: usize, out: &mut [f32]) {
    assert_eq!(input.len(), width * height, "harris: input size mismatch");
    assert_eq!(out.len(), width * height, "harris: output size mismatch");
    let at = |x: isize, y: isize| -> f32 { input[y as usize * width + x as usize] };
    out.fill(0.0);
    if width < 5 || height < 5 {
        return; // domain smaller than the stencil support
    }
    // Pass 1: Sobel gradients into scratch planes.
    let mut ix = vec![0.0_f32; width * height];
    let mut iy = vec![0.0_f32; width * height];
    for y in 1..height - 1 {
        for x in 1..width - 1 {
            let (xi, yi) = (x as isize, y as isize);
            let gx = -at(xi - 1, yi - 1) + at(xi + 1, yi - 1) - 2.0 * at(xi - 1, yi)
                + 2.0 * at(xi + 1, yi)
                - at(xi - 1, yi + 1)
                + at(xi + 1, yi + 1);
            let gy = -at(xi - 1, yi - 1) - 2.0 * at(xi, yi - 1) - at(xi + 1, yi - 1)
                + at(xi - 1, yi + 1)
                + 2.0 * at(xi, yi + 1)
                + at(xi + 1, yi + 1);
            ix[y * width + x] = gx;
            iy[y * width + x] = gy;
        }
    }
    // Pass 2: windowed structure tensor and response.
    for y in HALO as usize..height - HALO as usize {
        for x in HALO as usize..width - HALO as usize {
            let (mut sxx, mut syy, mut sxy) = (0.0_f32, 0.0_f32, 0.0_f32);
            for dy in -1..=1_isize {
                for dx in -1..=1_isize {
                    let idx = (y as isize + dy) as usize * width + (x as isize + dx) as usize;
                    let (gx, gy) = (ix[idx], iy[idx]);
                    sxx += gx * gx;
                    syy += gy * gy;
                    sxy += gx * gy;
                }
            }
            let det = sxx * syy - sxy * sxy;
            let trace = sxx + syy;
            out[y * width + x] = det - HARRIS_K * trace * trace;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::PAPER_PROBLEM;
    use autotune_space::Configuration;

    fn cfg(values: [u32; 6]) -> ImageClConfig {
        ImageClConfig::from_configuration(&Configuration::from(values))
    }

    #[test]
    fn flat_image_has_no_corners() {
        let (w, h) = (16, 16);
        let input = vec![5.0_f32; w * h];
        let mut out = vec![1.0_f32; w * h];
        harris_reference(&input, w, h, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn corner_scores_higher_than_edge_and_flat() {
        // A bright square in the lower-right quadrant: its corner pixel
        // region must out-score pure-edge and flat regions.
        let (w, h) = (32, 32);
        let mut input = vec![0.0_f32; w * h];
        for y in 16..32 {
            for x in 16..32 {
                input[y * w + x] = 10.0;
            }
        }
        let mut out = vec![0.0_f32; w * h];
        harris_reference(&input, w, h, &mut out);
        // Max over a 5x5 neighbourhood of the inner corner (16,16).
        let corner_score = (14..19)
            .flat_map(|y| (14..19).map(move |x| (x, y)))
            .map(|(x, y)| out[y * w + x])
            .fold(f32::MIN, f32::max);
        // Edge midpoint (16, 24) region.
        let edge_score = (22..27).map(|y| out[y * w + 16]).fold(f32::MIN, f32::max);
        let flat_score = out[8 * w + 8];
        assert!(corner_score > 0.0, "corner response must be positive");
        assert!(
            corner_score > edge_score,
            "corner {corner_score} vs edge {edge_score}"
        );
        assert_eq!(flat_score, 0.0);
        // Edges yield strongly negative Harris response.
        let edge_min = (22..27).map(|y| out[y * w + 16]).fold(f32::MAX, f32::min);
        assert!(edge_min < 0.0, "edge response should be negative");
    }

    #[test]
    fn tiny_domain_is_all_zero() {
        let mut out = vec![9.0_f32; 9];
        harris_reference(&[1.0; 9], 3, 3, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn smem_grows_with_tile() {
        let k = HarrisKernel::new(PAPER_PROBLEM);
        let small = k.smem_per_block(&cfg([1, 1, 1, 8, 4, 1]));
        let large = k.smem_per_block(&cfg([4, 4, 1, 8, 8, 1]));
        // (8+4)*(4+4)*4 = 384 vs (32+4)*(32+4)*4 = 5184.
        assert_eq!(small, 384);
        assert_eq!(large, 5184);
    }

    #[test]
    fn halo_amortizes_with_bigger_tiles() {
        let k = HarrisKernel::new(PAPER_PROBLEM);
        let small = k.ideal_dram_bytes_per_element(&cfg([1, 1, 1, 2, 2, 1]));
        let large = k.ideal_dram_bytes_per_element(&cfg([4, 4, 1, 8, 8, 1]));
        assert!(small > large, "halo share must shrink: {small} vs {large}");
        // Lower bound: 8 bytes (read + write) as tiles grow unbounded.
        assert!(large > 8.0);
    }

    #[test]
    fn x_coarsening_saves_window_adds() {
        let k = HarrisKernel::new(PAPER_PROBLEM);
        let narrow = k.compute_cycles_per_element(&cfg([1, 1, 1, 8, 8, 1]));
        let wide = k.compute_cycles_per_element(&cfg([8, 1, 1, 8, 8, 1]));
        assert!(wide < narrow);
        assert!(wide > 70.0, "saving is bounded");
    }
}
