//! The Mandelbrot benchmark: escape-time rendering of the classic set.
//!
//! Per pixel: iterate `z <- z^2 + c` until `|z| > 2` or the iteration cap
//! is reached. Work per pixel varies enormously over the image (points
//! inside the set run to the cap, points far outside escape in a handful
//! of iterations), which creates the two load-imbalance effects real GPU
//! Mandelbrot kernels exhibit:
//!
//! * **warp divergence** — lanes in a warp iterate in lock-step until the
//!   *slowest* lane escapes, so the warp pays the maximum over its
//!   footprint;
//! * **inter-block imbalance** — blocks covering the set's interior run
//!   ~`MAX_ITER` while border blocks finish early; large block tiles mean
//!   fewer blocks and a lumpier tail.
//!
//! Both effects shrink when tiles are small (more, finer-grained work
//! units), pulling the optimum toward smaller tiles than the uniform
//! kernels prefer — a genuinely different landscape per the paper's
//! observation that the best algorithm depends on the benchmark.

use super::{loop_overhead_cycles, register_estimate, KernelModel};
use crate::launch::ProblemSize;
use autotune_space::imagecl::ImageClConfig;

/// Iteration cap of the escape loop.
pub const MAX_ITER: u32 = 256;

/// Mean escape iterations over the rendered view, measured once from the
/// reference implementation at 1024x1024 (the value is resolution-stable
/// for this fixed view).
pub const MEAN_ITER: f64 = 58.0;

/// FP32-pipe cycles per escape iteration (2 mults, 2 adds, magnitude
/// test, loop bookkeeping).
pub const CYCLES_PER_ITER: f64 = 7.0;

/// The rendered complex-plane view: the classic full-set framing.
pub const VIEW: (f64, f64, f64, f64) = (-2.2, 0.8, -1.5, 1.5);

/// Spatial correlation length of the iteration count field, in pixels at
/// the paper's 8192-wide rendering. Within a patch of this size the
/// work is similar; beyond it, independent. Drives how tile size maps to
/// per-warp and per-block variance.
const CORRELATION_PX: f64 = 48.0;

/// Coefficient of variation of per-pixel iteration counts for [`VIEW`]
/// (measured from the reference implementation).
const ITER_CV: f64 = 1.4;

/// Performance descriptor for Mandelbrot.
#[derive(Debug, Clone)]
pub struct MandelbrotKernel {
    problem: ProblemSize,
}

impl MandelbrotKernel {
    /// Creates the descriptor over the given domain.
    pub fn new(problem: ProblemSize) -> Self {
        MandelbrotKernel { problem }
    }
}

impl KernelModel for MandelbrotKernel {
    fn name(&self) -> &'static str {
        "Mandelbrot"
    }

    fn problem(&self) -> ProblemSize {
        self.problem
    }

    fn regs_per_thread(&self, cfg: &ImageClConfig) -> u32 {
        // z, c, magnitude, counter per unrolled pixel.
        register_estimate(22, 3, 1, cfg)
    }

    fn smem_per_block(&self, _cfg: &ImageClConfig) -> u32 {
        0
    }

    fn compute_cycles_per_element(&self, cfg: &ImageClConfig) -> f64 {
        MEAN_ITER * CYCLES_PER_ITER + 6.0 + loop_overhead_cycles(cfg)
    }

    fn ideal_dram_bytes_per_element(&self, _cfg: &ImageClConfig) -> f64 {
        // Write-only: one 4-byte iteration count per pixel.
        4.0
    }

    fn imbalance_factor(&self, cfg: &ImageClConfig) -> f64 {
        // Warp-level divergence: a warp's cost is the max over its
        // footprint. The variance of the footprint mean shrinks with the
        // number of independent correlation patches it spans; the
        // expected max-over-mean grows with residual within-warp CV.
        let (xt, yt, _) = cfg.coarsen;
        let (xw, yw, _) = cfg.work_group;
        let warp_px = (xw * xt) as f64 * (yw * yt) as f64;
        let warp_patches = (warp_px / (CORRELATION_PX * CORRELATION_PX)).max(1.0);
        // Residual CV within a warp footprint after correlation: lanes in
        // one patch share their fate, so small footprints have *low*
        // divergence; footprints spanning several patches pay the max.
        let warp_cv = ITER_CV * (1.0 - (-warp_patches.sqrt() / 2.0).exp());
        let divergence = 1.0 + 0.5 * warp_cv;

        // Inter-block tail imbalance: with B blocks per wave the slowest
        // block governs; spreads shrink as tiles shrink (more blocks).
        let tile_px = ((xw * xt) as u64 * (yw * yt) as u64) as f64;
        let blocks = (self.problem.elements() as f64 / tile_px).max(1.0);
        let tail = 1.0
            + 0.6 / blocks.sqrt().max(1.0)
                * ITER_CV
                * (tile_px / (CORRELATION_PX * CORRELATION_PX))
                    .sqrt()
                    .min(8.0);

        divergence * tail
    }
}

/// CPU reference: escape iteration count for the pixel grid, row-major
/// `width x height` over [`VIEW`].
pub fn mandelbrot_reference(width: usize, height: usize, out: &mut [u32]) {
    assert_eq!(
        out.len(),
        width * height,
        "mandelbrot: output size mismatch"
    );
    let (x0, x1, y0, y1) = VIEW;
    for py in 0..height {
        let cy = y0 + (y1 - y0) * (py as f64 + 0.5) / height as f64;
        for px in 0..width {
            let cx = x0 + (x1 - x0) * (px as f64 + 0.5) / width as f64;
            out[py * width + px] = escape_iterations(cx, cy);
        }
    }
}

/// Escape-time iteration count for one point `c = cx + i cy`.
pub fn escape_iterations(cx: f64, cy: f64) -> u32 {
    let (mut zx, mut zy) = (0.0_f64, 0.0_f64);
    for i in 0..MAX_ITER {
        let zx2 = zx * zx;
        let zy2 = zy * zy;
        if zx2 + zy2 > 4.0 {
            return i;
        }
        let new_zx = zx2 - zy2 + cx;
        zy = 2.0 * zx * zy + cy;
        zx = new_zx;
    }
    MAX_ITER
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::PAPER_PROBLEM;
    use autotune_space::Configuration;

    fn cfg(values: [u32; 6]) -> ImageClConfig {
        ImageClConfig::from_configuration(&Configuration::from(values))
    }

    #[test]
    fn known_points() {
        // Origin is in the set: runs to the cap.
        assert_eq!(escape_iterations(0.0, 0.0), MAX_ITER);
        // c = -1 is in the set (period-2 cycle).
        assert_eq!(escape_iterations(-1.0, 0.0), MAX_ITER);
        // Far outside escapes immediately.
        assert!(escape_iterations(2.0, 2.0) <= 1);
        // Just outside the main cardioid escapes slowly but surely.
        let near = escape_iterations(0.26, 0.0);
        assert!(near > 10 && near < MAX_ITER);
    }

    #[test]
    fn rendering_has_expected_statistics() {
        let (w, h) = (256, 256);
        let mut out = vec![0u32; w * h];
        mandelbrot_reference(w, h, &mut out);
        let inside = out.iter().filter(|&&v| v == MAX_ITER).count();
        let frac_inside = inside as f64 / (w * h) as f64;
        // The set covers ~1.506 of the view's 9.0 area units ≈ 0.167.
        assert!(
            (0.10..0.25).contains(&frac_inside),
            "inside fraction {frac_inside}"
        );
        let mean = out.iter().map(|&v| v as f64).sum::<f64>() / (w * h) as f64;
        assert!(
            (mean - MEAN_ITER).abs() < 15.0,
            "mean iterations {mean} vs calibration {MEAN_ITER}"
        );
    }

    #[test]
    fn imbalance_grows_with_tile_size() {
        let k = MandelbrotKernel::new(PAPER_PROBLEM);
        let small = k.imbalance_factor(&cfg([1, 1, 1, 8, 4, 1]));
        let large = k.imbalance_factor(&cfg([16, 16, 1, 8, 8, 1]));
        assert!(
            large > small,
            "large tiles must be lumpier: {large} vs {small}"
        );
        assert!(small >= 1.0);
    }

    #[test]
    fn is_compute_bound_everywhere() {
        let k = MandelbrotKernel::new(PAPER_PROBLEM);
        let c = cfg([1, 1, 1, 8, 4, 1]);
        let intensity = k.compute_cycles_per_element(&c) / k.ideal_dram_bytes_per_element(&c);
        for a in crate::arch::study_architectures() {
            assert!(
                intensity > a.balance_flops_per_byte(),
                "Mandelbrot should be compute-bound on {}",
                a.name
            );
        }
    }

    #[test]
    fn write_only_traffic() {
        let k = MandelbrotKernel::new(PAPER_PROBLEM);
        assert_eq!(
            k.ideal_dram_bytes_per_element(&cfg([1, 1, 1, 4, 4, 1])),
            4.0
        );
    }
}
