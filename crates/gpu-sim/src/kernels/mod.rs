//! The three ImageCL benchmarks of the study.
//!
//! Each benchmark contributes two things:
//!
//! 1. a **performance descriptor** ([`KernelModel`]) — how its register
//!    pressure, shared-memory footprint, per-element arithmetic, DRAM
//!    traffic and divergence depend on the tuning configuration; the
//!    simulator's [`crate::model`] turns this into a predicted runtime;
//! 2. a **CPU reference implementation** — the actual computation (vector
//!    add, Harris corner response, Mandelbrot escape iterations), used by
//!    the examples and tests to show these are real workloads with
//!    verifiable outputs, not placeholders.

use crate::launch::{ProblemSize, PAPER_PROBLEM};
use autotune_space::imagecl::ImageClConfig;

pub mod add;
pub mod harris;
pub mod mandelbrot;

/// Performance descriptor of one tunable kernel.
///
/// All per-element quantities refer to *useful* (un-padded) elements; the
/// model applies padding, coalescing and occupancy effects on top.
pub trait KernelModel: Send + Sync {
    /// Benchmark name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Element domain the kernel runs over.
    fn problem(&self) -> ProblemSize;

    /// Registers allocated per thread. Grows with coarsening because the
    /// unrolled tile keeps more live values.
    fn regs_per_thread(&self, cfg: &ImageClConfig) -> u32;

    /// Static shared memory per block, bytes (0 when the kernel keeps its
    /// working set in registers/L1).
    fn smem_per_block(&self, cfg: &ImageClConfig) -> u32;

    /// FP32-pipe cycles issued per useful element, including address
    /// arithmetic, averaged over the domain.
    fn compute_cycles_per_element(&self, cfg: &ImageClConfig) -> f64;

    /// DRAM bytes per useful element under perfect coalescing.
    fn ideal_dram_bytes_per_element(&self, cfg: &ImageClConfig) -> f64;

    /// Multiplier `>= 1` capturing warp divergence and inter-block load
    /// imbalance for this configuration (1.0 for uniform workloads).
    fn imbalance_factor(&self, cfg: &ImageClConfig) -> f64;
}

/// The ImageCL benchmark suite members used in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Element-wise addition of two `8192 x 8192` images (streaming,
    /// bandwidth-bound).
    Add,
    /// Harris corner detection on an `8192 x 8192` image (stencil with a
    /// shared-memory tile; mixed compute/memory).
    Harris,
    /// Mandelbrot set rendering at `8192 x 8192` (compute-bound,
    /// divergent, write-only).
    Mandelbrot,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Add, Benchmark::Harris, Benchmark::Mandelbrot];

    /// Instantiates the performance descriptor at the paper's problem
    /// size (`8192 x 8192`).
    pub fn model(self) -> Box<dyn KernelModel> {
        self.model_with_problem(PAPER_PROBLEM)
    }

    /// Instantiates the descriptor at a custom problem size (used by the
    /// input-sensitivity extension experiments).
    pub fn model_with_problem(self, problem: ProblemSize) -> Box<dyn KernelModel> {
        match self {
            Benchmark::Add => Box::new(add::AddKernel::new(problem)),
            Benchmark::Harris => Box::new(harris::HarrisKernel::new(problem)),
            Benchmark::Mandelbrot => Box::new(mandelbrot::MandelbrotKernel::new(problem)),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Add => "Add",
            Benchmark::Harris => "Harris",
            Benchmark::Mandelbrot => "Mandelbrot",
        }
    }

    /// Parses a benchmark name (case-insensitive).
    pub fn parse(s: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
    }
}

/// Shared register-pressure heuristic: a base footprint plus live values
/// for the unrolled coarsening tile, capped at the ISA limit of 255.
pub(crate) fn register_estimate(base: u32, per_x: u32, per_y: u32, cfg: &ImageClConfig) -> u32 {
    let (xt, yt, zt) = cfg.coarsen;
    (base + per_x * xt + per_y * yt + 2 * (zt - 1)).min(255)
}

/// Shared GPU architecture-independent helper used by kernels to express
/// an extra instruction cost per coarsening-loop iteration (loop
/// counters, address bumps) that amortizes as the tile grows.
pub(crate) fn loop_overhead_cycles(cfg: &ImageClConfig) -> f64 {
    let (xt, yt, zt) = cfg.coarsen;
    // Per-element share of per-iteration bookkeeping: two ops per Y/Z
    // iteration spread over the X-row it controls.
    2.0 / xt as f64 + 1.0 / (xt as f64 * yt as f64) * (zt as f64 - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::Configuration;

    fn cfg(values: [u32; 6]) -> ImageClConfig {
        ImageClConfig::from_configuration(&Configuration::from(values))
    }

    #[test]
    fn benchmark_roster_matches_paper() {
        assert_eq!(Benchmark::ALL.len(), 3);
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["Add", "Harris", "Mandelbrot"]);
    }

    #[test]
    fn parse_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.name()), Some(b));
            assert_eq!(Benchmark::parse(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::parse("nbody"), None);
    }

    #[test]
    fn models_report_paper_problem() {
        for b in Benchmark::ALL {
            let m = b.model();
            assert_eq!(m.problem().elements(), 8192 * 8192);
            assert_eq!(m.name(), b.name());
        }
    }

    #[test]
    fn register_estimate_caps_at_isa_limit() {
        let c = cfg([16, 16, 16, 1, 1, 1]);
        assert_eq!(register_estimate(100, 8, 8, &c), 255);
        let c1 = cfg([1, 1, 1, 1, 1, 1]);
        assert_eq!(register_estimate(20, 2, 1, &c1), 23);
    }

    #[test]
    fn loop_overhead_shrinks_with_x_coarsening() {
        let narrow = loop_overhead_cycles(&cfg([1, 1, 1, 8, 8, 1]));
        let wide = loop_overhead_cycles(&cfg([8, 1, 1, 8, 8, 1]));
        assert!(wide < narrow);
    }

    #[test]
    fn all_models_give_positive_quantities() {
        let c = cfg([2, 2, 1, 8, 4, 1]);
        for b in Benchmark::ALL {
            let m = b.model();
            assert!(m.regs_per_thread(&c) >= 16);
            assert!(m.compute_cycles_per_element(&c) > 0.0);
            assert!(m.ideal_dram_bytes_per_element(&c) > 0.0);
            assert!(m.imbalance_factor(&c) >= 1.0);
        }
    }
}
