//! The Add benchmark: element-wise addition of two images.
//!
//! The paper describes Add as "a simple vector addition with two vectors
//! of size X" run at `X = 8192, Y = 8192`; we interpret it as the 2-D
//! image addition `C = A + B` over an `8192 x 8192` single-precision
//! domain (ImageCL is an image-processing language, and the 2-D
//! interpretation is what makes the Y-axis tuning parameters meaningful).
//! This substitution is recorded in DESIGN.md.
//!
//! Performance character: one FP add and three 4-byte accesses per
//! element — arithmetic intensity ~0.08 flop/byte, firmly
//! bandwidth-bound on all three GPUs. Tuning is therefore dominated by
//! coalescing (keep `Xt` small), warp shape, and reaching enough
//! occupancy to saturate DRAM.

use super::{loop_overhead_cycles, register_estimate, KernelModel};
use crate::launch::ProblemSize;
use autotune_space::imagecl::ImageClConfig;

/// Performance descriptor for Add.
#[derive(Debug, Clone)]
pub struct AddKernel {
    problem: ProblemSize,
}

impl AddKernel {
    /// Creates the descriptor over the given domain.
    pub fn new(problem: ProblemSize) -> Self {
        AddKernel { problem }
    }
}

impl KernelModel for AddKernel {
    fn name(&self) -> &'static str {
        "Add"
    }

    fn problem(&self) -> ProblemSize {
        self.problem
    }

    fn regs_per_thread(&self, cfg: &ImageClConfig) -> u32 {
        // Tiny kernel: pointers + loop state; unrolled tile keeps one
        // accumulator per X column and a row pointer per Y row.
        register_estimate(14, 2, 1, cfg)
    }

    fn smem_per_block(&self, _cfg: &ImageClConfig) -> u32 {
        0
    }

    fn compute_cycles_per_element(&self, cfg: &ImageClConfig) -> f64 {
        // 1 FP add + ~2 address/predicate ops per element, plus loop
        // bookkeeping that amortizes with X-coarsening.
        3.0 + loop_overhead_cycles(cfg)
    }

    fn ideal_dram_bytes_per_element(&self, _cfg: &ImageClConfig) -> f64 {
        // Two 4-byte loads + one 4-byte store, no reuse to exploit.
        12.0
    }

    fn imbalance_factor(&self, _cfg: &ImageClConfig) -> f64 {
        // Perfectly uniform work.
        1.0
    }
}

/// CPU reference: `out[i] = a[i] + b[i]`.
///
/// # Panics
///
/// Panics when the slices disagree in length.
pub fn add_reference(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "add: input length mismatch");
    assert_eq!(a.len(), out.len(), "add: output length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::PAPER_PROBLEM;
    use autotune_space::Configuration;

    fn cfg(values: [u32; 6]) -> ImageClConfig {
        ImageClConfig::from_configuration(&Configuration::from(values))
    }

    #[test]
    fn reference_addition() {
        let a = [1.0_f32, 2.0, 3.0];
        let b = [10.0_f32, 20.0, 30.0];
        let mut out = [0.0_f32; 3];
        add_reference(&a, &b, &mut out);
        assert_eq!(out, [11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reference_rejects_mismatch() {
        let mut out = [0.0_f32; 2];
        add_reference(&[1.0], &[2.0], &mut out);
    }

    #[test]
    fn is_bandwidth_bound_on_all_study_gpus() {
        let k = AddKernel::new(PAPER_PROBLEM);
        let c = cfg([1, 1, 1, 8, 4, 1]);
        // Arithmetic intensity in cycles/byte terms: cycles per element
        // over bytes per element is far below every machine balance.
        let intensity = k.compute_cycles_per_element(&c) / k.ideal_dram_bytes_per_element(&c);
        for a in crate::arch::study_architectures() {
            assert!(
                intensity < a.balance_flops_per_byte(),
                "Add should be bandwidth-bound on {}",
                a.name
            );
        }
    }

    #[test]
    fn registers_grow_with_coarsening() {
        let k = AddKernel::new(PAPER_PROBLEM);
        assert!(
            k.regs_per_thread(&cfg([8, 8, 1, 4, 4, 1]))
                > k.regs_per_thread(&cfg([1, 1, 1, 4, 4, 1]))
        );
    }

    #[test]
    fn uses_no_shared_memory() {
        let k = AddKernel::new(PAPER_PROBLEM);
        assert_eq!(k.smem_per_block(&cfg([4, 4, 4, 4, 4, 4])), 0);
    }

    #[test]
    fn uniform_workload_has_unit_imbalance() {
        let k = AddKernel::new(PAPER_PROBLEM);
        assert_eq!(k.imbalance_factor(&cfg([16, 16, 16, 8, 8, 8])), 1.0);
    }
}
