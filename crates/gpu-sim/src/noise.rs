//! Measurement-noise model.
//!
//! Real kernel timings vary run-to-run: clock management, OS scheduling,
//! memory-controller contention, and timer resolution. The paper copes by
//! running the *final* configuration 10 times while single-shot sampling
//! during the search ("to better represent real use cases and test the
//! models for how well they handle noise in the samples"). This module
//! supplies that noise: multiplicative log-normal jitter, occasional
//! positive spikes (preemption), and timer quantization.
//!
//! The defaults (σ≈1.5%, 0.5% spike rate) follow the run-to-run variation
//! commonly reported for dedicated-GPU kernel benchmarking.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the measurement-noise process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the log-normal multiplicative jitter.
    pub sigma_log: f64,
    /// Probability that a measurement is hit by a scheduling spike.
    pub spike_prob: f64,
    /// Maximum relative magnitude of a spike (uniform in `(0, max]`).
    pub spike_max: f64,
    /// Timer resolution in milliseconds; measurements are quantized to it.
    pub timer_resolution_ms: f64,
}

impl NoiseModel {
    /// The study's default noise level.
    pub fn study_default() -> Self {
        NoiseModel {
            sigma_log: 0.015,
            spike_prob: 0.005,
            spike_max: 0.35,
            timer_resolution_ms: 1e-4,
        }
    }

    /// A noiseless model (useful for oracle scans and deterministic tests).
    pub fn none() -> Self {
        NoiseModel {
            sigma_log: 0.0,
            spike_prob: 0.0,
            spike_max: 0.0,
            timer_resolution_ms: 0.0,
        }
    }

    /// A model with scaled jitter, for the noise-robustness ablation.
    pub fn scaled(factor: f64) -> Self {
        let base = Self::study_default();
        NoiseModel {
            sigma_log: base.sigma_log * factor,
            spike_prob: (base.spike_prob * factor).min(0.25),
            spike_max: base.spike_max,
            timer_resolution_ms: base.timer_resolution_ms,
        }
    }

    /// Applies measurement noise to a true time.
    ///
    /// # Panics
    ///
    /// Panics if `true_ms` is not positive and finite.
    pub fn apply<R: Rng + ?Sized>(&self, true_ms: f64, rng: &mut R) -> f64 {
        assert!(
            true_ms.is_finite() && true_ms > 0.0,
            "noise model needs a positive finite time, got {true_ms}"
        );
        let mut t = true_ms;
        if self.sigma_log > 0.0 {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            t *= (self.sigma_log * z).exp();
        }
        if self.spike_prob > 0.0 && rng.gen::<f64>() < self.spike_prob {
            t *= 1.0 + rng.gen::<f64>() * self.spike_max;
        }
        if self.timer_resolution_ms > 0.0 {
            t = (t / self.timer_resolution_ms).round() * self.timer_resolution_ms;
            // Quantization must never report zero for a real execution.
            t = t.max(self.timer_resolution_ms);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn noiseless_model_is_identity_up_to_quantization() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = NoiseModel::none();
        assert_eq!(m.apply(3.25, &mut rng), 3.25);
    }

    #[test]
    fn noise_is_centred_and_small() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = NoiseModel::study_default();
        let true_ms = 5.0;
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|_| m.apply(true_ms, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (mean / true_ms - 1.0).abs() < 0.01,
            "mean {mean} should be near {true_ms}"
        );
        // Spread should be a couple of percent.
        let sd = (samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64).sqrt();
        let rel = sd / true_ms;
        assert!((0.005..0.06).contains(&rel), "relative sd {rel}");
    }

    #[test]
    fn spikes_are_rare_and_positive() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = NoiseModel {
            sigma_log: 0.0,
            spike_prob: 0.1,
            spike_max: 0.5,
            timer_resolution_ms: 0.0,
        };
        let n = 5000;
        let spiked = (0..n)
            .filter(|_| m.apply(1.0, &mut rng) > 1.0 + 1e-12)
            .count();
        let rate = spiked as f64 / n as f64;
        assert!((0.07..0.13).contains(&rate), "spike rate {rate}");
    }

    #[test]
    fn quantization_rounds_to_timer_grid() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = NoiseModel {
            sigma_log: 0.0,
            spike_prob: 0.0,
            spike_max: 0.0,
            timer_resolution_ms: 0.5,
        };
        assert_eq!(m.apply(1.26, &mut rng), 1.5);
        assert_eq!(m.apply(0.01, &mut rng), 0.5); // floor at one tick
    }

    #[test]
    fn deterministic_per_seed() {
        let m = NoiseModel::study_default();
        let a: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..50).map(|_| m.apply(2.0, &mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..50).map(|_| m.apply(2.0, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_non_positive_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = NoiseModel::study_default().apply(0.0, &mut rng);
    }

    #[test]
    fn scaled_zero_removes_jitter() {
        let m = NoiseModel::scaled(0.0);
        assert_eq!(m.sigma_log, 0.0);
        assert_eq!(m.spike_prob, 0.0);
    }
}
