//! The analytical performance model: configuration → predicted kernel time.
//!
//! Pipeline (per configuration):
//!
//! 1. derive the launch geometry ([`crate::launch`]);
//! 2. validate it against the ImageCL work-group limit (the paper's
//!    a-priori constraint `Xw*Yw*Zw <= 256`) and the SM resources —
//!    invalid launches cost [`FAILURE_PENALTY_MS`], modelling what a
//!    tuning framework records when `clEnqueueNDRangeKernel` rejects the
//!    configuration;
//! 3. compute occupancy ([`crate::occupancy`]);
//! 4. model compute time (FP32-pipe cycles over occupancy-scaled issue
//!    throughput) and memory time (coalescing-adjusted DRAM bytes over
//!    concurrency-scaled bandwidth);
//! 5. combine with partial overlap, apply wave quantization and the
//!    kernel's divergence/imbalance factor, add launch overhead.

use crate::arch::GpuArchitecture;
use crate::kernels::KernelModel;
use crate::launch::LaunchConfig;
use crate::memory;
use crate::occupancy::{occupancy, Occupancy};
use autotune_space::Configuration;

/// ImageCL's maximum admitted work-group volume — the paper's "product of
/// our work group size parameters must not exceed 256".
pub const IMAGECL_MAX_WORK_GROUP: u32 = 256;

/// Time recorded for a configuration whose launch fails (work-group too
/// large or block unschedulable). Autotuning frameworks assign a large
/// finite penalty so the search can keep going; 10 seconds is far beyond
/// any real kernel time in this study.
pub const FAILURE_PENALTY_MS: f64 = 10_000.0;

/// Fraction of the shorter pipeline (compute vs memory) that fails to
/// overlap with the longer one. 0 would be perfect overlap; 1 serial.
const OVERLAP_SLACK: f64 = 0.15;

/// Full decomposition of one predicted kernel execution.
#[derive(Debug, Clone)]
pub struct KernelTimeBreakdown {
    /// Whether the launch is valid; invalid launches carry the penalty.
    pub valid: bool,
    /// Pure compute-pipeline time, ms.
    pub compute_ms: f64,
    /// Pure memory-pipeline time, ms.
    pub memory_ms: f64,
    /// Wave-quantization multiplier (`>= 1`).
    pub wave_factor: f64,
    /// Divergence / load-imbalance multiplier (`>= 1`).
    pub imbalance: f64,
    /// Achieved occupancy.
    pub occupancy: Occupancy,
    /// Number of full device waves (may be fractional before quantization).
    pub waves: f64,
    /// Final predicted kernel time, ms (the penalty when invalid).
    pub total_ms: f64,
}

impl KernelTimeBreakdown {
    /// `true` when memory time exceeds compute time (bandwidth-bound).
    pub fn memory_bound(&self) -> bool {
        self.memory_ms > self.compute_ms
    }
}

/// Predicted noiseless kernel time for `cfg`, in milliseconds.
pub fn kernel_time_ms(
    kernel: &dyn KernelModel,
    arch: &GpuArchitecture,
    cfg: &Configuration,
) -> f64 {
    breakdown(kernel, arch, cfg).total_ms
}

/// Full model evaluation with all intermediate quantities exposed.
pub fn breakdown(
    kernel: &dyn KernelModel,
    arch: &GpuArchitecture,
    cfg: &Configuration,
) -> KernelTimeBreakdown {
    let launch = LaunchConfig::derive(cfg, kernel.problem(), arch.warp_size);
    let ic = launch.cfg;

    let invalid = |occ: Occupancy| KernelTimeBreakdown {
        valid: false,
        compute_ms: 0.0,
        memory_ms: 0.0,
        wave_factor: 1.0,
        imbalance: 1.0,
        occupancy: occ,
        waves: 0.0,
        total_ms: FAILURE_PENALTY_MS,
    };

    let regs = kernel.regs_per_thread(&ic);
    let smem = kernel.smem_per_block(&ic);
    let occ = occupancy(arch, launch.threads_per_block, regs, smem);

    if launch.threads_per_block > IMAGECL_MAX_WORK_GROUP.min(arch.max_threads_per_block)
        || !occ.schedulable()
    {
        return invalid(occ);
    }

    // Warps that do useful work: z-idle threads retire immediately and
    // partial warps waste lanes, both diluting latency hiding.
    let useful_warps = occ.active_warps_per_sm as f64 * launch.useful_thread_fraction;
    let lane_fill = launch.warp_occupation(arch.warp_size);

    // --- Compute pipeline -------------------------------------------------
    let cycles_per_elem = kernel.compute_cycles_per_element(&ic);
    let total_lane_cycles = launch.padded_elements as f64 * cycles_per_elem;
    let peak_lane_cycles_per_ms = arch.peak_flops() / 1e3;
    let compute_concurrency = (useful_warps / arch.warps_for_peak_compute as f64).min(1.0);
    let compute_eff = (compute_concurrency * lane_fill).max(1e-6);
    let compute_ms = total_lane_cycles / (peak_lane_cycles_per_ms * compute_eff);

    // --- Memory pipeline --------------------------------------------------
    let bytes_per_elem = memory::effective_bytes_per_element(
        arch,
        &launch,
        kernel.ideal_dram_bytes_per_element(&ic),
    );
    let total_bytes = launch.padded_elements as f64 * bytes_per_elem;
    // Memory concurrency follows outstanding *threads* (requests), so
    // partially-filled warps count at their lane fill.
    let mem_warp_equivalents = (useful_warps * lane_fill).ceil() as u32;
    let bw_util = memory::bandwidth_utilization(arch, mem_warp_equivalents).max(1e-6);
    let memory_ms = total_bytes / (arch.dram_bandwidth_gbps * 1e6 * bw_util);

    // --- Combine ----------------------------------------------------------
    let (long, short) = if compute_ms >= memory_ms {
        (compute_ms, memory_ms)
    } else {
        (memory_ms, compute_ms)
    };
    let base_ms = long + OVERLAP_SLACK * short;

    // Wave quantization: the device executes blocks in waves of
    // `sm_count * active_blocks`; a fractional final wave still costs a
    // whole wave of time.
    let device_blocks = (arch.sm_count * occ.active_blocks_per_sm) as f64;
    let waves = launch.total_blocks as f64 / device_blocks;
    let wave_factor = waves.ceil() / waves;

    let imbalance = kernel.imbalance_factor(&ic);

    let total_ms = base_ms * wave_factor * imbalance + arch.launch_overhead_ms;
    KernelTimeBreakdown {
        valid: true,
        compute_ms,
        memory_ms,
        wave_factor,
        imbalance,
        occupancy: occ,
        waves,
        total_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::kernels::Benchmark;

    fn cfg(values: [u32; 6]) -> Configuration {
        Configuration::from(values)
    }

    /// A sensible baseline configuration: unit coarsening, 8x4 blocks.
    fn good() -> Configuration {
        cfg([1, 1, 1, 8, 4, 1])
    }

    #[test]
    fn oversized_work_group_is_penalized() {
        let k = Benchmark::Add.model();
        let a = arch::gtx_980();
        // 8*8*5 = 320 > 256.
        let b = breakdown(k.as_ref(), &a, &cfg([1, 1, 1, 8, 8, 5]));
        assert!(!b.valid);
        assert_eq!(b.total_ms, FAILURE_PENALTY_MS);
    }

    #[test]
    fn boundary_work_group_is_valid() {
        let k = Benchmark::Add.model();
        let a = arch::gtx_980();
        // 8*8*4 = 256 exactly.
        let b = breakdown(k.as_ref(), &a, &cfg([1, 1, 1, 8, 8, 4]));
        assert!(b.valid);
        assert!(b.total_ms < FAILURE_PENALTY_MS);
    }

    #[test]
    fn add_is_memory_bound_and_in_realistic_range() {
        let k = Benchmark::Add.model();
        for a in arch::study_architectures() {
            let b = breakdown(k.as_ref(), &a, &good());
            assert!(b.valid);
            assert!(b.memory_bound(), "{}: Add must be memory-bound", a.name);
            // 768 MB of traffic: between ~1 ms (fast HBM) and ~10 ms.
            assert!(
                (0.5..20.0).contains(&b.total_ms),
                "{}: Add total {} ms",
                a.name,
                b.total_ms
            );
        }
    }

    #[test]
    fn mandelbrot_is_compute_bound() {
        let k = Benchmark::Mandelbrot.model();
        for a in arch::study_architectures() {
            let b = breakdown(k.as_ref(), &a, &good());
            assert!(
                !b.memory_bound(),
                "{}: Mandelbrot must be compute-bound",
                a.name
            );
        }
    }

    #[test]
    fn newer_gpus_are_faster() {
        for bench in Benchmark::ALL {
            let k = bench.model();
            let t_980 = kernel_time_ms(k.as_ref(), &arch::gtx_980(), &good());
            let t_titanv = kernel_time_ms(k.as_ref(), &arch::titan_v(), &good());
            assert!(
                t_titanv < t_980,
                "{}: Titan V {} ms vs GTX 980 {} ms",
                bench.name(),
                t_titanv,
                t_980
            );
        }
    }

    #[test]
    fn z_work_group_waste_hurts() {
        let k = Benchmark::Add.model();
        let a = arch::titan_v();
        let flat = kernel_time_ms(k.as_ref(), &a, &cfg([1, 1, 1, 8, 4, 1]));
        let wasted = kernel_time_ms(k.as_ref(), &a, &cfg([1, 1, 1, 8, 4, 8]));
        assert!(
            wasted > flat * 1.5,
            "idle z-threads must hurt: {wasted} vs {flat}"
        );
    }

    #[test]
    fn x_coarsening_costs_are_mild_but_real() {
        // Cyclic coarsening keeps coalescing, so heavy X-coarsening only
        // pays cache pressure and register-occupancy costs: slower than
        // unit coarsening, but within ~2x, not an order of magnitude.
        let k = Benchmark::Add.model();
        let a = arch::gtx_980();
        let unit = kernel_time_ms(k.as_ref(), &a, &cfg([1, 1, 1, 8, 4, 1]));
        let heavy = kernel_time_ms(k.as_ref(), &a, &cfg([16, 1, 1, 8, 4, 1]));
        assert!(heavy > unit, "{heavy} vs {unit}");
        assert!(heavy < 2.5 * unit, "{heavy} vs {unit}");
    }

    #[test]
    fn narrow_work_groups_hurt_streaming() {
        // Narrow X rows waste sector bytes: the coalescing penalty moved
        // from the coarsening factor to the work-group shape.
        let k = Benchmark::Add.model();
        let a = arch::gtx_980();
        let wide = kernel_time_ms(k.as_ref(), &a, &cfg([1, 1, 1, 8, 4, 1]));
        let narrow = kernel_time_ms(k.as_ref(), &a, &cfg([1, 1, 1, 1, 8, 1]));
        assert!(narrow > 2.0 * wide, "{narrow} vs {wide}");
    }

    #[test]
    fn single_thread_blocks_are_terrible() {
        let k = Benchmark::Add.model();
        let a = arch::titan_v();
        let good_t = kernel_time_ms(k.as_ref(), &a, &good());
        let lone = kernel_time_ms(k.as_ref(), &a, &cfg([1, 1, 1, 1, 1, 1]));
        assert!(lone > 5.0 * good_t, "1-thread blocks: {lone} vs {good_t}");
    }

    #[test]
    fn breakdown_components_are_positive_and_consistent() {
        let k = Benchmark::Harris.model();
        let a = arch::rtx_titan();
        let b = breakdown(k.as_ref(), &a, &good());
        assert!(b.compute_ms > 0.0 && b.memory_ms > 0.0);
        assert!(b.wave_factor >= 1.0);
        assert!(b.imbalance >= 1.0);
        assert!(b.waves > 1.0, "8192^2 launches many waves");
        assert!(b.total_ms >= b.compute_ms.max(b.memory_ms));
    }

    #[test]
    fn harris_large_smem_tiles_lose_occupancy() {
        let k = Benchmark::Harris.model();
        let a = arch::rtx_titan();
        let small = breakdown(k.as_ref(), &a, &cfg([1, 1, 1, 8, 4, 1]));
        let large = breakdown(k.as_ref(), &a, &cfg([16, 16, 1, 8, 8, 1]));
        assert!(
            large.occupancy.occupancy < small.occupancy.occupancy,
            "giant stencil tiles must cut occupancy"
        );
    }

    #[test]
    fn optimum_differs_across_architectures() {
        // Coarse scan: the argmin over a small grid should not be the
        // same configuration on all three architectures for all kernels
        // (architecture-dependent optima are the premise of the study).
        let grid: Vec<Configuration> = (0..)
            .map_while(|i| {
                let space = autotune_space::imagecl::space();
                let idx = i * 97;
                (idx < space.size()).then(|| space.config_at(idx))
            })
            .collect();
        let mut distinct = std::collections::HashSet::new();
        for a in arch::study_architectures() {
            let k = Benchmark::Harris.model();
            let best = grid
                .iter()
                .min_by(|x, y| {
                    kernel_time_ms(k.as_ref(), &a, x)
                        .partial_cmp(&kernel_time_ms(k.as_ref(), &a, y))
                        .unwrap()
                })
                .unwrap();
            distinct.insert(best.clone());
        }
        assert!(
            distinct.len() >= 2,
            "Harris optimum should differ somewhere across architectures"
        );
    }
}
