//! Pre-generated sample datasets, mirroring the paper's pipeline.
//!
//! §VI-B: "For our non-SMBO approaches, we streamline the experimental
//! sample collection process by creating a dataset of 20 000 samples in
//! one go for each architecture and benchmark. We can then subdivide the
//! samples for each sample size and experiment."
//!
//! [`Dataset::generate`] draws feasible configurations (the non-SMBO
//! methods get the constraint specification) and measures each once with
//! noise. [`DatasetStore`] caches datasets per (benchmark, architecture)
//! behind a `parking_lot::RwLock` so a multi-threaded experiment grid
//! generates each dataset exactly once.

use crate::arch::GpuArchitecture;
use crate::kernels::Benchmark;
use crate::noise::NoiseModel;
use crate::runner::SimulatedKernel;
use autotune_space::{imagecl, sample, Configuration};
use parking_lot::RwLock;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The paper's dataset size per (benchmark, architecture).
pub const PAPER_DATASET_SIZE: usize = 20_000;

/// One measured sample: a configuration (by flat index into the ImageCL
/// space) and its observed single-shot runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Flat index into [`imagecl::space`].
    pub config_index: u64,
    /// Measured runtime, milliseconds (single noisy execution).
    pub runtime_ms: f64,
}

/// A pre-generated sample collection for one (benchmark, architecture).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture name.
    pub architecture: String,
    /// Seed the generation used.
    pub seed: u64,
    /// The measured samples.
    pub entries: Vec<DatasetEntry>,
}

impl Dataset {
    /// Generates `n` feasible samples with one noisy measurement each.
    pub fn generate(
        bench: Benchmark,
        arch: &GpuArchitecture,
        n: usize,
        noise: NoiseModel,
        seed: u64,
    ) -> Dataset {
        let space = imagecl::space();
        let constraint = imagecl::constraint();
        let mut sample_rng = ChaCha8Rng::seed_from_u64(seed);
        let mut runner =
            SimulatedKernel::with_noise(bench.model(), arch.clone(), noise, seed ^ 0x9e3779b9);
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let cfg = sample::constrained(&space, &constraint, &mut sample_rng);
            let runtime_ms = runner.measure(&cfg);
            entries.push(DatasetEntry {
                config_index: space.index_of(&cfg),
                runtime_ms,
            });
        }
        Dataset {
            benchmark: bench.name().to_string(),
            architecture: arch.name.clone(),
            seed,
            entries,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no samples were generated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configuration of entry `i`.
    pub fn config(&self, i: usize) -> Configuration {
        imagecl::space().config_at(self.entries[i].config_index)
    }

    /// Minimum runtime over the entries selected by `indices`
    /// (positions into this dataset) — the Random Search result for that
    /// subset, per the paper's RS protocol.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds.
    pub fn min_over(&self, indices: &[usize]) -> &DatasetEntry {
        assert!(!indices.is_empty(), "min_over of empty subset");
        indices
            .iter()
            .map(|&i| &self.entries[i])
            .min_by(|a, b| {
                a.runtime_ms
                    .partial_cmp(&b.runtime_ms)
                    .expect("runtimes are finite")
            })
            .expect("non-empty subset")
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Dataset, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Thread-safe cache of generated datasets.
pub struct DatasetStore {
    size: usize,
    noise: NoiseModel,
    cache: RwLock<HashMap<(Benchmark, String), Arc<Dataset>>>,
}

impl DatasetStore {
    /// A store generating `size`-sample datasets with the given noise.
    pub fn new(size: usize, noise: NoiseModel) -> Self {
        DatasetStore {
            size,
            noise,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// A store at the paper's 20k size with study noise.
    pub fn paper_scale() -> Self {
        Self::new(PAPER_DATASET_SIZE, NoiseModel::study_default())
    }

    /// Returns the dataset for (bench, arch), generating it on first use.
    /// The generation seed is derived from the pair so every store
    /// instance produces identical data.
    pub fn get(&self, bench: Benchmark, arch: &GpuArchitecture) -> Arc<Dataset> {
        let key = (bench, arch.name.clone());
        if let Some(ds) = self.cache.read().get(&key) {
            return Arc::clone(ds);
        }
        let seed = dataset_seed(bench, &arch.name);
        let ds = Arc::new(Dataset::generate(bench, arch, self.size, self.noise, seed));
        let mut w = self.cache.write();
        // Another thread may have generated it while we did; keep theirs.
        Arc::clone(w.entry(key).or_insert(ds))
    }

    /// Number of datasets currently cached.
    pub fn cached(&self) -> usize {
        self.cache.read().len()
    }
}

/// Deterministic seed for a (benchmark, architecture) dataset, derived by
/// FNV-1a hashing of the names.
pub fn dataset_seed(bench: Benchmark, arch_name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bench.name().bytes().chain(arch_name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use autotune_space::Constraint;

    fn small_dataset() -> Dataset {
        Dataset::generate(
            Benchmark::Add,
            &arch::gtx_980(),
            64,
            NoiseModel::study_default(),
            7,
        )
    }

    #[test]
    fn generation_is_feasible_and_sized() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 64);
        let cons = imagecl::constraint();
        for i in 0..ds.len() {
            assert!(cons.is_satisfied(&ds.config(i)));
            assert!(ds.entries[i].runtime_ms > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_dataset();
        let b = small_dataset();
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn min_over_selects_minimum() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let min_all = ds.min_over(&all).runtime_ms;
        assert!(ds.entries.iter().all(|e| e.runtime_ms >= min_all));
        // Subset minimum can only be >= the full minimum.
        let subset: Vec<usize> = (0..10).collect();
        assert!(ds.min_over(&subset).runtime_ms >= min_all);
    }

    #[test]
    fn json_round_trip() {
        let ds = small_dataset();
        let back = Dataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(back.entries, ds.entries);
        assert_eq!(back.benchmark, "Add");
    }

    #[test]
    fn store_caches_and_shares() {
        let store = DatasetStore::new(16, NoiseModel::study_default());
        let a1 = store.get(Benchmark::Add, &arch::gtx_980());
        let a2 = store.get(Benchmark::Add, &arch::gtx_980());
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(store.cached(), 1);
        let _ = store.get(Benchmark::Add, &arch::titan_v());
        assert_eq!(store.cached(), 2);
    }

    #[test]
    fn seeds_differ_across_pairs() {
        let mut seen = std::collections::HashSet::new();
        for b in Benchmark::ALL {
            for a in ["GTX 980", "Titan V", "RTX Titan"] {
                assert!(seen.insert(dataset_seed(b, a)), "collision for {b:?}/{a}");
            }
        }
    }
}
