//! Oracle scans: the true optimum of a (kernel, architecture) landscape.
//!
//! The paper's Fig. 2 reports every algorithm's result as a *percentage
//! of the study's optimum solution*. With a simulator we can do better
//! than "best ever sampled": the noiseless model can be scanned
//! exhaustively over all 2,097,152 configurations to find the true
//! global optimum.

use crate::arch::GpuArchitecture;
use crate::kernels::KernelModel;
use crate::model;
use autotune_space::{imagecl, Configuration};

/// Result of an oracle scan.
#[derive(Debug, Clone)]
pub struct Optimum {
    /// The best configuration found.
    pub config: Configuration,
    /// Its noiseless model time, ms.
    pub time_ms: f64,
    /// Number of configurations examined.
    pub scanned: u64,
}

/// Exhaustive scan over the *entire* space (2,097,152 model evaluations —
/// under a second in release builds).
pub fn global_optimum(kernel: &dyn KernelModel, arch: &GpuArchitecture) -> Optimum {
    strided_optimum(kernel, arch, 1)
}

/// Scan every `stride`-th configuration (by flat index). `stride = 1` is
/// the exhaustive scan; larger strides give fast approximate optima for
/// tests and smoke runs.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn strided_optimum(kernel: &dyn KernelModel, arch: &GpuArchitecture, stride: u64) -> Optimum {
    assert!(stride > 0, "stride must be positive");
    let space = imagecl::space();
    let mut best_time = f64::INFINITY;
    let mut best_cfg = None;
    let mut scanned = 0;
    let mut idx = 0;
    while idx < space.size() {
        let cfg = space.config_at(idx);
        let t = model::kernel_time_ms(kernel, arch, &cfg);
        if t < best_time {
            best_time = t;
            best_cfg = Some(cfg);
        }
        scanned += 1;
        idx += stride;
    }
    Optimum {
        config: best_cfg.expect("space is non-empty"),
        time_ms: best_time,
        scanned,
    }
}

/// Percentage-of-optimum metric used throughout the paper's figures:
/// `100 * optimum / achieved` for a minimized objective, so 100 means
/// the achieved time *is* the optimum and lower is worse.
///
/// # Panics
///
/// Panics unless both times are positive finite.
pub fn percent_of_optimum(optimum_ms: f64, achieved_ms: f64) -> f64 {
    assert!(optimum_ms > 0.0 && optimum_ms.is_finite());
    assert!(achieved_ms > 0.0 && achieved_ms.is_finite());
    100.0 * optimum_ms / achieved_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::kernels::Benchmark;
    use autotune_space::Constraint;

    #[test]
    fn strided_scan_finds_a_feasible_good_config() {
        let k = Benchmark::Add.model();
        let a = arch::titan_v();
        let opt = strided_optimum(k.as_ref(), &a, 1001);
        assert!(opt.time_ms < model::FAILURE_PENALTY_MS);
        assert!(imagecl::constraint().is_satisfied(&opt.config));
        assert_eq!(opt.scanned, imagecl::space().size().div_ceil(1001));
    }

    #[test]
    fn finer_stride_is_at_least_as_good() {
        let k = Benchmark::Mandelbrot.model();
        let a = arch::gtx_980();
        let coarse = strided_optimum(k.as_ref(), &a, 4001);
        let finer = strided_optimum(k.as_ref(), &a, 401);
        assert!(finer.time_ms <= coarse.time_ms);
    }

    #[test]
    fn optimum_beats_a_reasonable_hand_pick() {
        let k = Benchmark::Add.model();
        let a = arch::rtx_titan();
        let opt = strided_optimum(k.as_ref(), &a, 257);
        let hand = model::kernel_time_ms(k.as_ref(), &a, &Configuration::from([1, 1, 1, 8, 4, 1]));
        assert!(opt.time_ms <= hand);
    }

    #[test]
    fn percent_of_optimum_semantics() {
        assert_eq!(percent_of_optimum(2.0, 2.0), 100.0);
        assert_eq!(percent_of_optimum(2.0, 4.0), 50.0);
        assert!(percent_of_optimum(2.0, 2.2) < 100.0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let k = Benchmark::Add.model();
        let _ = strided_optimum(k.as_ref(), &arch::gtx_980(), 0);
    }
}
