//! Analytical GPU performance-model simulator.
//!
//! The paper measures real OpenCL kernels on three NVIDIA GPUs. This crate
//! replaces that testbed with an *analytical performance model* in the
//! spirit of Hong & Kim's MWP/CWP model: given a tuning configuration
//! (thread-coarsening factors and work-group shape) it derives the launch
//! geometry, computes achievable occupancy from the architecture's
//! register / shared-memory / warp limits, models DRAM traffic through a
//! warp-level coalescing model, combines compute and memory pipelines
//! with occupancy-dependent latency hiding, applies wave quantization and
//! (for Mandelbrot) divergence-driven load imbalance, and finally adds a
//! seeded heteroscedastic measurement-noise model.
//!
//! What matters for the *search-technique study* is that the resulting
//! objective landscapes have the same qualitative structure as real GPU
//! autotuning landscapes — multi-modal, with occupancy cliffs, coalescing
//! steps, dead parameters (`Zt`/`Zw` on 2-D problems), inter-parameter
//! coupling, architecture-dependent optima, and noisy single-shot
//! measurements. Absolute times are *estimates*, not measurements.
//!
//! Timing protocol (paper §VI-A): host↔device PCIe transfers are modelled
//! ([`pcie`]) but **excluded** from the measured kernel time, exactly as
//! the paper starts its timer after the upload and stops it before the
//! download.
//!
//! # Quick start
//!
//! ```
//! use gpu_sim::{arch, kernels, runner::SimulatedKernel};
//! use autotune_space::Configuration;
//!
//! let gpu = arch::rtx_titan();
//! let kernel = kernels::Benchmark::Mandelbrot.model();
//! let mut sim = SimulatedKernel::new(kernel, gpu, 42);
//! let t = sim.measure(&Configuration::from([2, 2, 1, 8, 4, 1]));
//! assert!(t.is_finite() && t > 0.0);
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod dataset;
pub mod kernels;
pub mod launch;
pub mod memory;
pub mod model;
pub mod noise;
pub mod occupancy;
pub mod oracle;
pub mod pcie;
pub mod report;
pub mod runner;

pub use arch::GpuArchitecture;
pub use kernels::Benchmark;
pub use model::{kernel_time_ms, KernelTimeBreakdown};
pub use runner::SimulatedKernel;
