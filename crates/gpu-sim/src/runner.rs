//! The measurement harness: a simulated kernel one can "run".
//!
//! [`SimulatedKernel`] is the study's stand-in for compiling and
//! executing an ImageCL kernel: every [`SimulatedKernel::measure`] call
//! evaluates the analytical model and draws one noisy measurement,
//! matching the paper's protocol of a *single* execution per sampled
//! configuration during the search and 10 repetitions for the final
//! configuration ([`SimulatedKernel::measure_final`]).

use crate::arch::GpuArchitecture;
use crate::kernels::KernelModel;
use crate::model;
use crate::noise::NoiseModel;
use autotune_space::Configuration;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of repetitions the paper uses for the final configuration.
pub const FINAL_REPS: usize = 10;

/// A runnable, noisy, evaluation-counting simulated kernel.
pub struct SimulatedKernel {
    kernel: Box<dyn KernelModel>,
    arch: GpuArchitecture,
    noise: NoiseModel,
    rng: ChaCha8Rng,
    evaluations: u64,
}

impl SimulatedKernel {
    /// Creates a runner with the study's default noise, seeded for
    /// reproducibility.
    pub fn new(kernel: Box<dyn KernelModel>, arch: GpuArchitecture, seed: u64) -> Self {
        Self::with_noise(kernel, arch, NoiseModel::study_default(), seed)
    }

    /// Creates a runner with a custom noise model.
    pub fn with_noise(
        kernel: Box<dyn KernelModel>,
        arch: GpuArchitecture,
        noise: NoiseModel,
        seed: u64,
    ) -> Self {
        SimulatedKernel {
            kernel,
            arch,
            noise,
            rng: ChaCha8Rng::seed_from_u64(seed),
            evaluations: 0,
        }
    }

    /// The architecture this runner simulates.
    pub fn arch(&self) -> &GpuArchitecture {
        &self.arch
    }

    /// The kernel descriptor.
    pub fn kernel(&self) -> &dyn KernelModel {
        self.kernel.as_ref()
    }

    /// Number of measurements taken so far (the tuners' sample budget is
    /// audited against this).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// One noisy measurement of `cfg`, in milliseconds — "compile, launch
    /// once, read the timer".
    pub fn measure(&mut self, cfg: &Configuration) -> f64 {
        self.evaluations += 1;
        let t = model::kernel_time_ms(self.kernel.as_ref(), &self.arch, cfg);
        self.noise.apply(t, &mut self.rng)
    }

    /// The paper's final-configuration protocol: `FINAL_REPS` repetitions,
    /// reported as the median.
    pub fn measure_final(&mut self, cfg: &Configuration) -> f64 {
        let mut reps: Vec<f64> = (0..FINAL_REPS).map(|_| self.measure(cfg)).collect();
        reps.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let mid = reps.len() / 2;
        if reps.len().is_multiple_of(2) {
            (reps[mid - 1] + reps[mid]) / 2.0
        } else {
            reps[mid]
        }
    }

    /// The noiseless model value (the oracle's view; not counted as an
    /// evaluation).
    pub fn true_time_ms(&self, cfg: &Configuration) -> f64 {
        model::kernel_time_ms(self.kernel.as_ref(), &self.arch, cfg)
    }
}

impl std::fmt::Debug for SimulatedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedKernel")
            .field("kernel", &self.kernel.name())
            .field("arch", &self.arch.name)
            .field("evaluations", &self.evaluations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::kernels::Benchmark;

    fn runner(seed: u64) -> SimulatedKernel {
        SimulatedKernel::new(Benchmark::Add.model(), arch::gtx_980(), seed)
    }

    fn cfg() -> Configuration {
        Configuration::from([1, 1, 1, 8, 4, 1])
    }

    #[test]
    fn measurements_count_and_vary() {
        let mut r = runner(1);
        let a = r.measure(&cfg());
        let b = r.measure(&cfg());
        assert_eq!(r.evaluations(), 2);
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a, b, "single-shot noise should differ across calls");
    }

    #[test]
    fn same_seed_same_trace() {
        let mut r1 = runner(42);
        let mut r2 = runner(42);
        let t1: Vec<f64> = (0..10).map(|_| r1.measure(&cfg())).collect();
        let t2: Vec<f64> = (0..10).map(|_| r2.measure(&cfg())).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn final_protocol_takes_ten_measurements() {
        let mut r = runner(3);
        let med = r.measure_final(&cfg());
        assert_eq!(r.evaluations(), FINAL_REPS as u64);
        // The median of 10 noisy reps is closer to truth than a single
        // unlucky sample would be.
        let truth = r.true_time_ms(&cfg());
        assert!(
            (med / truth - 1.0).abs() < 0.05,
            "median {med} truth {truth}"
        );
    }

    #[test]
    fn true_time_is_deterministic_and_uncounted() {
        let r = runner(4);
        let a = r.true_time_ms(&cfg());
        let b = r.true_time_ms(&cfg());
        assert_eq!(a, b);
        assert_eq!(r.evaluations(), 0);
    }

    #[test]
    fn invalid_configurations_cost_the_penalty() {
        let mut r = runner(5);
        let bad = Configuration::from([1, 1, 1, 8, 8, 8]); // 512 threads
        let t = r.measure(&bad);
        // Penalty is quantized by the timer but stays enormous.
        assert!(t > crate::model::FAILURE_PENALTY_MS * 0.5);
    }
}
