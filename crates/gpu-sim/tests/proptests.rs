//! Property-based tests for the GPU simulator.

use autotune_space::{imagecl, Configuration, Constraint};
use gpu_sim::kernels::Benchmark;
use gpu_sim::noise::NoiseModel;
use gpu_sim::runner::SimulatedKernel;
use gpu_sim::{arch, model};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = Configuration> {
    (
        1u32..=16,
        1u32..=16,
        1u32..=16,
        1u32..=8,
        1u32..=8,
        1u32..=8,
    )
        .prop_map(|(a, b, c, d, e, f)| Configuration::from([a, b, c, d, e, f]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_time_is_finite_positive_everywhere(cfg in arb_config()) {
        for bench in Benchmark::ALL {
            let k = bench.model();
            for a in arch::study_architectures() {
                let t = model::kernel_time_ms(k.as_ref(), &a, &cfg);
                prop_assert!(t.is_finite() && t > 0.0, "{bench:?}/{}: {t}", a.name);
                prop_assert!(t <= model::FAILURE_PENALTY_MS);
            }
        }
    }

    #[test]
    fn infeasible_work_groups_always_get_penalty(cfg in arb_config()) {
        let feasible = imagecl::constraint().is_satisfied(&cfg);
        let k = Benchmark::Add.model();
        let a = arch::titan_v();
        let b = model::breakdown(k.as_ref(), &a, &cfg);
        if !feasible {
            prop_assert!(!b.valid);
            prop_assert_eq!(b.total_ms, model::FAILURE_PENALTY_MS);
        }
    }

    #[test]
    fn feasible_configs_beat_the_penalty(cfg in arb_config()) {
        prop_assume!(imagecl::constraint().is_satisfied(&cfg));
        let k = Benchmark::Harris.model();
        let a = arch::gtx_980();
        let b = model::breakdown(k.as_ref(), &a, &cfg);
        prop_assert!(b.valid);
        prop_assert!(b.total_ms < model::FAILURE_PENALTY_MS / 2.0);
    }

    #[test]
    fn breakdown_invariants(cfg in arb_config()) {
        prop_assume!(imagecl::constraint().is_satisfied(&cfg));
        for bench in Benchmark::ALL {
            let k = bench.model();
            for a in arch::study_architectures() {
                let b = model::breakdown(k.as_ref(), &a, &cfg);
                prop_assert!(b.wave_factor >= 1.0);
                prop_assert!(b.imbalance >= 1.0);
                prop_assert!(b.occupancy.occupancy > 0.0 && b.occupancy.occupancy <= 1.0);
                prop_assert!(b.total_ms >= b.compute_ms.max(b.memory_ms));
            }
        }
    }

    #[test]
    fn noisy_measurements_bracket_truth(cfg in arb_config(), seed in 0u64..500) {
        prop_assume!(imagecl::constraint().is_satisfied(&cfg));
        let mut sim = SimulatedKernel::new(Benchmark::Mandelbrot.model(), arch::rtx_titan(), seed);
        let truth = sim.true_time_ms(&cfg);
        let measured = sim.measure(&cfg);
        // Study noise: a couple percent jitter, spikes at most +35%.
        prop_assert!(measured > truth * 0.9 && measured < truth * 1.45,
            "measured {measured}, truth {truth}");
    }

    #[test]
    fn noiseless_runner_reproduces_model(cfg in arb_config()) {
        prop_assume!(imagecl::constraint().is_satisfied(&cfg));
        let mut sim = SimulatedKernel::with_noise(
            Benchmark::Add.model(), arch::gtx_980(), NoiseModel::none(), 1);
        let truth = sim.true_time_ms(&cfg);
        prop_assert_eq!(sim.measure(&cfg), truth);
    }
}

#[test]
fn landscape_is_multimodal_not_flat() {
    // Sanity property of the study's objective: the landscape must have
    // real spread (orders of magnitude between best and worst feasible
    // configurations) — otherwise comparing search techniques is moot.
    let space = imagecl::space();
    let k = Benchmark::Add.model();
    let a = arch::gtx_980();
    let mut times = Vec::new();
    let mut idx = 0;
    while idx < space.size() {
        let cfg = space.config_at(idx);
        if imagecl::constraint().is_satisfied(&cfg) {
            times.push(model::kernel_time_ms(k.as_ref(), &a, &cfg));
        }
        idx += 2003;
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0_f64, f64::max);
    assert!(max / min > 20.0, "spread {min}..{max} too flat");
}

#[test]
fn dead_z_parameters_make_plateaus() {
    // Zt is a dead parameter on 2-D problems: changing it alone must not
    // change the time much (loop overhead only). This is a real feature
    // of the paper's search space that search techniques must cope with.
    let k = Benchmark::Add.model();
    let a = arch::titan_v();
    let base = model::kernel_time_ms(k.as_ref(), &a, &Configuration::from([2, 2, 1, 8, 4, 1]));
    for zt in 2..=16 {
        let t = model::kernel_time_ms(k.as_ref(), &a, &Configuration::from([2, 2, zt, 8, 4, 1]));
        assert!(
            (t / base - 1.0).abs() < 0.1,
            "Zt={zt} should be nearly dead: {t} vs {base}"
        );
    }
}
