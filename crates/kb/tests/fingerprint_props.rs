//! Property-based tests for fingerprint stability.
//!
//! The knowledge base is only useful if a problem's identity survives
//! cosmetic respelling: reordering the parameter list, renaming labels,
//! permuting the constraint's dimension indices. These properties pin
//! that invariance — and its converse, that genuine value-domain
//! changes always produce a different identity.

use autotune_core::Evaluation;
use autotune_kb::{canonical, family, KbStore, ProblemTag, StudyRecord};
use autotune_space::{Configuration, Param, ParamSpace, ProductAtMost};
use proptest::prelude::*;

/// Random value domains: 2-6 parameters with modest ranges.
fn arb_ranges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((1u32..6, 1u32..10), 2..=6)
        .prop_map(|v| v.into_iter().map(|(lo, span)| (lo, lo + span)).collect())
}

/// Ranges plus a permutation of their positions and a constraint mask.
fn arb_problem() -> impl Strategy<Value = (Vec<(u32, u32)>, Vec<usize>, Vec<bool>)> {
    arb_ranges().prop_flat_map(|ranges| {
        let n = ranges.len();
        (
            Just(ranges),
            Just((0..n).collect::<Vec<usize>>()).prop_shuffle(),
            proptest::collection::vec(any::<bool>(), n),
        )
    })
}

fn space_from(ranges: &[(u32, u32)], order: &[usize], label: &str) -> ParamSpace {
    ParamSpace::new(
        order
            .iter()
            .map(|&i| Param::new(format!("{label}{i}"), ranges[i].0, ranges[i].1))
            .collect(),
    )
}

/// The constraint over the masked parameters, expressed in the given
/// declaration order.
fn constraint_from(order: &[usize], mask: &[bool], limit: u64) -> ProductAtMost {
    let dims: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, &orig)| mask[orig])
        .map(|(pos, _)| pos)
        .collect();
    ProductAtMost::new(dims, limit)
}

fn tag() -> ProblemTag {
    ProblemTag::new("convolution", "Titan V")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reordered_and_renamed_spellings_hash_identically(
        (ranges, perm, mask) in arb_problem(),
        limit in 1u64..512,
    ) {
        let identity: Vec<usize> = (0..ranges.len()).collect();
        let a_space = space_from(&ranges, &identity, "p");
        let a_cons = constraint_from(&identity, &mask, limit);
        let b_space = space_from(&ranges, &perm, "renamed_");
        let b_cons = constraint_from(&perm, &mask, limit);
        prop_assert_eq!(
            canonical(&tag(), &a_space, Some(&a_cons)),
            canonical(&tag(), &b_space, Some(&b_cons))
        );
        prop_assert_eq!(
            family(&tag(), &a_space, Some(&a_cons)),
            family(&tag(), &b_space, Some(&b_cons))
        );
    }

    #[test]
    fn value_domain_changes_hash_differently(
        (ranges, _, mask) in arb_problem(),
        limit in 1u64..512,
        victim_frac in 0.0..1.0f64,
    ) {
        let identity: Vec<usize> = (0..ranges.len()).collect();
        let cons = constraint_from(&identity, &mask, limit);
        let base = canonical(&tag(), &space_from(&ranges, &identity, "p"), Some(&cons));

        // Widen one parameter's range.
        let victim = ((ranges.len() - 1) as f64 * victim_frac) as usize;
        let mut widened = ranges.clone();
        widened[victim].1 += 1;
        prop_assert_ne!(
            base,
            canonical(&tag(), &space_from(&widened, &identity, "p"), Some(&cons))
        );

        // Drop one parameter (and its mask entry).
        let mut fewer = ranges.clone();
        fewer.remove(victim);
        let mut fewer_mask = mask.clone();
        fewer_mask.remove(victim);
        let fewer_identity: Vec<usize> = (0..fewer.len()).collect();
        let fewer_cons = constraint_from(&fewer_identity, &fewer_mask, limit);
        prop_assert_ne!(
            base,
            canonical(
                &tag(),
                &space_from(&fewer, &fewer_identity, "p"),
                Some(&fewer_cons)
            )
        );
    }

    #[test]
    fn constraint_form_and_strength_behave(
        (ranges, _, mask) in arb_problem(),
        limit in 1u64..512,
    ) {
        let identity: Vec<usize> = (0..ranges.len()).collect();
        let space = space_from(&ranges, &identity, "p");
        let cons = constraint_from(&identity, &mask, limit);

        // The same constraint with its dims listed in reverse order is
        // an equivalent spelling.
        let mut reversed_dims = cons.dims().to_vec();
        reversed_dims.reverse();
        let reversed = ProductAtMost::new(reversed_dims, limit);
        prop_assert_eq!(
            canonical(&tag(), &space, Some(&cons)),
            canonical(&tag(), &space, Some(&reversed))
        );

        // A different limit is a different problem.
        let tighter = constraint_from(&identity, &mask, limit + 1);
        prop_assert_ne!(
            canonical(&tag(), &space, Some(&cons)),
            canonical(&tag(), &space, Some(&tighter))
        );
    }

    #[test]
    fn family_ignores_architecture_but_canonical_does_not(
        (ranges, _, mask) in arb_problem(),
        limit in 1u64..512,
    ) {
        let identity: Vec<usize> = (0..ranges.len()).collect();
        let space = space_from(&ranges, &identity, "p");
        let cons = constraint_from(&identity, &mask, limit);
        let titan = ProblemTag::new("convolution", "Titan V");
        let gtx = ProblemTag::new("convolution", "GTX 980");
        prop_assert_eq!(
            family(&titan, &space, Some(&cons)),
            family(&gtx, &space, Some(&cons))
        );
        prop_assert_ne!(
            canonical(&titan, &space, Some(&cons)),
            canonical(&gtx, &space, Some(&cons))
        );
    }

    #[test]
    fn persistence_round_trip_preserves_fingerprints(
        (ranges, _, mask) in arb_problem(),
        limit in 1u64..512,
        seed in 0u64..1000,
    ) {
        let identity: Vec<usize> = (0..ranges.len()).collect();
        let space = space_from(&ranges, &identity, "p");
        let cons = constraint_from(&identity, &mask, limit);
        let fp = canonical(&tag(), &space, Some(&cons));
        let fam = family(&tag(), &space, Some(&cons));

        let best = Evaluation {
            config: Configuration::new(ranges.iter().map(|&(lo, _)| lo).collect()),
            value: seed as f64,
        };
        let record = StudyRecord {
            fingerprint: fp,
            family: fam,
            problem: tag(),
            session: format!("prop-{seed}"),
            seed,
            recorded_at_ms: 1_700_000_000_000,
            algorithm: "RS".to_string(),
            budget: 25,
            converged: true,
            best: best.clone(),
            evaluations: vec![best],
        };

        let path = std::env::temp_dir().join(format!(
            "autotune-kb-prop-{}-{seed}-{}.kb.jsonl",
            std::process::id(),
            fp
        ));
        {
            let mut store = KbStore::open(&path).unwrap();
            store.append(record.clone()).unwrap();
        }
        let reopened = KbStore::open(&path).unwrap();
        let studies = reopened.studies(fp);
        prop_assert_eq!(studies.len(), 1);
        prop_assert_eq!(studies[0], &record);
        prop_assert_eq!(studies[0].fingerprint, fp);
        prop_assert_eq!(studies[0].family, fam);
        std::fs::remove_file(&path).unwrap();
    }
}
