//! Canonical problem fingerprints.
//!
//! The knowledge base keys every stored study by a stable 64-bit hash of
//! the *problem*: which kernel, on which architecture, over which search
//! space. Two sessions that describe the same problem differently — the
//! parameters listed in another order, renamed labels, the constraint's
//! dimension indices permuted — must collide on the same fingerprint, or
//! the store would never recognise a repeat query. Canonicalization:
//!
//! * the space digest is the **sorted multiset of `(lo, hi)` ranges** —
//!   parameter names and declaration order never enter the hash;
//! * the constraint digest is the limit plus the **sorted multiset of
//!   the constrained parameters' ranges** — dimension indices are
//!   resolved to the ranges they point at, so a permuted-but-isomorphic
//!   spelling hashes identically;
//! * anything that changes a value domain (widening a range, dropping a
//!   parameter, changing the limit) changes the hash.
//!
//! Hashing is hand-rolled (FNV-1a over strings, splitmix64 mixing) —
//! `std::collections::hash_map::DefaultHasher` is not guaranteed stable
//! across processes or releases, and these hashes live on disk.
//!
//! Two granularities exist: the [`canonical`] fingerprint pins the
//! architecture, and the [`family`] fingerprint drops it, letting
//! studies from a sibling GPU contribute down-weighted transfer priors.

use autotune_space::{ParamSpace, ProductAtMost};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Domain-separation token; bump when the canonicalization changes so
/// stale stores never alias new fingerprints.
const VERSION_TOKEN: &str = "kb-fingerprint-v1";

/// Placeholder architecture used by the family fingerprint.
const ANY_ARCHITECTURE: &str = "\u{1}any-architecture";

/// A stable 64-bit problem identity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Wraps a raw hash (exposed for tests and diagnostics).
    pub fn from_raw(raw: u64) -> Self {
        Fingerprint(raw)
    }

    /// The raw 64-bit hash.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What a session is tuning: the kernel and the hardware it runs on.
///
/// Both fields are free-form descriptors; equality is exact (the
/// canonicalization machinery normalizes *spaces*, not names — "Titan V"
/// and "titan-v" are distinct architectures by design, because guessing
/// at string equivalence silently merges genuinely different problems).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemTag {
    /// Kernel descriptor (e.g. `"convolution"`).
    pub kernel: String,
    /// Architecture descriptor (e.g. `"Titan V"`).
    pub architecture: String,
}

impl ProblemTag {
    /// Convenience constructor.
    pub fn new(kernel: &str, architecture: &str) -> Self {
        ProblemTag {
            kernel: kernel.to_string(),
            architecture: architecture.to_string(),
        }
    }
}

/// One round of the splitmix64 output function — a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Combines part-hashes into one digest (order-sensitive).
fn combine(parts: &[u64]) -> u64 {
    let mut acc = 0x243f6a8885a308d3; // pi digits, arbitrary non-zero
    for &p in parts {
        acc = splitmix64(acc ^ p);
    }
    acc
}

/// Hashes a string coordinate (FNV-1a).
fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest of one parameter's value domain: its `(lo, hi)` range only.
fn range_digest(lo: u32, hi: u32) -> u64 {
    combine(&[lo as u64, hi as u64])
}

/// The space digest: sorted multiset of range digests, so declaration
/// order and parameter names are invisible.
fn space_digest(space: &ParamSpace) -> u64 {
    let mut ranges: Vec<u64> = space
        .params()
        .iter()
        .map(|p| range_digest(p.lo(), p.hi()))
        .collect();
    ranges.sort_unstable();
    combine(&ranges)
}

/// The constraint digest: the limit plus the sorted multiset of the
/// *ranges* the constrained dimensions point at. Resolving indices to
/// ranges makes the digest invariant under any space permutation that
/// carries the constraint's indices along with it.
///
/// # Panics
///
/// Panics if a constrained dimension index is out of the space's bounds
/// (such a constraint never admits a meaningful fingerprint).
fn constraint_digest(space: &ParamSpace, constraint: Option<&ProductAtMost>) -> u64 {
    match constraint {
        None => hash_str("unconstrained"),
        Some(c) => {
            let params = space.params();
            let mut ranges: Vec<u64> = c
                .dims()
                .iter()
                .map(|&d| {
                    let p = params
                        .get(d)
                        .unwrap_or_else(|| panic!("constraint dim {d} outside the space"));
                    range_digest(p.lo(), p.hi())
                })
                .collect();
            ranges.sort_unstable();
            let mut parts = vec![hash_str("product_at_most"), c.limit()];
            parts.extend(ranges);
            combine(&parts)
        }
    }
}

/// The canonical fingerprint: kernel + architecture + normalized space +
/// normalized constraint.
pub fn canonical(
    tag: &ProblemTag,
    space: &ParamSpace,
    constraint: Option<&ProductAtMost>,
) -> Fingerprint {
    Fingerprint(combine(&[
        hash_str(VERSION_TOKEN),
        hash_str(&tag.kernel),
        hash_str(&tag.architecture),
        space_digest(space),
        constraint_digest(space, constraint),
    ]))
}

/// The relaxed family fingerprint: same as [`canonical`] with the
/// architecture erased. Studies that share a family but differ in
/// canonical fingerprint ran the same kernel and space on different
/// hardware — transfer candidates.
pub fn family(
    tag: &ProblemTag,
    space: &ParamSpace,
    constraint: Option<&ProductAtMost>,
) -> Fingerprint {
    let erased = ProblemTag {
        kernel: tag.kernel.clone(),
        architecture: ANY_ARCHITECTURE.to_string(),
    };
    canonical(&erased, space, constraint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_space::{imagecl, Param};

    fn tag() -> ProblemTag {
        ProblemTag::new("convolution", "Titan V")
    }

    #[test]
    fn deterministic_across_calls() {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let a = canonical(&tag(), &space, Some(&cons));
        let b = canonical(&tag(), &space, Some(&cons));
        assert_eq!(a, b);
    }

    #[test]
    fn known_value_pins_process_stability() {
        // A golden value: if this test ever fails, the on-disk hashing
        // changed and VERSION_TOKEN must be bumped.
        let space = ParamSpace::new(vec![Param::new("a", 1, 4), Param::new("b", 1, 2)]);
        let fp = canonical(&ProblemTag::new("k", "arch"), &space, None);
        assert_eq!(fp, canonical(&ProblemTag::new("k", "arch"), &space, None));
        assert_ne!(fp.as_u64(), 0);
    }

    #[test]
    fn parameter_order_and_names_are_invisible() {
        let a = ParamSpace::new(vec![Param::new("x", 1, 16), Param::new("y", 1, 8)]);
        let b = ParamSpace::new(vec![
            Param::new("renamed", 1, 8),
            Param::new("other", 1, 16),
        ]);
        assert_eq!(canonical(&tag(), &a, None), canonical(&tag(), &b, None));
    }

    #[test]
    fn value_domains_matter() {
        let a = ParamSpace::new(vec![Param::new("x", 1, 16), Param::new("y", 1, 8)]);
        let widened = ParamSpace::new(vec![Param::new("x", 1, 17), Param::new("y", 1, 8)]);
        let dropped = ParamSpace::new(vec![Param::new("x", 1, 16)]);
        assert_ne!(
            canonical(&tag(), &a, None),
            canonical(&tag(), &widened, None)
        );
        assert_ne!(
            canonical(&tag(), &a, None),
            canonical(&tag(), &dropped, None)
        );
    }

    #[test]
    fn equivalent_constraint_spellings_collide() {
        let space = imagecl::space();
        let a = ProductAtMost::new(vec![3, 4, 5], 256);
        let b = ProductAtMost::new(vec![5, 3, 4], 256);
        assert_eq!(
            canonical(&tag(), &space, Some(&a)),
            canonical(&tag(), &space, Some(&b))
        );
    }

    #[test]
    fn constraint_changes_matter() {
        let space = imagecl::space();
        let base = canonical(&tag(), &space, Some(&imagecl::constraint()));
        let looser = ProductAtMost::new(vec![3, 4, 5], 512);
        let narrower = ProductAtMost::new(vec![4, 5], 256);
        assert_ne!(base, canonical(&tag(), &space, Some(&looser)));
        assert_ne!(base, canonical(&tag(), &space, Some(&narrower)));
        assert_ne!(base, canonical(&tag(), &space, None));
    }

    #[test]
    fn kernel_and_architecture_matter() {
        let space = imagecl::space();
        let base = canonical(&tag(), &space, None);
        let other_kernel = canonical(&ProblemTag::new("mandelbrot", "Titan V"), &space, None);
        let other_arch = canonical(&ProblemTag::new("convolution", "GTX 980"), &space, None);
        assert_ne!(base, other_kernel);
        assert_ne!(base, other_arch);
    }

    #[test]
    fn family_erases_only_the_architecture() {
        let space = imagecl::space();
        let titan = ProblemTag::new("convolution", "Titan V");
        let gtx = ProblemTag::new("convolution", "GTX 980");
        assert_eq!(family(&titan, &space, None), family(&gtx, &space, None));
        assert_ne!(
            canonical(&titan, &space, None),
            canonical(&gtx, &space, None)
        );
        // A different kernel is a different family.
        let other = ProblemTag::new("mandelbrot", "Titan V");
        assert_ne!(family(&titan, &space, None), family(&other, &space, None));
    }

    #[test]
    fn display_is_sixteen_hex_digits() {
        let s = canonical(&tag(), &imagecl::space(), None).to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn serde_round_trips_transparently() {
        let fp = Fingerprint::from_raw(0xdead_beef);
        let json = serde_json::to_string(&fp).unwrap();
        assert_eq!(json, "3735928559");
        let back: Fingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fp);
        assert_eq!(back.as_u64(), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "outside the space")]
    fn out_of_bounds_constraint_dim_panics() {
        let space = ParamSpace::new(vec![Param::new("x", 1, 4)]);
        let cons = ProductAtMost::new(vec![7], 16);
        let _ = canonical(&tag(), &space, Some(&cons));
    }
}
