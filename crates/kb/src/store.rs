//! The persistent, crash-safe results store.
//!
//! One [`KbStore`] owns one append-only JSONL segment file: every
//! finished study appends one `study` line holding its provenance
//! (session name, seed, timestamp), its best configuration and a capped
//! best-first sample of its evaluations. The format mirrors the session
//! journal: one tagged JSON object per line, pushed toward disk after
//! every append according to the writer's
//! [`Durability`] mode, with a torn final
//! line (crash mid-append) dropped silently on load and corruption
//! anywhere else reported as [`KbError::Corrupt`]. A store opened
//! with [`KbStore::open_with_committer`] keeps the same file format
//! but appends through a shared
//! [`GroupCommitter`] so its fsyncs batch
//! with the service's write-ahead log instead of costing one per
//! study.
//!
//! Reads are served from an in-memory index rebuilt on open — the store
//! is small (capped evaluations, one line per study), so a full scan on
//! startup costs less than designing an on-disk index would.

use crate::fingerprint::{Fingerprint, ProblemTag};
use autotune_core::commit::{GroupCommitter, WriterHandle};
use autotune_core::{Evaluation, PriorHistory};
use autotune_space::Configuration;
use autotune_surrogates::PriorWeighting;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

// Shared vocabulary with the session journal and the trace sink.
pub use autotune_core::trace::Durability;

/// Cap on evaluations kept per stored study (best-first). Keeps every
/// record one modest JSONL line regardless of the study's budget.
pub const MAX_RECORD_EVALS: usize = 64;

/// Cap on prior points one [`KbStore::prior_for`] call assembles.
pub const MAX_PRIOR_TOTAL: usize = 128;

/// Errors from the knowledge-base store.
#[derive(Debug)]
pub enum KbError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structural corruption in the segment file.
    Corrupt(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Io(e) => write!(f, "kb io error: {e}"),
            KbError::Corrupt(msg) => write!(f, "kb store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for KbError {}

impl From<std::io::Error> for KbError {
    fn from(e: std::io::Error) -> Self {
        KbError::Io(e)
    }
}

impl From<serde_json::Error> for KbError {
    fn from(e: serde_json::Error) -> Self {
        KbError::Corrupt(e.to_string())
    }
}

/// One finished study, as persisted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyRecord {
    /// Canonical problem fingerprint.
    pub fingerprint: Fingerprint,
    /// Relaxed cross-architecture family fingerprint.
    pub family: Fingerprint,
    /// The human-readable problem identity behind the fingerprints.
    pub problem: ProblemTag,
    /// Provenance: the session that produced this study.
    pub session: String,
    /// Provenance: the session's RNG seed.
    pub seed: u64,
    /// Provenance: wall-clock timestamp (milliseconds since the Unix
    /// epoch), supplied by the caller so tests stay deterministic.
    pub recorded_at_ms: u64,
    /// The search technique that ran the study.
    pub algorithm: String,
    /// The evaluation budget the study ran with.
    pub budget: usize,
    /// `true` when the study spent its full budget before closing —
    /// the store's convergence criterion for instant answers.
    pub converged: bool,
    /// The study's best (configuration, cost) pair.
    pub best: Evaluation,
    /// Best-first sample of the study's evaluations, capped at
    /// [`MAX_RECORD_EVALS`] by [`KbStore::append`].
    pub evaluations: Vec<Evaluation>,
}

/// One line of the segment file. An enum (like the journal's `Record`)
/// so future line kinds — compactions, tombstones — stay backwards
/// readable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
enum Record {
    Study {
        /// The stored study.
        record: StudyRecord,
    },
}

/// Aggregate store statistics (the payload of the `kb` protocol op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KbStats {
    /// Total stored studies.
    pub studies: u64,
    /// Stored studies marked converged.
    pub converged_studies: u64,
    /// Distinct canonical fingerprints.
    pub problems: u64,
    /// Distinct family fingerprints.
    pub families: u64,
    /// Total stored evaluations across all studies.
    pub evaluations: u64,
}

/// Where appended lines go. `Direct` owns the file and pushes each
/// line toward disk itself (flush always, `sync_data` under
/// [`Durability::Sync`]); `Grouped` hands lines to a shared
/// [`GroupCommitter`] so kb appends ride the same batched-fsync
/// schedule as the service's write-ahead log — one `sync_data` per
/// batch instead of one per study.
#[derive(Debug)]
enum Backend {
    Direct(BufWriter<File>),
    Grouped(WriterHandle),
}

impl Backend {
    /// Persists one already-serialized line (newline included) with
    /// this backend's durability contract: on return the line is as
    /// durable as `durability` promises.
    fn write_line(&mut self, bytes: &[u8], durability: Durability) -> std::io::Result<()> {
        match self {
            Backend::Direct(file) => {
                file.write_all(bytes)?;
                file.flush()?;
                if durability == Durability::Sync {
                    file.get_ref().sync_data()?;
                }
                Ok(())
            }
            // append blocks until the containing batch commits; the
            // committer fsyncs per batch for Sync-registered files.
            Backend::Grouped(handle) => handle.append(bytes),
        }
    }
}

/// The knowledge base: an append-only segment file plus an in-memory
/// fingerprint index.
#[derive(Debug)]
pub struct KbStore {
    path: PathBuf,
    backend: Backend,
    durability: Durability,
    records: Vec<StudyRecord>,
    by_fingerprint: HashMap<Fingerprint, Vec<usize>>,
    by_family: HashMap<Fingerprint, Vec<usize>>,
}

impl KbStore {
    /// Opens (creating if absent) a store with [`Durability::Sync`].
    pub fn open(path: &Path) -> Result<Self, KbError> {
        Self::open_with(path, Durability::Sync)
    }

    /// Opens (creating if absent) a store with an explicit durability
    /// mode. Missing parent directories are created. Existing records
    /// are loaded into the index; a torn final line is dropped.
    pub fn open_with(path: &Path, durability: Durability) -> Result<Self, KbError> {
        let loaded = Self::load(path)?;
        let file = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
        Ok(Self::assemble(
            path,
            durability,
            Backend::Direct(file),
            loaded,
        ))
    }

    /// Opens (creating if absent) a store whose appends ride a shared
    /// [`GroupCommitter`] — the batched-fsync path the service's
    /// write-ahead log uses. Each append is handed to the committer
    /// and blocks only until the batch containing it commits, so many
    /// concurrent study closes share one `sync_data` instead of
    /// paying one each.
    pub fn open_with_committer(
        path: &Path,
        durability: Durability,
        committer: &GroupCommitter,
    ) -> Result<Self, KbError> {
        let loaded = Self::load(path)?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let handle = committer.register(file, durability);
        Ok(Self::assemble(
            path,
            durability,
            Backend::Grouped(handle),
            loaded,
        ))
    }

    /// Reads and validates every persisted study, creating missing
    /// parent directories along the way. Shared by both open paths.
    fn load(path: &Path) -> Result<Vec<StudyRecord>, KbError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut loaded: Vec<StudyRecord> = Vec::new();
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
            let last = lines.len().saturating_sub(1);
            for (i, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let record: Record = match serde_json::from_str(line) {
                    Ok(r) => r,
                    // Only the final line may be torn by a crash.
                    Err(_) if i == last => break,
                    Err(e) => {
                        return Err(KbError::Corrupt(format!(
                            "malformed record on line {}: {e}",
                            i + 1
                        )))
                    }
                };
                let Record::Study { mut record } = record;
                // Defense in depth against stores written before the
                // append-side sanitization: drop non-finite costs here
                // too, and skip studies left without a finite best, so
                // one bad historical record cannot poison prior
                // assembly or panic a best-first sort downstream.
                record.evaluations.retain(|e| e.value.is_finite());
                if !record.best.value.is_finite() {
                    // Unlike append, loaded evaluations carry no sort
                    // guarantee — pick the minimum, not the first.
                    match record
                        .evaluations
                        .iter()
                        .min_by(|a, b| a.value.total_cmp(&b.value))
                    {
                        Some(best) => record.best = best.clone(),
                        None => continue,
                    }
                }
                loaded.push(record);
            }
        }
        Ok(loaded)
    }

    fn assemble(
        path: &Path,
        durability: Durability,
        backend: Backend,
        loaded: Vec<StudyRecord>,
    ) -> Self {
        let mut store = KbStore {
            path: path.to_path_buf(),
            backend,
            durability,
            records: Vec::new(),
            by_fingerprint: HashMap::new(),
            by_family: HashMap::new(),
        };
        for record in loaded {
            store.index(record);
        }
        store
    }

    fn index(&mut self, record: StudyRecord) {
        let idx = self.records.len();
        self.by_fingerprint
            .entry(record.fingerprint)
            .or_default()
            .push(idx);
        self.by_family.entry(record.family).or_default().push(idx);
        self.records.push(record);
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The writer's durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Number of stored studies.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no studies are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one study. Non-finite evaluation values are dropped and
    /// the remainder is capped best-first at [`MAX_RECORD_EVALS`]; the
    /// line is as durable as the writer's [`Durability`] promises
    /// before the method returns — flushed (and synced under
    /// [`Durability::Sync`]) directly, or committed with its batch
    /// when the store rides a group committer
    /// ([`open_with_committer`](Self::open_with_committer)).
    ///
    /// A non-finite `best` is replaced by the study's best surviving
    /// evaluation; a study with *no* finite measurement at all is
    /// silently skipped. Neither may reach the file: `serde_json`
    /// writes NaN and infinities as `null`, and a `null` cost in a
    /// mid-file record would make every future [`open`](Self::open)
    /// fail with [`KbError::Corrupt`] — one poisoned study must not
    /// brick the whole knowledge base.
    pub fn append(&mut self, mut record: StudyRecord) -> Result<(), KbError> {
        record.evaluations.retain(|e| e.value.is_finite());
        // total_cmp, not partial_cmp-and-expect: sorting must never be
        // able to panic the serving path, whatever slips past retain.
        record
            .evaluations
            .sort_by(|a, b| a.value.total_cmp(&b.value));
        record.evaluations.truncate(MAX_RECORD_EVALS);
        if !record.best.value.is_finite() {
            match record.evaluations.first() {
                Some(best) => record.best = best.clone(),
                None => return Ok(()),
            }
        }
        let mut line = serde_json::to_string(&Record::Study {
            record: record.clone(),
        })?;
        line.push('\n');
        self.backend.write_line(line.as_bytes(), self.durability)?;
        self.index(record);
        Ok(())
    }

    /// Stored studies for a canonical fingerprint, oldest first.
    pub fn studies(&self, fingerprint: Fingerprint) -> Vec<&StudyRecord> {
        self.by_fingerprint
            .get(&fingerprint)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Stored studies sharing a family fingerprint, oldest first.
    pub fn family_studies(&self, family: Fingerprint) -> Vec<&StudyRecord> {
        self.by_family
            .get(&family)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// The instant-answer cache: the newest *converged* study of this
    /// exact problem whose budget was at least `budget`. A hit means a
    /// repeat query can be answered with the stored incumbent without
    /// spending a single evaluation.
    pub fn instant_answer(&self, fingerprint: Fingerprint, budget: usize) -> Option<&StudyRecord> {
        self.by_fingerprint.get(&fingerprint).and_then(|idxs| {
            idxs.iter()
                .rev()
                .map(|&i| &self.records[i])
                .find(|r| r.converged && r.budget >= budget)
        })
    }

    /// Assembles a warm-start prior for a problem.
    ///
    /// Exact-fingerprint studies contribute first (newest study = age 0,
    /// full architecture similarity), then family-only matches from
    /// other architectures with the transfer discount applied. Points
    /// are deduplicated by configuration — the newest, most-similar
    /// occurrence wins — and capped at [`MAX_PRIOR_TOTAL`]. Returns
    /// `None` when the store knows nothing relevant.
    pub fn prior_for(
        &self,
        fingerprint: Fingerprint,
        family: Fingerprint,
        weighting: &PriorWeighting,
    ) -> Option<PriorHistory> {
        let mut prior = PriorHistory::new();
        let mut seen: HashSet<Configuration> = HashSet::new();

        let mut fold = |records: Vec<&StudyRecord>, same_arch: bool, prior: &mut PriorHistory| {
            for (age, record) in records.iter().rev().enumerate() {
                let weight = weighting.weight(age, same_arch);
                for eval in &record.evaluations {
                    if prior.len() == MAX_PRIOR_TOTAL {
                        return;
                    }
                    if seen.insert(eval.config.clone()) {
                        prior.push(eval.config.clone(), eval.value, weight);
                    }
                }
            }
        };

        fold(self.studies(fingerprint), true, &mut prior);
        let transfer: Vec<&StudyRecord> = self
            .family_studies(family)
            .into_iter()
            .filter(|r| r.fingerprint != fingerprint)
            .collect();
        fold(transfer, false, &mut prior);

        (!prior.is_empty()).then_some(prior)
    }

    /// Aggregate statistics over the whole store.
    pub fn stats(&self) -> KbStats {
        KbStats {
            studies: self.records.len() as u64,
            converged_studies: self.records.iter().filter(|r| r.converged).count() as u64,
            problems: self.by_fingerprint.len() as u64,
            families: self.by_family.len() as u64,
            evaluations: self
                .records
                .iter()
                .map(|r| r.evaluations.len() as u64)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::{canonical, family as family_fp};
    use autotune_space::imagecl;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_store(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "autotune-kb-test-{}-{tag}-{n}.kb.jsonl",
            std::process::id()
        ))
    }

    fn eval(v: u32, value: f64) -> Evaluation {
        Evaluation {
            config: Configuration::from([v, 1, 1, 1, 1, 1]),
            value,
        }
    }

    fn record(arch: &str, session: &str, seed: u64, converged: bool) -> StudyRecord {
        let space = imagecl::space();
        let cons = imagecl::constraint();
        let tag = ProblemTag::new("convolution", arch);
        StudyRecord {
            fingerprint: canonical(&tag, &space, Some(&cons)),
            family: family_fp(&tag, &space, Some(&cons)),
            problem: tag,
            session: session.to_string(),
            seed,
            recorded_at_ms: 1_700_000_000_000 + seed,
            algorithm: "BO GP".to_string(),
            budget: 200,
            converged,
            best: eval(seed as u32 + 1, seed as f64),
            evaluations: vec![eval(seed as u32 + 1, seed as f64), eval(9, 99.0)],
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_store("roundtrip");
        let fp = record("Titan V", "s", 0, true).fingerprint;
        {
            let mut store = KbStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.append(record("Titan V", "s1", 1, true)).unwrap();
            store.append(record("Titan V", "s2", 2, false)).unwrap();
            assert_eq!(store.len(), 2);
        }
        let store = KbStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        let studies = store.studies(fp);
        assert_eq!(studies.len(), 2);
        assert_eq!(studies[0].session, "s1");
        assert_eq!(studies[1].session, "s2");
        // Evaluations were re-sorted best-first on append.
        assert!(studies[0].evaluations[0].value <= studies[0].evaluations[1].value);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = temp_store("torn");
        {
            let mut store = KbStore::open(&path).unwrap();
            store.append(record("Titan V", "s1", 1, true)).unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"study\",\"record\"").unwrap();
        drop(f);
        let store = KbStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp_store("corrupt");
        {
            let mut store = KbStore::open(&path).unwrap();
            store.append(record("Titan V", "s1", 1, true)).unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json\n").unwrap();
        drop(f);
        {
            // The corrupt line is last, so it is forgiven as torn...
            assert_eq!(KbStore::open(&path).unwrap().len(), 1);
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"study\"}\n").unwrap();
        drop(f);
        // ...but corruption before a later line is structural.
        assert!(matches!(KbStore::open(&path), Err(KbError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn instant_answer_requires_convergence_and_budget() {
        let path = temp_store("instant");
        let mut store = KbStore::open(&path).unwrap();
        let fp = record("Titan V", "s", 0, true).fingerprint;
        assert!(store.instant_answer(fp, 100).is_none());
        store.append(record("Titan V", "open", 1, false)).unwrap();
        assert!(store.instant_answer(fp, 100).is_none());
        store.append(record("Titan V", "done", 2, true)).unwrap();
        let hit = store.instant_answer(fp, 200).unwrap();
        assert_eq!(hit.session, "done");
        // A bigger requested budget than any stored study is a miss.
        assert!(store.instant_answer(fp, 201).is_none());
        // The newest converged study wins.
        store.append(record("Titan V", "newer", 3, true)).unwrap();
        assert_eq!(store.instant_answer(fp, 100).unwrap().session, "newer");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prior_prefers_fresh_same_architecture_evidence() {
        let path = temp_store("prior");
        let mut store = KbStore::open(&path).unwrap();
        store.append(record("Titan V", "old", 1, true)).unwrap();
        store.append(record("Titan V", "new", 2, true)).unwrap();
        store.append(record("GTX 980", "xfer", 3, true)).unwrap();

        let sample = record("Titan V", "probe", 0, true);
        let weighting = PriorWeighting::default();
        let prior = store
            .prior_for(sample.fingerprint, sample.family, &weighting)
            .unwrap();
        assert!(!prior.is_empty());
        // The newest same-arch study's points carry full weight; the
        // cross-arch transfer points carry the discount.
        let weights: Vec<f64> = prior.points().iter().map(|p| p.weight).collect();
        assert_eq!(weights[0], 1.0);
        assert!(weights
            .iter()
            .any(|&w| (w - weighting.transfer_discount).abs() < 1e-12));
        // Duplicate configurations across studies were folded.
        let configs: HashSet<_> = prior.points().iter().map(|p| p.config.clone()).collect();
        assert_eq!(configs.len(), prior.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prior_is_none_for_unknown_problems() {
        let path = temp_store("unknown");
        let store = KbStore::open(&path).unwrap();
        let sample = record("Titan V", "probe", 0, true);
        assert!(store
            .prior_for(
                sample.fingerprint,
                sample.family,
                &PriorWeighting::default()
            )
            .is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_caps_and_sanitizes_evaluations() {
        let path = temp_store("cap");
        let mut store = KbStore::open(&path).unwrap();
        let mut r = record("Titan V", "big", 1, true);
        r.evaluations = (0..200).map(|i| eval(1 + i % 16, i as f64)).collect();
        r.evaluations.push(eval(2, f64::NAN));
        r.evaluations.push(eval(3, f64::INFINITY));
        store.append(r).unwrap();
        let studies = store.studies(record("Titan V", "s", 0, true).fingerprint);
        assert_eq!(studies[0].evaluations.len(), MAX_RECORD_EVALS);
        assert!(studies[0].evaluations.iter().all(|e| e.value.is_finite()));
        assert!(studies[0]
            .evaluations
            .windows(2)
            .all(|w| w[0].value <= w[1].value));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_finite_best_is_replaced_or_the_study_skipped() {
        let path = temp_store("nanbest");
        let mut store = KbStore::open(&path).unwrap();
        // A NaN incumbent with finite evaluations: the best surviving
        // evaluation is promoted, and the store stays reloadable — the
        // old code serialized NaN as JSON null and bricked the reopen.
        let mut r = record("Titan V", "nan-best", 1, true);
        r.best = eval(2, f64::NAN);
        r.evaluations = vec![eval(4, 7.0), eval(5, 3.0), eval(6, f64::NAN)];
        store.append(r).unwrap();
        assert_eq!(store.len(), 1);
        // A study whose every measurement is non-finite has nothing
        // worth keeping and is skipped whole.
        let mut hopeless = record("Titan V", "hopeless", 2, true);
        hopeless.best = eval(2, f64::INFINITY);
        hopeless.evaluations = vec![eval(3, f64::NAN), eval(4, f64::NEG_INFINITY)];
        store.append(hopeless).unwrap();
        assert_eq!(store.len(), 1);
        drop(store);

        let back = KbStore::open(&path).unwrap();
        assert_eq!(back.len(), 1);
        let fp = record("Titan V", "probe", 0, true).fingerprint;
        let studies = back.studies(fp);
        assert_eq!(studies[0].best.value, 3.0);
        assert!(studies[0].evaluations.iter().all(|e| e.value.is_finite()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hand_corrupted_null_cost_line_cannot_brick_the_load() {
        let path = temp_store("nullcost");
        let probe = record("Titan V", "probe", 0, true);
        {
            let mut store = KbStore::open(&path).unwrap();
            store.append(record("Titan V", "good", 1, true)).unwrap();
        }
        // Simulate the pre-fix failure mode: a record whose best cost
        // was serialized as `null` (what serde_json makes of NaN),
        // appended by an old binary as the final line of the store.
        let mut broken = serde_json::to_value(Record::Study {
            record: record("Titan V", "broken", 2, true),
        })
        .unwrap();
        broken["record"]["best"]["value"] = serde_json::Value::Null;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(serde_json::to_string(&broken).unwrap().as_bytes())
            .unwrap();
        f.write_all(b"\n").unwrap();
        drop(f);
        // As the last line it is forgiven like a torn append; the store
        // opens and serves the healthy study instead of erroring out.
        let store = KbStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.studies(probe.fingerprint)[0].session, "good");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_count_the_store() {
        let path = temp_store("stats");
        let mut store = KbStore::open(&path).unwrap();
        assert_eq!(store.stats(), KbStats::default());
        store.append(record("Titan V", "a", 1, true)).unwrap();
        store.append(record("GTX 980", "b", 2, false)).unwrap();
        let stats = store.stats();
        assert_eq!(stats.studies, 2);
        assert_eq!(stats.converged_studies, 1);
        assert_eq!(stats.problems, 2); // two architectures
        assert_eq!(stats.families, 1); // one kernel+space family
        assert_eq!(stats.evaluations, 4);
        let json = serde_json::to_string(&stats).unwrap();
        let back: KbStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn both_durability_modes_round_trip() {
        for durability in [Durability::Sync, Durability::Buffered] {
            let path = temp_store("durability");
            let mut store = KbStore::open_with(&path, durability).unwrap();
            assert_eq!(store.durability(), durability);
            store.append(record("Titan V", "s", 1, true)).unwrap();
            drop(store);
            let back = KbStore::open_with(&path, durability).unwrap();
            assert_eq!(back.len(), 1, "{durability:?}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn grouped_appends_round_trip_into_a_direct_reopen() {
        use std::time::Duration;
        let path = temp_store("grouped");
        let committer = GroupCommitter::spawn(Duration::ZERO);
        for durability in [Durability::Sync, Durability::Buffered] {
            let mut store = KbStore::open_with_committer(&path, durability, &committer).unwrap();
            assert_eq!(store.durability(), durability);
            store
                .append(record("Titan V", "grouped", durability as u64, true))
                .unwrap();
            drop(store);
        }
        // Both writes are on disk (append returns post-commit), the
        // file format is unchanged, and a plain open reads them back.
        let back = KbStore::open(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert!(committer.stats().appends >= 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!("autotune-kb-dir-{}", std::process::id()));
        let path = dir.join("nested").join("store.kb.jsonl");
        let store = KbStore::open(&path).unwrap();
        assert_eq!(store.path(), path.as_path());
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
