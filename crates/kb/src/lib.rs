//! Cross-session knowledge base for the autotuning study.
//!
//! Tuning sessions are ephemeral; the problems they solve are not. This
//! crate remembers finished studies across sessions and processes so a
//! repeat of a known problem never starts from scratch:
//!
//! * [`fingerprint`] — canonical problem identity: a stable 64-bit hash
//!   over (kernel, architecture, normalized search space, normalized
//!   constraint). Parameter renames, declaration reorderings, and
//!   equivalent constraint spellings hash identically; value-domain
//!   changes do not. A relaxed *family* fingerprint drops the
//!   architecture so sibling GPUs can lend transfer evidence.
//! * [`store`] — the crash-safe append-only JSONL segment file keyed by
//!   those fingerprints, with provenance (session, seed, timestamp) on
//!   every record. It answers three questions: *have we converged on
//!   this exact problem before?* ([`KbStore::instant_answer`]), *what
//!   evidence should warm-start a new study?* ([`KbStore::prior_for`],
//!   weighted by recency and architecture similarity via
//!   [`autotune_surrogates::PriorWeighting`]), and *what does the store
//!   hold?* ([`KbStore::stats`]).
//!
//! The assembled [`autotune_core::PriorHistory`] flows into the tuners
//! through `TuneContext::with_prior`; the service layer wires the store
//! into session open/close and exposes it over the wire protocol.

#![warn(missing_docs)]

pub mod fingerprint;
pub mod store;

pub use fingerprint::{canonical, family, Fingerprint, ProblemTag};
pub use store::{Durability, KbError, KbStats, KbStore, StudyRecord};

// The weighting the store applies when assembling priors, re-exported
// so store users can tune it without a direct surrogates dependency.
pub use autotune_surrogates::PriorWeighting;
