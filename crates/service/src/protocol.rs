//! The `tuned` wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line, tagged by `"op"`; each
//! reply is one JSON object on one line, tagged by `"reply"`. Requests
//! are answered in order on the connection that sent them. The protocol
//! is deliberately minimal — five operations mirroring the
//! [`SessionManager`](crate::SessionManager) surface:
//!
//! ```text
//! -> {"op":"open","name":"run","spec":{"algorithm":"BoTpe","budget":40,"seed":2022,"space":{"kind":"image_cl"}}}
//! <- {"reply":"opened","name":"run"}
//! -> {"op":"suggest","name":"run"}
//! <- {"reply":"suggest","config":[4,1,2,8,4,2],"result":null}
//! -> {"op":"report","name":"run","value":12.25}
//! <- {"reply":"reported"}
//! -> {"op":"stats","name":"run"}
//! <- {"reply":"stats","stats":{...}}
//! -> {"op":"close","name":"run"}
//! <- {"reply":"closed","result":{...}}
//! ```

use crate::spec::SessionSpec;
use crate::stats::SessionStats;
use autotune_core::TuneResult;
use autotune_space::Configuration;
use serde::{Deserialize, Serialize};

/// A client-to-server request, one per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Open a fresh session under `name`.
    Open {
        /// The session name (filesystem-safe, at most 64 chars).
        name: String,
        /// The deterministic session blueprint.
        spec: SessionSpec,
    },
    /// Ask the named session for its next configuration.
    Suggest {
        /// The target session.
        name: String,
    },
    /// Report the measured cost of the pending suggestion.
    Report {
        /// The target session.
        name: String,
        /// The observed cost (lower is better).
        value: f64,
    },
    /// Fetch the session's observability counters.
    Stats {
        /// The target session.
        name: String,
    },
    /// Close and deregister the session.
    Close {
        /// The target session.
        name: String,
    },
}

/// A server-to-client reply, one per line.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum Response {
    /// The session was opened.
    Opened {
        /// The name it was registered under.
        name: String,
    },
    /// Answer to `suggest`: exactly one of the two fields is set.
    Suggest {
        /// The configuration to measure next, unless the run finished.
        config: Option<Configuration>,
        /// The final result, once the budget is spent.
        result: Option<TuneResult>,
    },
    /// The report was accepted (and journaled, if persistence is on).
    Reported,
    /// Answer to `stats`.
    Stats {
        /// The session's counters.
        stats: SessionStats,
    },
    /// The session was closed.
    Closed {
        /// The final result, if the budget had been spent.
        result: Option<TuneResult>,
    },
    /// The request failed.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::Algorithm;

    #[test]
    fn requests_round_trip_with_op_tags() {
        let open = Request::Open {
            name: "run".into(),
            spec: SessionSpec::imagecl(Algorithm::BoTpe, 40, 2022),
        };
        let json = serde_json::to_string(&open).unwrap();
        assert!(json.contains("\"op\":\"open\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), open);

        let report = Request::Report {
            name: "run".into(),
            value: 1.5,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"op\":\"report\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), report);
    }

    #[test]
    fn responses_round_trip_with_reply_tags() {
        let suggest = Response::Suggest {
            config: Some(Configuration::from([1, 2, 3])),
            result: None,
        };
        let json = serde_json::to_string(&suggest).unwrap();
        assert!(json.contains("\"reply\":\"suggest\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Suggest { config, result } => {
                assert_eq!(config, Some(Configuration::from([1, 2, 3])));
                assert!(result.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let err = Response::Error {
            message: "boom".into(),
        };
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"reply\":\"error\""));
    }

    #[test]
    fn hand_written_requests_parse() {
        // What a non-Rust client (curl + netcat, python) would write.
        let line = r#"{"op":"suggest","name":"run"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Suggest { name: "run".into() }
        );
        let line = r#"{"op":"open","name":"r","spec":{"algorithm":"RandomSearch","budget":5,"seed":1,"space":{"kind":"image_cl"}}}"#;
        assert!(matches!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Open { .. }
        ));
    }
}
