//! The `tuned` wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line, tagged by `"op"`; each
//! reply is one JSON object on one line, tagged by `"reply"`. Requests
//! are answered in order on the connection that sent them. The protocol
//! is deliberately minimal — the session operations mirroring the
//! [`SessionManager`](crate::SessionManager) surface plus four
//! server-wide observability reads, `metrics`, `timeseries`, `logs`,
//! and `health`, and the knowledge-base op `kb` (store statistics,
//! optional instant-answer lookup):
//!
//! ```text
//! -> {"op":"open","name":"run","spec":{"algorithm":"BoTpe","budget":40,"seed":2022,"space":{"kind":"image_cl"}}}
//! <- {"reply":"opened","name":"run"}
//! -> {"op":"suggest","name":"run"}
//! <- {"reply":"suggest","config":[4,1,2,8,4,2],"result":null}
//! -> {"op":"report","name":"run","value":12.25}
//! <- {"reply":"reported"}
//! -> {"op":"suggest_batch","name":"run","n":4}
//! <- {"reply":"suggest_batch","config":[[4,1,2,8,4,2],[2,2,1,8,8,2]],"result":null}
//! -> {"op":"report_batch","name":"run","values":[12.25,14.5]}
//! <- {"reply":"reported_batch","accepted":2}
//! -> {"op":"stats","name":"run"}
//! <- {"reply":"stats","stats":{...}}
//! -> {"op":"trace","name":"run"}
//! <- {"reply":"trace","events":[{"t_us":412,"kind":"trial","index":0,...},...]}
//! -> {"op":"metrics"}
//! <- {"reply":"metrics","metrics":{"counters":{...},"histograms":{...}}}
//! -> {"op":"timeseries","since_seq":42}
//! <- {"reply":"timeseries","points":[{"unix_ms":1722860000000,"uptime_seconds":3.5,"snapshot_seq":43,"gauges":{...}},...]}
//! -> {"op":"logs","tail":50}
//! <- {"reply":"logs","records":[{"seq":9,"unix_ms":...,"level":"info","component":"manager","message":"...","rid":"r-..."},...],"next_seq":9}
//! -> {"op":"logs","slow":true}
//! <- {"reply":"logs","slow":[{"unix_ms":...,"op":"suggest_batch","seconds":0.41,"rid":"r-..."}],"next_seq":9}
//! -> {"op":"health"}
//! <- {"reply":"health","health":{"status":"ok","live":true,"ready":true,...}}
//! -> {"op":"kb"}
//! <- {"reply":"kb","stats":{"studies":12,"converged_studies":9,...}}
//! -> {"op":"kb","lookup":{"algorithm":"BoTpe","budget":40,"seed":2022,"space":{"kind":"image_cl"},"problem":{"kernel":"convolution","architecture":"Titan V"}}}
//! <- {"reply":"kb","stats":{...},"answer":{"fingerprint":...,"best":{...},...}}
//! -> {"op":"diagnose","name":"run"}
//! <- {"reply":"diagnose","report":{"enabled":true,"trials":40,"pathologies":["overfitting"],...}}
//! -> {"op":"close","name":"run"}
//! <- {"reply":"closed","result":{...}}
//! ```
//!
//! # Request correlation
//!
//! Every request accepts an optional `rid` (request id) field — a
//! free-form client-chosen string. The server threads it through
//! dispatch, the engine, the journal, and the knowledge base: it
//! appears in every structured log record and slow-op entry emitted
//! while serving the request, in histogram bucket
//! [`Exemplar`](crate::metrics::Exemplar)s, and is echoed back in the
//! reply. A request *without* a `rid` is assigned an FNV-1a-derived one
//! ([`crate::log::derive_rid`]); to keep pre-correlation transcripts
//! byte-identical, server-assigned ids are echoed only on `error`
//! replies (which always carry the effective `rid`), while successful
//! replies echo the `rid` only when the client supplied one:
//!
//! ```text
//! -> {"op":"suggest","name":"run","rid":"deploy-42"}
//! <- {"reply":"suggest","config":[4,1,2,8,4,2],"result":null,"rid":"deploy-42"}
//! -> {"op":"suggest","name":"ghost"}
//! <- {"reply":"error","code":"unknown_session","message":"unknown session \"ghost\"","rid":"r-9f2a6c01d4e8b370"}
//! ```
//!
//! # Error replies
//!
//! Failures are answered in-band, never by dropping the connection:
//!
//! ```text
//! <- {"reply":"error","code":"unknown_session","message":"unknown session \"ghost\"","rid":"r-..."}
//! ```
//!
//! `code` is one of the machine-readable [`ErrorCode`] spellings —
//! `busy`, `timeout`, `unknown_session`, and `io` mark retryable
//! conditions; `invalid_spec`, `invalid_name`, `session_exists`,
//! `suggest_pending`, `no_pending_suggest`, `non_finite_value`,
//! `engine_stopped`, `engine_failed`, `replay_diverged`,
//! `replay_overrun`, `journal`, `protocol`, `request_too_large`, and
//! `internal` are fatal for the request that triggered them. `message`
//! stays free-form for humans; `rid` identifies the failing request in
//! the server's logs.
//! Three error replies additionally end the connection after being
//! written: `busy` (connection cap), `timeout` (read deadline), and
//! `request_too_large` (line cap).

use crate::error::{ErrorCode, ServiceError};
use crate::log::{LogCounts, LogRecord, SlowOp};
use crate::manager::KbAnswer;
use crate::metrics::MetricsSnapshot;
use crate::spec::SessionSpec;
use crate::stats::SessionStats;
use crate::tsdb::TimePoint;
use autotune_core::diagnostics::DiagnosticsReport;
use autotune_core::trace::TraceEvent;
use autotune_core::TuneResult;
use autotune_kb::KbStats;
use autotune_space::Configuration;
use serde::{Deserialize, Serialize};

/// Serde helper keeping `false` flags off the wire.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_false(b: &bool) -> bool {
    !*b
}

/// A client-to-server request, one per line.
///
/// Every variant carries an optional `rid` correlation id (absent on
/// the wire when unset, so pre-correlation transcripts stay
/// byte-identical); see the [module docs](self) for its semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Open a fresh session under `name`.
    Open {
        /// The session name (filesystem-safe, at most 64 chars).
        name: String,
        /// The deterministic session blueprint.
        spec: SessionSpec,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Ask the named session for its next configuration.
    Suggest {
        /// The target session.
        name: String,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Ask the named session for up to `n` configurations at once. How
    /// many come back is capped by the tuner's own chunk width (the
    /// spec's `batch`); sequential algorithms answer one at a time.
    SuggestBatch {
        /// The target session.
        name: String,
        /// Maximum number of configurations wanted.
        n: usize,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Report the measured cost of the oldest pending suggestion.
    Report {
        /// The target session.
        name: String,
        /// The observed cost (lower is better). Must be finite; NaN and
        /// infinities are rejected with `non_finite_value`.
        value: f64,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Report several measured costs at once, answering the oldest
    /// pending suggestions in order. All-or-nothing: a batch longer
    /// than the pending queue (or containing a non-finite value) is
    /// rejected without consuming anything.
    ReportBatch {
        /// The target session.
        name: String,
        /// The observed costs, in suggestion order. Each must be finite.
        values: Vec<f64>,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch the session's observability counters.
    Stats {
        /// The target session.
        name: String,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch every search-trace event the session's tuner has emitted
    /// so far (per-trial events, phase spans, algorithm payloads).
    Trace {
        /// The target session.
        name: String,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch the server-wide metrics snapshot (counters and latency
    /// histograms across all sessions and connections).
    Metrics {
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch the sampled metrics time series (the server's whole
    /// lifetime at power-of-two-downsampled resolution).
    Timeseries {
        /// When set, only points with `snapshot_seq` strictly greater
        /// than this are returned — the incremental-poll path. Absent
        /// in requests from pre-observatory clients, which parses as
        /// "everything".
        #[serde(default)]
        since_seq: Option<u64>,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch structured log records from the server's in-memory ring,
    /// or the slow-op ring.
    Logs {
        /// Return only the most recent `tail` records (default 100 when
        /// neither `tail` nor `since_seq` is given).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        tail: Option<usize>,
        /// Return records with `seq` strictly greater than this — the
        /// incremental-poll path. Takes precedence over `tail`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        since_seq: Option<u64>,
        /// When `true`, return the slow-op ring instead of log records.
        #[serde(default, skip_serializing_if = "is_false")]
        slow: bool,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch liveness/readiness plus SLO state (availability, latency
    /// error budgets, saturation, write health).
    Health {
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch knowledge-base statistics, optionally consulting the
    /// instant-answer cache for a spec.
    Kb {
        /// When set, the reply's `answer` field carries the stored
        /// incumbent for this spec's problem if a converged study with
        /// at least its budget exists.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        lookup: Option<Box<SessionSpec>>,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Fetch a session's search-health diagnostics report (incumbent
    /// trajectory, surrogate calibration, pathology verdicts, and the
    /// sample-size advisor).
    Diagnose {
        /// The target session.
        name: String,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Close and deregister the session.
    Close {
        /// The target session.
        name: String,
        /// Optional client-chosen correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
}

impl Request {
    /// The client-supplied correlation id, if any.
    pub fn rid(&self) -> Option<&str> {
        match self {
            Request::Open { rid, .. }
            | Request::Suggest { rid, .. }
            | Request::SuggestBatch { rid, .. }
            | Request::Report { rid, .. }
            | Request::ReportBatch { rid, .. }
            | Request::Stats { rid, .. }
            | Request::Trace { rid, .. }
            | Request::Metrics { rid }
            | Request::Timeseries { rid, .. }
            | Request::Logs { rid, .. }
            | Request::Health { rid }
            | Request::Kb { rid, .. }
            | Request::Diagnose { rid, .. }
            | Request::Close { rid, .. } => rid.as_deref(),
        }
    }

    /// The request's wire op name, for log records and the slow-op
    /// ring.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Suggest { .. } => "suggest",
            Request::SuggestBatch { .. } => "suggest_batch",
            Request::Report { .. } => "report",
            Request::ReportBatch { .. } => "report_batch",
            Request::Stats { .. } => "stats",
            Request::Trace { .. } => "trace",
            Request::Metrics { .. } => "metrics",
            Request::Timeseries { .. } => "timeseries",
            Request::Logs { .. } => "logs",
            Request::Health { .. } => "health",
            Request::Kb { .. } => "kb",
            Request::Diagnose { .. } => "diagnose",
            Request::Close { .. } => "close",
        }
    }
}

/// Overall health classification reported by the `health` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum HealthStatus {
    /// Every signal within bounds.
    Ok,
    /// At least one signal out of bounds (an SLO breached, availability
    /// below target, or a persistence layer failing writes).
    Degraded,
}

/// Rolling availability: the fraction of requests answered without an
/// `error` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Availability {
    /// `1 - errors/requests` over the window; 1.0 with no requests.
    pub ratio: f64,
    /// Requests observed in the window.
    pub window_requests: u64,
    /// Error replies observed in the window.
    pub window_errors: u64,
    /// `true` when the window is the sampled time series (rolling);
    /// `false` when sampling is off and the figures cover the whole
    /// process lifetime.
    pub rolling: bool,
}

/// One latency SLO evaluated against an existing histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloBudget {
    /// The histogram the SLO reads (`server_dispatch_seconds`, …).
    pub histogram: String,
    /// The p99 latency target, seconds.
    pub target_seconds: f64,
    /// Upper-bound estimate of the observed p99, from the bucket
    /// bounds; `None` when the p99 lands in the `+Inf` overflow bucket
    /// (beyond every bound).
    pub p99_seconds: Option<f64>,
    /// Share of the 1% error budget still unspent, in `[0, 1]`:
    /// `1 - over_target / (0.01 * count)`, clamped. 1.0 with no
    /// observations.
    pub budget_remaining: f64,
    /// `true` when the observed p99 exceeds the target.
    pub breached: bool,
}

/// Scheduler and registry saturation signals, from the per-shard
/// queue-depth gauges and residency governor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Saturation {
    /// Sessions with a live engine thread.
    pub resident_engines: u64,
    /// The residency governor's cap.
    pub max_resident: u64,
    /// Sessions currently parked by the governor.
    pub parked_sessions: u64,
    /// Registered sessions (live + parked).
    pub open_sessions: u64,
    /// Deepest registry shard (sessions behind one shard lock).
    pub max_shard_depth: u64,
    /// `resident_engines / max_resident`, in `[0, 1]`.
    pub utilization: f64,
}

/// Persistence-layer write health.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteHealth {
    /// Journal records appended so far.
    pub journal_appends: u64,
    /// Journal appends that failed at the filesystem (WAL write/fsync
    /// errors surface here too — WAL-backed journals report through the
    /// same counter).
    pub journal_append_failures: u64,
    /// Finished studies the knowledge base failed to persist.
    pub kb_append_failures: u64,
    /// Log records the file sink failed to persist.
    pub log_sink_failures: u64,
    /// Records the group-commit WAL has appended; 0 without a WAL.
    #[serde(default)]
    pub wal_appends: u64,
    /// Seconds since the WAL last advanced a checkpoint; `None` without
    /// a WAL (or before the first checkpoint-eligible write).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wal_checkpoint_age_seconds: Option<f64>,
    /// `true` when the WAL has unflushed active-segment bytes and the
    /// checkpoint age exceeds the configured staleness threshold —
    /// recovery replay is growing without bound.
    #[serde(default, skip_serializing_if = "is_false")]
    pub wal_stale: bool,
    /// `true` while every persistence layer has a clean write record
    /// (no append failures anywhere, and the WAL checkpoint is fresh).
    pub healthy: bool,
}

/// Aggregate search-health status across diagnosed sessions, as served
/// by the `health` op. Pathologies are *informational*: a session whose
/// search overfits does not degrade the server, so this section never
/// affects [`HealthReport::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchHealth {
    /// `true` when the server runs with per-session diagnostics on.
    pub enabled: bool,
    /// Sessions whose diagnostics have latched at least one pathology.
    pub sessions_flagged: u64,
    /// Pathology verdicts latched so far, across all sessions.
    pub pathologies: u64,
    /// `diagnose` requests served.
    pub diagnoses: u64,
}

/// Liveness/readiness plus SLO state, as served by the `health` op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Overall classification (worst of the signals below).
    pub status: HealthStatus,
    /// The process is up and dispatching (always `true` in a reply —
    /// the liveness probe is getting any reply at all).
    pub live: bool,
    /// The server is accepting work.
    pub ready: bool,
    /// Seconds since the metrics registry (≈ the process) started.
    pub uptime_seconds: f64,
    /// Rolling availability.
    pub availability: Availability,
    /// Latency error budgets against the configured p99 target.
    pub slos: Vec<SloBudget>,
    /// Scheduler saturation.
    pub saturation: Saturation,
    /// Persistence write health.
    pub writes: WriteHealth,
    /// Log-subsystem counters.
    pub log: LogCounts,
    /// Search-health rollup; absent in replies from pre-diagnostics
    /// servers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub search: Option<SearchHealth>,
}

/// A server-to-client reply, one per line.
///
/// Every variant carries an optional `rid` echoing the request's
/// correlation id (always set on `error` replies, set on success
/// replies only when the client supplied one — see the
/// [module docs](self)).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum Response {
    /// The session was opened.
    Opened {
        /// The name it was registered under.
        name: String,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `suggest`: exactly one of the two fields is set.
    Suggest {
        /// The configuration to measure next, unless the run finished.
        config: Option<Configuration>,
        /// The final result, once the budget is spent.
        result: Option<TuneResult>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `suggest_batch`: exactly one of the two fields is set.
    SuggestBatch {
        /// The configurations to measure next (1..=n of them), unless
        /// the run finished.
        config: Option<Vec<Configuration>>,
        /// The final result, once the budget is spent.
        result: Option<TuneResult>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// The report was accepted (and journaled, if persistence is on).
    Reported {
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `report_batch`: every value was accepted and journaled.
    ReportedBatch {
        /// How many values were accepted (the whole batch — the op is
        /// all-or-nothing).
        accepted: usize,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `stats`.
    Stats {
        /// The session's counters.
        stats: SessionStats,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `trace`.
    Trace {
        /// The session's trace-event stream, in emission order
        /// (timestamps are microseconds since the session opened).
        events: Vec<TraceEvent>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `metrics`.
    Metrics {
        /// The server-wide snapshot.
        metrics: MetricsSnapshot,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `timeseries`.
    Timeseries {
        /// Retained sample points, oldest first.
        points: Vec<TimePoint>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `logs`.
    Logs {
        /// Matching log records, oldest first (empty in `slow` mode).
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        records: Vec<LogRecord>,
        /// The slow-op ring, slowest first (only in `slow` mode).
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        slow: Vec<SlowOp>,
        /// The log's highest assigned sequence number; pass it back as
        /// `since_seq` to poll incrementally.
        next_seq: u64,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `health`.
    Health {
        /// The server's health report.
        health: Box<HealthReport>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `kb`.
    Kb {
        /// Aggregate store statistics (all zero when no store is
        /// attached).
        stats: KbStats,
        /// The instant answer for the request's `lookup` spec, when one
        /// exists.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        answer: Option<KbAnswer>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// Answer to `diagnose`.
    Diagnose {
        /// The session's search-health report (the
        /// [`DiagnosticsReport::disabled`] placeholder when the server
        /// runs without diagnostics).
        report: Box<DiagnosticsReport>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// The session was closed.
    Closed {
        /// The final result, if the budget had been spent.
        result: Option<TuneResult>,
        /// Echo of the request's correlation id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// The request failed.
    Error {
        /// Machine-readable classification (see [`ErrorCode`]); absent
        /// in replies from pre-code servers, which parses as
        /// [`ErrorCode::Internal`].
        #[serde(default)]
        code: ErrorCode,
        /// Human-readable failure description.
        message: String,
        /// The failing request's effective correlation id
        /// (server-assigned when the client sent none); absent in
        /// replies from pre-correlation servers.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
}

impl Response {
    /// The `error` reply for a [`ServiceError`]: its code plus its
    /// display rendering. The `rid` is attached later by the server's
    /// dispatch loop ([`Response::set_rid`]).
    pub fn error(e: &ServiceError) -> Response {
        Response::Error {
            code: e.code(),
            message: e.to_string(),
            rid: None,
        }
    }

    /// `true` for the `error` variant.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// The reply's correlation id, if set.
    pub fn rid(&self) -> Option<&str> {
        match self {
            Response::Opened { rid, .. }
            | Response::Suggest { rid, .. }
            | Response::SuggestBatch { rid, .. }
            | Response::Reported { rid }
            | Response::ReportedBatch { rid, .. }
            | Response::Stats { rid, .. }
            | Response::Trace { rid, .. }
            | Response::Metrics { rid, .. }
            | Response::Timeseries { rid, .. }
            | Response::Logs { rid, .. }
            | Response::Health { rid, .. }
            | Response::Kb { rid, .. }
            | Response::Diagnose { rid, .. }
            | Response::Closed { rid, .. }
            | Response::Error { rid, .. } => rid.as_deref(),
        }
    }

    /// Stamps the reply with the request's correlation id.
    pub fn set_rid(&mut self, value: String) {
        match self {
            Response::Opened { rid, .. }
            | Response::Suggest { rid, .. }
            | Response::SuggestBatch { rid, .. }
            | Response::Reported { rid }
            | Response::ReportedBatch { rid, .. }
            | Response::Stats { rid, .. }
            | Response::Trace { rid, .. }
            | Response::Metrics { rid, .. }
            | Response::Timeseries { rid, .. }
            | Response::Logs { rid, .. }
            | Response::Health { rid, .. }
            | Response::Kb { rid, .. }
            | Response::Diagnose { rid, .. }
            | Response::Closed { rid, .. }
            | Response::Error { rid, .. } => *rid = Some(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::Algorithm;

    #[test]
    fn requests_round_trip_with_op_tags() {
        let open = Request::Open {
            name: "run".into(),
            spec: SessionSpec::imagecl(Algorithm::BoTpe, 40, 2022),
            rid: None,
        };
        let json = serde_json::to_string(&open).unwrap();
        assert!(json.contains("\"op\":\"open\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), open);

        let report = Request::Report {
            name: "run".into(),
            value: 1.5,
            rid: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"op\":\"report\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), report);

        let json = serde_json::to_string(&Request::Metrics { rid: None }).unwrap();
        assert!(json.contains("\"op\":\"metrics\""));
        assert_eq!(
            serde_json::from_str::<Request>(&json).unwrap(),
            Request::Metrics { rid: None }
        );
    }

    #[test]
    fn responses_round_trip_with_reply_tags() {
        let suggest = Response::Suggest {
            config: Some(Configuration::from([1, 2, 3])),
            result: None,
            rid: None,
        };
        let json = serde_json::to_string(&suggest).unwrap();
        assert!(json.contains("\"reply\":\"suggest\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Suggest { config, result, .. } => {
                assert_eq!(config, Some(Configuration::from([1, 2, 3])));
                assert!(result.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let err = Response::Error {
            code: ErrorCode::Journal,
            message: "boom".into(),
            rid: None,
        };
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"reply\":\"error\""));
        assert!(json.contains("\"code\":\"journal\""));
    }

    #[test]
    fn error_replies_carry_codes_and_default_when_absent() {
        let reply = Response::error(&ServiceError::UnknownSession("ghost".into()));
        match &reply {
            Response::Error { code, message, rid } => {
                assert_eq!(*code, ErrorCode::UnknownSession);
                assert!(message.contains("ghost"));
                assert!(rid.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A pre-code server reply without the field still parses.
        let legacy = r#"{"reply":"error","message":"boom"}"#;
        match serde_json::from_str::<Response>(legacy).unwrap() {
            Response::Error { code, message, rid } => {
                assert_eq!(code, ErrorCode::Internal);
                assert_eq!(message, "boom");
                assert_eq!(rid, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn rids_ride_requests_and_replies_and_stay_off_the_wire_when_unset() {
        // Round trip with an explicit rid.
        let req = Request::Suggest {
            name: "run".into(),
            rid: Some("deploy-42".into()),
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"rid\":\"deploy-42\""));
        let back = serde_json::from_str::<Request>(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.rid(), Some("deploy-42"));
        assert_eq!(back.op_name(), "suggest");

        // Unset rids leave the wire format byte-identical to pre-PR
        // transcripts.
        let req = Request::Suggest {
            name: "run".into(),
            rid: None,
        };
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"op":"suggest","name":"run"}"#
        );
        let mut reply = Response::Reported { rid: None };
        assert_eq!(
            serde_json::to_string(&reply).unwrap(),
            r#"{"reply":"reported"}"#
        );
        reply.set_rid("r-1".into());
        assert_eq!(reply.rid(), Some("r-1"));
        assert_eq!(
            serde_json::to_string(&reply).unwrap(),
            r#"{"reply":"reported","rid":"r-1"}"#
        );

        // An error reply always spells its rid out.
        let mut err = Response::error(&ServiceError::Timeout);
        err.set_rid("r-f00".into());
        assert!(err.is_error());
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"rid\":\"r-f00\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Error { rid, .. } => assert_eq!(rid.as_deref(), Some("r-f00")),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn hand_written_requests_parse() {
        // What a non-Rust client (curl + netcat, python) would write.
        let line = r#"{"op":"suggest","name":"run"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Suggest {
                name: "run".into(),
                rid: None
            }
        );
        let line = r#"{"op":"open","name":"r","spec":{"algorithm":"RandomSearch","budget":5,"seed":1,"space":{"kind":"image_cl"}}}"#;
        assert!(matches!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Open { .. }
        ));
        let line = r#"{"op":"metrics"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Metrics { rid: None }
        );
        let line = r#"{"op":"trace","name":"run"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Trace {
                name: "run".into(),
                rid: None
            }
        );
        // A rid rides along in hand-written requests too.
        let line = r#"{"op":"report","name":"run","value":2.5,"rid":"curl-1"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap().rid(),
            Some("curl-1")
        );
    }

    #[test]
    fn batch_ops_round_trip_and_parse_hand_written() {
        let req = Request::SuggestBatch {
            name: "run".into(),
            n: 4,
            rid: None,
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"suggest_batch\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);

        let line = r#"{"op":"report_batch","name":"run","values":[12.25,14.5]}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::ReportBatch {
                name: "run".into(),
                values: vec![12.25, 14.5],
                rid: None,
            }
        );

        let reply = Response::SuggestBatch {
            config: Some(vec![
                Configuration::from([1, 2, 3]),
                Configuration::from([3, 2, 1]),
            ]),
            result: None,
            rid: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"suggest_batch\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::SuggestBatch {
                config: Some(cfgs),
                result: None,
                ..
            } => assert_eq!(cfgs.len(), 2),
            other => panic!("wrong variant: {other:?}"),
        }

        let json = serde_json::to_string(&Response::ReportedBatch {
            accepted: 2,
            rid: None,
        })
        .unwrap();
        assert!(json.contains("\"reply\":\"reported_batch\""));
        assert!(json.contains("\"accepted\":2"));
    }

    #[test]
    fn non_finite_wire_values_fail_to_parse_as_protocol_errors() {
        // JSON has no NaN/Infinity literals, so a non-finite report can
        // only reach the server as a malformed line; in-process callers
        // are caught by the manager's explicit finite check instead.
        for line in [
            r#"{"op":"report","name":"run","value":NaN}"#,
            r#"{"op":"report","name":"run","value":1e999}"#,
            r#"{"op":"report_batch","name":"run","values":[1.0,Infinity]}"#,
        ] {
            assert!(serde_json::from_str::<Request>(line).is_err(), "{line}");
        }
    }

    #[test]
    fn timeseries_requests_parse_with_and_without_since() {
        // Bare form, what a pre-observatory or lazy client writes.
        let line = r#"{"op":"timeseries"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Timeseries {
                since_seq: None,
                rid: None
            }
        );
        let line = r#"{"op":"timeseries","since_seq":42}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Timeseries {
                since_seq: Some(42),
                rid: None,
            }
        );
    }

    #[test]
    fn logs_requests_parse_all_modes_and_default_bare() {
        let line = r#"{"op":"logs"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Logs {
                tail: None,
                since_seq: None,
                slow: false,
                rid: None,
            }
        );
        let line = r#"{"op":"logs","tail":50}"#;
        assert!(matches!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Logs { tail: Some(50), .. }
        ));
        let line = r#"{"op":"logs","since_seq":9,"rid":"poll-1"}"#;
        match serde_json::from_str::<Request>(line).unwrap() {
            Request::Logs { since_seq, rid, .. } => {
                assert_eq!(since_seq, Some(9));
                assert_eq!(rid.as_deref(), Some("poll-1"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let line = r#"{"op":"logs","slow":true}"#;
        assert!(matches!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Logs { slow: true, .. }
        ));
        // The bare serialization stays one short line.
        let bare = Request::Logs {
            tail: None,
            since_seq: None,
            slow: false,
            rid: None,
        };
        assert_eq!(serde_json::to_string(&bare).unwrap(), r#"{"op":"logs"}"#);
    }

    #[test]
    fn logs_replies_round_trip_records_and_slow_ops() {
        use crate::log::{LogLevel, LogRecord, SlowOp};
        let reply = Response::Logs {
            records: vec![LogRecord {
                seq: 3,
                unix_ms: 1_722_000_000_000,
                level: LogLevel::Info,
                component: "manager".into(),
                message: "parked session".into(),
                rid: Some("r-1".into()),
                session: Some("run".into()),
            }],
            slow: vec![],
            next_seq: 3,
            rid: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"logs\""));
        assert!(json.contains("\"component\":\"manager\""));
        assert!(!json.contains("\"slow\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Logs {
                records, next_seq, ..
            } => {
                assert_eq!(records.len(), 1);
                assert_eq!(next_seq, 3);
                assert_eq!(records[0].rid.as_deref(), Some("r-1"));
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let reply = Response::Logs {
            records: vec![],
            slow: vec![SlowOp {
                unix_ms: 1,
                op: "suggest_batch".into(),
                seconds: 0.41,
                rid: Some("r-2".into()),
            }],
            next_seq: 7,
            rid: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(!json.contains("\"records\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Logs { slow, .. } => {
                assert_eq!(slow.len(), 1);
                assert_eq!(slow[0].op, "suggest_batch");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn health_requests_and_reports_round_trip() {
        let line = r#"{"op":"health"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Health { rid: None }
        );
        assert_eq!(
            serde_json::to_string(&Request::Health { rid: None }).unwrap(),
            r#"{"op":"health"}"#
        );

        let report = HealthReport {
            status: HealthStatus::Degraded,
            live: true,
            ready: true,
            uptime_seconds: 12.5,
            availability: Availability {
                ratio: 0.875,
                window_requests: 8,
                window_errors: 1,
                rolling: true,
            },
            slos: vec![SloBudget {
                histogram: "server_dispatch_seconds".into(),
                target_seconds: 0.25,
                p99_seconds: Some(1.0),
                budget_remaining: 0.0,
                breached: true,
            }],
            saturation: Saturation {
                resident_engines: 2,
                max_resident: 256,
                parked_sessions: 1,
                open_sessions: 3,
                max_shard_depth: 2,
                utilization: 2.0 / 256.0,
            },
            writes: WriteHealth {
                journal_appends: 40,
                journal_append_failures: 0,
                kb_append_failures: 0,
                log_sink_failures: 0,
                wal_appends: 40,
                wal_checkpoint_age_seconds: Some(1.5),
                wal_stale: false,
                healthy: true,
            },
            log: LogCounts {
                logged: 11,
                dropped: 0,
                sink_failures: 0,
                slow_ops: 2,
            },
            search: Some(SearchHealth {
                enabled: true,
                sessions_flagged: 1,
                pathologies: 2,
                diagnoses: 3,
            }),
        };
        let reply = Response::Health {
            health: Box::new(report.clone()),
            rid: Some("probe-1".into()),
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"health\""));
        assert!(json.contains("\"status\":\"degraded\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Health { health, rid } => {
                assert_eq!(*health, report);
                assert_eq!(rid.as_deref(), Some("probe-1"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // An overflow-bucket p99 spells as null and parses back.
        let slo = SloBudget {
            histogram: "h".into(),
            target_seconds: 0.1,
            p99_seconds: None,
            budget_remaining: 0.0,
            breached: true,
        };
        let json = serde_json::to_string(&slo).unwrap();
        assert!(json.contains("\"p99_seconds\":null"));
        assert_eq!(serde_json::from_str::<SloBudget>(&json).unwrap(), slo);
    }

    #[test]
    fn diagnose_round_trips_and_health_stays_back_compatible() {
        let req = Request::Diagnose {
            name: "run".into(),
            rid: Some("probe-7".into()),
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"diagnose\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
        assert_eq!(req.op_name(), "diagnose");
        assert_eq!(req.rid(), Some("probe-7"));

        let mut reply = Response::Diagnose {
            report: Box::new(DiagnosticsReport::disabled()),
            rid: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"diagnose\""));
        assert!(json.contains("\"enabled\":false"));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Diagnose { report, rid } => {
                assert!(!report.enabled);
                assert!(rid.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        reply.set_rid("r-1".into());
        assert_eq!(reply.rid(), Some("r-1"));

        // Write-health records from pre-WAL-health servers parse with
        // the new fields at their defaults.
        let old = r#"{"journal_appends":1,"journal_append_failures":0,"kb_append_failures":0,"log_sink_failures":0,"healthy":true}"#;
        let wh: WriteHealth = serde_json::from_str(old).unwrap();
        assert_eq!(wh.wal_appends, 0);
        assert!(wh.wal_checkpoint_age_seconds.is_none());
        assert!(!wh.wal_stale);
        // And a WAL-less server keeps the new optionals off the wire.
        let json = serde_json::to_string(&wh).unwrap();
        assert!(!json.contains("wal_checkpoint_age_seconds"));
        assert!(!json.contains("wal_stale"));
    }

    #[test]
    fn kb_requests_parse_bare_and_with_lookup() {
        // The bare form fetches statistics only and stays one short line.
        let line = r#"{"op":"kb"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Kb {
                lookup: None,
                rid: None
            }
        );
        let json = serde_json::to_string(&Request::Kb {
            lookup: None,
            rid: None,
        })
        .unwrap();
        assert_eq!(json, r#"{"op":"kb"}"#);

        let line = r#"{"op":"kb","lookup":{"algorithm":"BoTpe","budget":40,"seed":7,"space":{"kind":"image_cl"},"problem":{"kernel":"convolution","architecture":"Titan V"}}}"#;
        match serde_json::from_str::<Request>(line).unwrap() {
            Request::Kb {
                lookup: Some(spec), ..
            } => {
                assert_eq!(spec.budget, 40);
                assert_eq!(spec.problem.unwrap().kernel, "convolution");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn kb_replies_round_trip_with_and_without_answers() {
        use crate::manager::KbAnswer;
        use autotune_core::Evaluation;
        use autotune_kb::Fingerprint;

        let bare = Response::Kb {
            stats: KbStats::default(),
            answer: None,
            rid: None,
        };
        let json = serde_json::to_string(&bare).unwrap();
        assert!(json.contains("\"reply\":\"kb\""));
        assert!(!json.contains("answer"));

        let hit = Response::Kb {
            stats: KbStats {
                studies: 2,
                converged_studies: 1,
                problems: 1,
                families: 1,
                evaluations: 40,
            },
            answer: Some(KbAnswer {
                fingerprint: Fingerprint::from_raw(0xdead_beef),
                best: Evaluation {
                    config: Configuration::from([4, 1, 2, 8, 4, 2]),
                    value: 12.25,
                },
                session: "donor".into(),
                algorithm: "BO GP".into(),
                budget: 200,
            }),
            rid: None,
        };
        let json = serde_json::to_string(&hit).unwrap();
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Kb {
                stats,
                answer: Some(answer),
                ..
            } => {
                assert_eq!(stats.studies, 2);
                assert_eq!(answer.best.value, 12.25);
                assert_eq!(answer.session, "donor");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn timeseries_replies_round_trip_with_points() {
        use std::collections::BTreeMap;
        let reply = Response::Timeseries {
            points: vec![TimePoint {
                unix_ms: 1_722_860_000_000,
                uptime_seconds: 3.5,
                snapshot_seq: 43,
                gauges: BTreeMap::from([("server_requests".to_string(), 7.0)]),
            }],
            rid: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"timeseries\""));
        assert!(json.contains("\"snapshot_seq\":43"));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Timeseries { points, .. } => {
                assert_eq!(points.len(), 1);
                assert_eq!(points[0].gauge("server_requests"), Some(7.0));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn trace_replies_round_trip_with_event_payloads() {
        use autotune_core::trace::TraceRecord;
        let reply = Response::Trace {
            events: vec![
                TraceEvent {
                    t_us: 10,
                    record: TraceRecord::SpanBegin {
                        name: "objective".into(),
                    },
                },
                TraceEvent {
                    t_us: 52,
                    record: TraceRecord::Trial {
                        index: 0,
                        config: vec![4, 1, 2],
                        cost: 12.25,
                        best: 12.25,
                    },
                },
            ],
            rid: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"trace\""));
        assert!(json.contains("\"kind\":\"trial\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Trace { events, .. } => {
                assert_eq!(events.len(), 2);
                assert_eq!(events[1].t_us, 52);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
