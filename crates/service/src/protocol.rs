//! The `tuned` wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line, tagged by `"op"`; each
//! reply is one JSON object on one line, tagged by `"reply"`. Requests
//! are answered in order on the connection that sent them. The protocol
//! is deliberately minimal — eight operations mirroring the
//! [`SessionManager`](crate::SessionManager) surface plus two
//! server-wide observability reads, `metrics` and `timeseries`, and the
//! knowledge-base op `kb` (store statistics, optional instant-answer
//! lookup):
//!
//! ```text
//! -> {"op":"open","name":"run","spec":{"algorithm":"BoTpe","budget":40,"seed":2022,"space":{"kind":"image_cl"}}}
//! <- {"reply":"opened","name":"run"}
//! -> {"op":"suggest","name":"run"}
//! <- {"reply":"suggest","config":[4,1,2,8,4,2],"result":null}
//! -> {"op":"report","name":"run","value":12.25}
//! <- {"reply":"reported"}
//! -> {"op":"suggest_batch","name":"run","n":4}
//! <- {"reply":"suggest_batch","config":[[4,1,2,8,4,2],[2,2,1,8,8,2]],"result":null}
//! -> {"op":"report_batch","name":"run","values":[12.25,14.5]}
//! <- {"reply":"reported_batch","accepted":2}
//! -> {"op":"stats","name":"run"}
//! <- {"reply":"stats","stats":{...}}
//! -> {"op":"trace","name":"run"}
//! <- {"reply":"trace","events":[{"t_us":412,"kind":"trial","index":0,...},...]}
//! -> {"op":"metrics"}
//! <- {"reply":"metrics","metrics":{"counters":{...},"histograms":{...}}}
//! -> {"op":"timeseries","since_seq":42}
//! <- {"reply":"timeseries","points":[{"unix_ms":1722860000000,"uptime_seconds":3.5,"snapshot_seq":43,"gauges":{...}},...]}
//! -> {"op":"kb"}
//! <- {"reply":"kb","stats":{"studies":12,"converged_studies":9,...}}
//! -> {"op":"kb","lookup":{"algorithm":"BoTpe","budget":40,"seed":2022,"space":{"kind":"image_cl"},"problem":{"kernel":"convolution","architecture":"Titan V"}}}
//! <- {"reply":"kb","stats":{...},"answer":{"fingerprint":...,"best":{...},...}}
//! -> {"op":"close","name":"run"}
//! <- {"reply":"closed","result":{...}}
//! ```
//!
//! # Error replies
//!
//! Failures are answered in-band, never by dropping the connection:
//!
//! ```text
//! <- {"reply":"error","code":"unknown_session","message":"unknown session \"ghost\""}
//! ```
//!
//! `code` is one of the machine-readable [`ErrorCode`] spellings —
//! `busy`, `timeout`, `unknown_session`, and `io` mark retryable
//! conditions; `invalid_spec`, `invalid_name`, `session_exists`,
//! `suggest_pending`, `no_pending_suggest`, `non_finite_value`,
//! `engine_stopped`, `engine_failed`, `replay_diverged`,
//! `replay_overrun`, `journal`, `protocol`, `request_too_large`, and
//! `internal` are fatal for the request that triggered them. `message`
//! stays free-form for humans.
//! Three error replies additionally end the connection after being
//! written: `busy` (connection cap), `timeout` (read deadline), and
//! `request_too_large` (line cap).

use crate::error::{ErrorCode, ServiceError};
use crate::manager::KbAnswer;
use crate::metrics::MetricsSnapshot;
use crate::spec::SessionSpec;
use crate::stats::SessionStats;
use crate::tsdb::TimePoint;
use autotune_core::trace::TraceEvent;
use autotune_core::TuneResult;
use autotune_kb::KbStats;
use autotune_space::Configuration;
use serde::{Deserialize, Serialize};

/// A client-to-server request, one per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Open a fresh session under `name`.
    Open {
        /// The session name (filesystem-safe, at most 64 chars).
        name: String,
        /// The deterministic session blueprint.
        spec: SessionSpec,
    },
    /// Ask the named session for its next configuration.
    Suggest {
        /// The target session.
        name: String,
    },
    /// Ask the named session for up to `n` configurations at once. How
    /// many come back is capped by the tuner's own chunk width (the
    /// spec's `batch`); sequential algorithms answer one at a time.
    SuggestBatch {
        /// The target session.
        name: String,
        /// Maximum number of configurations wanted.
        n: usize,
    },
    /// Report the measured cost of the oldest pending suggestion.
    Report {
        /// The target session.
        name: String,
        /// The observed cost (lower is better). Must be finite; NaN and
        /// infinities are rejected with `non_finite_value`.
        value: f64,
    },
    /// Report several measured costs at once, answering the oldest
    /// pending suggestions in order. All-or-nothing: a batch longer
    /// than the pending queue (or containing a non-finite value) is
    /// rejected without consuming anything.
    ReportBatch {
        /// The target session.
        name: String,
        /// The observed costs, in suggestion order. Each must be finite.
        values: Vec<f64>,
    },
    /// Fetch the session's observability counters.
    Stats {
        /// The target session.
        name: String,
    },
    /// Fetch every search-trace event the session's tuner has emitted
    /// so far (per-trial events, phase spans, algorithm payloads).
    Trace {
        /// The target session.
        name: String,
    },
    /// Fetch the server-wide metrics snapshot (counters and latency
    /// histograms across all sessions and connections).
    Metrics,
    /// Fetch the sampled metrics time series (the server's whole
    /// lifetime at power-of-two-downsampled resolution).
    Timeseries {
        /// When set, only points with `snapshot_seq` strictly greater
        /// than this are returned — the incremental-poll path. Absent
        /// in requests from pre-observatory clients, which parses as
        /// "everything".
        #[serde(default)]
        since_seq: Option<u64>,
    },
    /// Fetch knowledge-base statistics, optionally consulting the
    /// instant-answer cache for a spec.
    Kb {
        /// When set, the reply's `answer` field carries the stored
        /// incumbent for this spec's problem if a converged study with
        /// at least its budget exists.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        lookup: Option<Box<SessionSpec>>,
    },
    /// Close and deregister the session.
    Close {
        /// The target session.
        name: String,
    },
}

/// A server-to-client reply, one per line.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum Response {
    /// The session was opened.
    Opened {
        /// The name it was registered under.
        name: String,
    },
    /// Answer to `suggest`: exactly one of the two fields is set.
    Suggest {
        /// The configuration to measure next, unless the run finished.
        config: Option<Configuration>,
        /// The final result, once the budget is spent.
        result: Option<TuneResult>,
    },
    /// Answer to `suggest_batch`: exactly one of the two fields is set.
    SuggestBatch {
        /// The configurations to measure next (1..=n of them), unless
        /// the run finished.
        config: Option<Vec<Configuration>>,
        /// The final result, once the budget is spent.
        result: Option<TuneResult>,
    },
    /// The report was accepted (and journaled, if persistence is on).
    Reported,
    /// Answer to `report_batch`: every value was accepted and journaled.
    ReportedBatch {
        /// How many values were accepted (the whole batch — the op is
        /// all-or-nothing).
        accepted: usize,
    },
    /// Answer to `stats`.
    Stats {
        /// The session's counters.
        stats: SessionStats,
    },
    /// Answer to `trace`.
    Trace {
        /// The session's trace-event stream, in emission order
        /// (timestamps are microseconds since the session opened).
        events: Vec<TraceEvent>,
    },
    /// Answer to `metrics`.
    Metrics {
        /// The server-wide snapshot.
        metrics: MetricsSnapshot,
    },
    /// Answer to `timeseries`.
    Timeseries {
        /// Retained sample points, oldest first.
        points: Vec<TimePoint>,
    },
    /// Answer to `kb`.
    Kb {
        /// Aggregate store statistics (all zero when no store is
        /// attached).
        stats: KbStats,
        /// The instant answer for the request's `lookup` spec, when one
        /// exists.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        answer: Option<KbAnswer>,
    },
    /// The session was closed.
    Closed {
        /// The final result, if the budget had been spent.
        result: Option<TuneResult>,
    },
    /// The request failed.
    Error {
        /// Machine-readable classification (see [`ErrorCode`]); absent
        /// in replies from pre-code servers, which parses as
        /// [`ErrorCode::Internal`].
        #[serde(default)]
        code: ErrorCode,
        /// Human-readable failure description.
        message: String,
    },
}

impl Response {
    /// The `error` reply for a [`ServiceError`]: its code plus its
    /// display rendering.
    pub fn error(e: &ServiceError) -> Response {
        Response::Error {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::Algorithm;

    #[test]
    fn requests_round_trip_with_op_tags() {
        let open = Request::Open {
            name: "run".into(),
            spec: SessionSpec::imagecl(Algorithm::BoTpe, 40, 2022),
        };
        let json = serde_json::to_string(&open).unwrap();
        assert!(json.contains("\"op\":\"open\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), open);

        let report = Request::Report {
            name: "run".into(),
            value: 1.5,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"op\":\"report\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), report);

        let json = serde_json::to_string(&Request::Metrics).unwrap();
        assert!(json.contains("\"op\":\"metrics\""));
        assert_eq!(
            serde_json::from_str::<Request>(&json).unwrap(),
            Request::Metrics
        );
    }

    #[test]
    fn responses_round_trip_with_reply_tags() {
        let suggest = Response::Suggest {
            config: Some(Configuration::from([1, 2, 3])),
            result: None,
        };
        let json = serde_json::to_string(&suggest).unwrap();
        assert!(json.contains("\"reply\":\"suggest\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Suggest { config, result } => {
                assert_eq!(config, Some(Configuration::from([1, 2, 3])));
                assert!(result.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let err = Response::Error {
            code: ErrorCode::Journal,
            message: "boom".into(),
        };
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"reply\":\"error\""));
        assert!(json.contains("\"code\":\"journal\""));
    }

    #[test]
    fn error_replies_carry_codes_and_default_when_absent() {
        let reply = Response::error(&ServiceError::UnknownSession("ghost".into()));
        match &reply {
            Response::Error { code, message } => {
                assert_eq!(*code, ErrorCode::UnknownSession);
                assert!(message.contains("ghost"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A pre-code server reply without the field still parses.
        let legacy = r#"{"reply":"error","message":"boom"}"#;
        match serde_json::from_str::<Response>(legacy).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Internal);
                assert_eq!(message, "boom");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn hand_written_requests_parse() {
        // What a non-Rust client (curl + netcat, python) would write.
        let line = r#"{"op":"suggest","name":"run"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Suggest { name: "run".into() }
        );
        let line = r#"{"op":"open","name":"r","spec":{"algorithm":"RandomSearch","budget":5,"seed":1,"space":{"kind":"image_cl"}}}"#;
        assert!(matches!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Open { .. }
        ));
        let line = r#"{"op":"metrics"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Metrics
        );
        let line = r#"{"op":"trace","name":"run"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Trace { name: "run".into() }
        );
    }

    #[test]
    fn batch_ops_round_trip_and_parse_hand_written() {
        let req = Request::SuggestBatch {
            name: "run".into(),
            n: 4,
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"suggest_batch\""));
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);

        let line = r#"{"op":"report_batch","name":"run","values":[12.25,14.5]}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::ReportBatch {
                name: "run".into(),
                values: vec![12.25, 14.5],
            }
        );

        let reply = Response::SuggestBatch {
            config: Some(vec![
                Configuration::from([1, 2, 3]),
                Configuration::from([3, 2, 1]),
            ]),
            result: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"suggest_batch\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::SuggestBatch {
                config: Some(cfgs),
                result: None,
            } => assert_eq!(cfgs.len(), 2),
            other => panic!("wrong variant: {other:?}"),
        }

        let json = serde_json::to_string(&Response::ReportedBatch { accepted: 2 }).unwrap();
        assert!(json.contains("\"reply\":\"reported_batch\""));
        assert!(json.contains("\"accepted\":2"));
    }

    #[test]
    fn non_finite_wire_values_fail_to_parse_as_protocol_errors() {
        // JSON has no NaN/Infinity literals, so a non-finite report can
        // only reach the server as a malformed line; in-process callers
        // are caught by the manager's explicit finite check instead.
        for line in [
            r#"{"op":"report","name":"run","value":NaN}"#,
            r#"{"op":"report","name":"run","value":1e999}"#,
            r#"{"op":"report_batch","name":"run","values":[1.0,Infinity]}"#,
        ] {
            assert!(serde_json::from_str::<Request>(line).is_err(), "{line}");
        }
    }

    #[test]
    fn timeseries_requests_parse_with_and_without_since() {
        // Bare form, what a pre-observatory or lazy client writes.
        let line = r#"{"op":"timeseries"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Timeseries { since_seq: None }
        );
        let line = r#"{"op":"timeseries","since_seq":42}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Timeseries {
                since_seq: Some(42)
            }
        );
    }

    #[test]
    fn kb_requests_parse_bare_and_with_lookup() {
        // The bare form fetches statistics only and stays one short line.
        let line = r#"{"op":"kb"}"#;
        assert_eq!(
            serde_json::from_str::<Request>(line).unwrap(),
            Request::Kb { lookup: None }
        );
        let json = serde_json::to_string(&Request::Kb { lookup: None }).unwrap();
        assert_eq!(json, r#"{"op":"kb"}"#);

        let line = r#"{"op":"kb","lookup":{"algorithm":"BoTpe","budget":40,"seed":7,"space":{"kind":"image_cl"},"problem":{"kernel":"convolution","architecture":"Titan V"}}}"#;
        match serde_json::from_str::<Request>(line).unwrap() {
            Request::Kb { lookup: Some(spec) } => {
                assert_eq!(spec.budget, 40);
                assert_eq!(spec.problem.unwrap().kernel, "convolution");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn kb_replies_round_trip_with_and_without_answers() {
        use crate::manager::KbAnswer;
        use autotune_core::Evaluation;
        use autotune_kb::Fingerprint;

        let bare = Response::Kb {
            stats: KbStats::default(),
            answer: None,
        };
        let json = serde_json::to_string(&bare).unwrap();
        assert!(json.contains("\"reply\":\"kb\""));
        assert!(!json.contains("answer"));

        let hit = Response::Kb {
            stats: KbStats {
                studies: 2,
                converged_studies: 1,
                problems: 1,
                families: 1,
                evaluations: 40,
            },
            answer: Some(KbAnswer {
                fingerprint: Fingerprint::from_raw(0xdead_beef),
                best: Evaluation {
                    config: Configuration::from([4, 1, 2, 8, 4, 2]),
                    value: 12.25,
                },
                session: "donor".into(),
                algorithm: "BO GP".into(),
                budget: 200,
            }),
        };
        let json = serde_json::to_string(&hit).unwrap();
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Kb {
                stats,
                answer: Some(answer),
            } => {
                assert_eq!(stats.studies, 2);
                assert_eq!(answer.best.value, 12.25);
                assert_eq!(answer.session, "donor");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn timeseries_replies_round_trip_with_points() {
        use std::collections::BTreeMap;
        let reply = Response::Timeseries {
            points: vec![TimePoint {
                unix_ms: 1_722_860_000_000,
                uptime_seconds: 3.5,
                snapshot_seq: 43,
                gauges: BTreeMap::from([("server_requests".to_string(), 7.0)]),
            }],
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"timeseries\""));
        assert!(json.contains("\"snapshot_seq\":43"));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Timeseries { points } => {
                assert_eq!(points.len(), 1);
                assert_eq!(points[0].gauge("server_requests"), Some(7.0));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn trace_replies_round_trip_with_event_payloads() {
        use autotune_core::trace::TraceRecord;
        let reply = Response::Trace {
            events: vec![
                TraceEvent {
                    t_us: 10,
                    record: TraceRecord::SpanBegin {
                        name: "objective".into(),
                    },
                },
                TraceEvent {
                    t_us: 52,
                    record: TraceRecord::Trial {
                        index: 0,
                        config: vec![4, 1, 2],
                        cost: 12.25,
                        best: 12.25,
                    },
                },
            ],
        };
        let json = serde_json::to_string(&reply).unwrap();
        assert!(json.contains("\"reply\":\"trace\""));
        assert!(json.contains("\"kind\":\"trial\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Trace { events } => {
                assert_eq!(events.len(), 2);
                assert_eq!(events[1].t_us, 52);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
