//! Std-only service metrics: atomic counters and fixed-bucket latency
//! histograms, snapshotted over the wire and rendered in the Prometheus
//! text exposition format.
//!
//! The module deliberately avoids any metrics dependency: a [`Counter`]
//! is one relaxed `AtomicU64`, a [`Histogram`] is a fixed set of atomic
//! buckets plus a nanosecond sum, so instrumenting a hot path costs a
//! handful of uncontended atomic adds. [`ServiceMetrics`] names every
//! instrument of the service layer; the experiments crate reuses the
//! same primitives for its worker-pool counters.
//!
//! Snapshots ([`MetricsSnapshot`]) are plain serde values served by the
//! `metrics` protocol op, and [`MetricsSnapshot::render_prometheus`]
//! turns one into `# TYPE`-less exposition text a Prometheus scraper
//! (or `grep`) understands line-by-line.

use crate::tsdb::{RecordOutcome, TimePoint, TimeSeriesStore};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in seconds: 1µs to 10s, one
/// decade per bucket, with an implicit `+Inf` overflow bucket on top.
pub const LATENCY_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// The worst (slowest) observation seen in one histogram bucket since
/// exemplars were last drained, linked back to the request that caused
/// it — the hook from a tail bucket to a replayable request id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Index of the bucket the observation fell in (`bounds.len()` is
    /// the `+Inf` overflow bucket).
    pub bucket: usize,
    /// Correlation id of the request being dispatched when the
    /// observation was recorded.
    pub rid: String,
    /// The observed duration, seconds.
    pub seconds: f64,
}

/// A fixed-bucket duration histogram.
///
/// Buckets are non-cumulative internally and cumulated only at render
/// time, so observation is a single relaxed `fetch_add` into the bucket
/// the value falls in plus count/sum updates. When a request
/// correlation id is in scope ([`crate::log::rid_scope`]) the histogram
/// additionally keeps the worst observation per bucket as an
/// [`Exemplar`]; the uncorrelated path pays one extra relaxed load.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds, seconds. One extra overflow bucket
    /// (`+Inf`) follows the last bound.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    /// Per-bucket worst observation in nanoseconds since the last
    /// exemplar drain; the lock-free gate in front of `exemplars`.
    exemplar_worst: Vec<AtomicU64>,
    /// Per-bucket worst correlated observation since the last drain.
    exemplars: Mutex<Vec<Option<Exemplar>>>,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds (seconds).
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            exemplar_worst: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            exemplars: Mutex::new((0..=bounds.len()).map(|_| None).collect()),
        }
    }

    /// A histogram over [`LATENCY_BOUNDS`].
    pub fn latency() -> Self {
        Self::with_bounds(&LATENCY_BOUNDS)
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_value(d.as_secs_f64());
    }

    /// Records one dimensionless observation (a batch size, a queue
    /// depth). The bucket bounds then read in that unit rather than
    /// seconds, and the snapshot's `sum_seconds` is the plain sum of
    /// observed values.
    pub fn observe_value(&self, value: f64) {
        let secs = value;
        let idx = self
            .bounds
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = (secs * 1e9) as u64;
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        if nanos > self.exemplar_worst[idx].load(Ordering::Relaxed) {
            crate::log::with_current_rid(|rid| {
                if let Some(rid) = rid {
                    let mut slots = self
                        .exemplars
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    // Re-check under the lock: another thread may have
                    // recorded something worse meanwhile.
                    if nanos > self.exemplar_worst[idx].load(Ordering::Relaxed) {
                        self.exemplar_worst[idx].store(nanos, Ordering::Relaxed);
                        slots[idx] = Some(Exemplar {
                            bucket: idx,
                            rid: rid.to_string(),
                            seconds: secs,
                        });
                    }
                }
            });
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy, including the current
    /// exemplars (not drained; see [`Histogram::reset_exemplars`]).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            exemplars: self
                .exemplars
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .iter()
                .flatten()
                .cloned()
                .collect(),
        }
    }

    /// Forgets the current exemplars so the next scrape reports the
    /// worst observations *since this one*. Called by
    /// [`ServiceMetrics::snapshot`] after copying them out; the
    /// sampler's once-a-second time-series path deliberately does not
    /// drain, so scrapes keep their exemplars regardless of sampling
    /// cadence.
    pub fn reset_exemplars(&self) {
        let mut slots = self
            .exemplars
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for slot in slots.iter_mut() {
            *slot = None;
        }
        for worst in &self.exemplar_worst {
            worst.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::latency()
    }
}

/// Bucket upper bounds for group-commit batch sizes, in records per
/// fsync: powers of two up to 128, `+Inf` above.
pub const BATCH_SIZE_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// A [`Histogram`] whose `Default` buckets by [`BATCH_SIZE_BOUNDS`]
/// instead of latency decades, so `ServiceMetrics` can keep deriving
/// `Default`. Derefs to the inner histogram — observe and snapshot
/// exactly as usual.
#[derive(Debug)]
pub struct BatchSizeHistogram(Histogram);

impl Default for BatchSizeHistogram {
    fn default() -> Self {
        BatchSizeHistogram(Histogram::with_bounds(&BATCH_SIZE_BOUNDS))
    }
}

impl std::ops::Deref for BatchSizeHistogram {
    type Target = Histogram;

    fn deref(&self) -> &Histogram {
        &self.0
    }
}

/// Point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds, seconds (the `+Inf` overflow
    /// bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts;
    /// `counts.len() == bounds.len() + 1`, the final entry being the
    /// overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, seconds.
    pub sum_seconds: f64,
    /// Worst correlated observation per bucket since the last scrape
    /// drained them. Empty for snapshots from pre-correlation servers
    /// (`#[serde(default)]`) and for uncorrelated traffic; absent from
    /// the wire when empty so pre-exemplar transcripts stay
    /// byte-identical.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub exemplars: Vec<Exemplar>,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (0 < q <= 1): the upper
    /// bound of the first bucket at which the cumulative count reaches
    /// `q * count`. Returns 0 with no observations and `+Inf` when the
    /// quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }

    /// How many observations certainly exceeded `target` seconds: the
    /// count in every bucket whose *lower* bound is at or above the
    /// target (bucketing makes this a conservative undercount).
    pub fn count_over(&self, target: f64) -> u64 {
        let mut over = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            if lower >= target {
                over += c;
            }
        }
        over
    }
}

/// Point-in-time copy of a whole metrics registry, as served by the
/// `metrics` protocol op.
///
/// `uptime_seconds` and `snapshot_seq` were added after the first wire
/// release; both carry `#[serde(default)]` so snapshots from older
/// servers still parse (as 0) and older clients simply ignore the new
/// fields.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Names in `counters` that are last-value gauges rather than
    /// monotone counters (WAL levels, shard depths, flagged-session
    /// counts, …), so the Prometheus rendering can type them correctly.
    /// Empty in snapshots from pre-gauge-typing servers.
    #[serde(default, skip_serializing_if = "BTreeSet::is_empty")]
    pub gauge_names: BTreeSet<String>,
    /// Seconds since the metrics registry (≈ the server process) was
    /// created.
    #[serde(default)]
    pub uptime_seconds: f64,
    /// Sequence number of this snapshot, strictly increasing per
    /// registry and starting at 1; a scrape observing a *lower* value
    /// than before is watching a restarted server.
    #[serde(default)]
    pub snapshot_seq: u64,
}

impl MetricsSnapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as Prometheus text exposition lines, every
    /// metric prefixed with `autotune_` and preceded by spec-compliant
    /// `# HELP` / `# TYPE` comment lines. Counters become one
    /// `<name> <value>` line; gauges (see
    /// [`gauge_names`](MetricsSnapshot::gauge_names)) the same with
    /// `TYPE gauge`; histograms expand to cumulative
    /// `_bucket{le="..."}` lines (ending at `+Inf`) plus `_sum` and
    /// `_count`. Ordering is fully deterministic — fixed preamble, then
    /// counters and histograms each in `BTreeMap` (lexicographic)
    /// order — and pinned by a golden test.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let meta = |out: &mut String, name: &str, kind: &str, help: &str| {
            out.push_str(&format!("# HELP autotune_{name} {help}\n"));
            out.push_str(&format!("# TYPE autotune_{name} {kind}\n"));
        };
        meta(
            &mut out,
            "uptime_seconds",
            "gauge",
            "Seconds since the metrics registry started.",
        );
        out.push_str(&format!(
            "autotune_uptime_seconds {}\n",
            self.uptime_seconds
        ));
        meta(
            &mut out,
            "snapshot_seq",
            "counter",
            "Strictly increasing snapshot sequence number.",
        );
        out.push_str(&format!("autotune_snapshot_seq {}\n", self.snapshot_seq));
        for (name, value) in &self.counters {
            if self.gauge_names.contains(name) {
                meta(&mut out, name, "gauge", "Last-value level gauge.");
            } else {
                meta(&mut out, name, "counter", "Monotone event counter.");
            }
            out.push_str(&format!("autotune_{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            meta(&mut out, name, "histogram", "Cumulative histogram.");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                out.push_str(&format!(
                    "autotune_{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            cumulative += h.counts.last().copied().unwrap_or(0);
            out.push_str(&format!(
                "autotune_{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!("autotune_{name}_sum {}\n", h.sum_seconds));
            out.push_str(&format!("autotune_{name}_count {}\n", h.count));
        }
        out
    }
}

/// Every instrument of the service layer, shared (via the
/// [`SessionManager`](crate::SessionManager)) between the manager, the
/// engine call sites, the journals, and any number of servers.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Connections the accept loop received.
    pub connections_accepted: Counter,
    /// Connections turned away with a `busy` error (connection cap).
    pub connections_rejected_busy: Counter,
    /// Connections whose handler thread failed to spawn.
    pub connection_spawn_failures: Counter,
    /// Connections that finished (EOF, timeout, oversize, or error).
    pub connections_closed: Counter,
    /// Connections dropped because no complete line arrived within the
    /// read deadline.
    pub read_timeouts: Counter,
    /// Request lines rejected for exceeding the configured size cap.
    pub oversized_requests: Counter,
    /// Request lines that were not valid protocol JSON.
    pub malformed_requests: Counter,
    /// Requests dispatched (including ones answered with an error).
    pub requests: Counter,
    /// Requests answered with an `error` reply.
    pub request_errors: Counter,
    /// Wall time from parsed request to ready reply.
    pub dispatch_seconds: Histogram,
    /// Suggestions served across all sessions.
    pub engine_suggests: Counter,
    /// Reports accepted across all sessions.
    pub engine_reports: Counter,
    /// `suggest_batch` calls answered with at least one configuration
    /// (the configurations themselves count into `engine_suggests`).
    pub engine_batch_suggests: Counter,
    /// `report_batch` calls carrying more than one value (the values
    /// themselves count into `engine_reports`).
    pub engine_batch_reports: Counter,
    /// Reports rejected at the service boundary for carrying NaN or
    /// infinite costs.
    pub reports_rejected_non_finite: Counter,
    /// Live sessions parked (engine thread retired, state snapshotted)
    /// by the residency governor.
    pub sessions_parked: Counter,
    /// Parked sessions resumed on access (engine replayed back to its
    /// pre-park position).
    pub sessions_resumed: Counter,
    /// Engine-side latency of one `suggest` rendezvous.
    pub engine_suggest_seconds: Histogram,
    /// Engine-side latency of one `report` rendezvous (journal append
    /// included when persistence is on).
    pub engine_report_seconds: Histogram,
    /// Sessions opened fresh.
    pub sessions_opened: Counter,
    /// Sessions rebuilt from their journals.
    pub sessions_recovered: Counter,
    /// Sessions closed deliberately.
    pub sessions_closed: Counter,
    /// Sessions evicted by the idle-TTL reaper.
    pub sessions_evicted: Counter,
    /// Journal records appended (evals and closes).
    pub journal_appends: Counter,
    /// Journal appends that failed at the filesystem (the request that
    /// carried them was answered with a `journal` error); nonzero
    /// values flip the `health` op's write-health signal.
    pub journal_append_failures: Counter,
    /// Evaluations replayed out of journals at recovery time.
    pub journal_replayed_evals: Counter,
    /// Latency of one durable journal append.
    pub journal_append_seconds: Histogram,
    /// Trace-event batches appended to journals.
    pub journal_trace_batches: Counter,
    /// Records appended through the shared WAL's group committer (all
    /// registered writers: session logs and, when so opened, the kb).
    pub wal_appends: Counter,
    /// `fsync` calls the group committer issued. The headline ratio
    /// `wal_appends / wal_fsyncs` is the group-commit amplification —
    /// fsync-per-append journals pin it at 1.
    pub wal_fsyncs: Counter,
    /// Records per group-commit batch. Dimensionless: buckets read in
    /// records, `sum` in total records (see
    /// [`Histogram::observe_value`]).
    pub wal_batch_records: BatchSizeHistogram,
    /// Session checkpoints appended to the WAL (interval-due, forced,
    /// and compaction-written alike).
    pub checkpoints_total: Counter,
    /// Sealed WAL segments reclaimed by compaction.
    pub segments_compacted: Counter,
    /// Knowledge-base lookups that found usable evidence (an instant
    /// answer or a warm-start prior).
    pub kb_hits: Counter,
    /// Knowledge-base lookups that found nothing relevant.
    pub kb_misses: Counter,
    /// Sessions opened with a knowledge-base prior installed.
    pub kb_seeded_sessions: Counter,
    /// Finished studies the knowledge base failed to persist (the
    /// close itself still succeeds; the kb is an opportunistic cache).
    pub kb_append_failures: Counter,
    /// `diagnose` requests served (session-level search-health reads).
    pub search_health_diagnoses: Counter,
    /// Pathology verdicts latched across all diagnosed sessions
    /// (Converged / Stalled / Overfitting / WorseThanRandom).
    pub search_health_pathologies: Counter,
    /// Per-phase histograms of algorithm-internal span durations
    /// (`surrogate_fit`, `acquisition`, `objective`, …), fed by the
    /// engine's trace sink. Dynamic because the phase vocabulary is
    /// algorithm-dependent; snapshotted as
    /// `search_phase_seconds_{phase}` so one Prometheus scrape covers
    /// engine *and* algorithm time.
    search_phase_seconds: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Snapshots sampled into the time-series store.
    pub tsdb_samples: Counter,
    /// Times the time-series store halved its buffer.
    pub tsdb_downsamples: Counter,
    /// Named last-value gauges ([`set_gauge`](Self::set_gauge)), merged
    /// into the snapshot's counter map so they flow through the
    /// Prometheus rendering and the time-series store unchanged. Used
    /// by the scheduler for per-shard registry depth and residency
    /// figures, which are levels rather than event counts.
    gauges: Mutex<BTreeMap<String, u64>>,
    /// When this registry was created; the zero point of
    /// `uptime_seconds`.
    start: StartInstant,
    /// Sequence number handed to the next snapshot (post-increment).
    snapshot_seq: AtomicU64,
    /// Sampled history of this registry, served by the `timeseries`
    /// protocol op.
    timeseries: TimeSeriesStore,
}

/// `Instant` wrapper so `ServiceMetrics` can keep deriving `Default`.
#[derive(Debug, Clone, Copy)]
struct StartInstant(Instant);

impl Default for StartInstant {
    fn default() -> StartInstant {
        StartInstant(Instant::now())
    }
}

impl ServiceMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the duration of one completed search phase span.
    pub fn observe_phase(&self, phase: &str, d: Duration) {
        let hist = {
            let mut map = self.search_phase_seconds.lock().expect("metrics lock");
            match map.get(phase) {
                Some(h) => h.clone(),
                None => {
                    let h = Arc::new(Histogram::latency());
                    map.insert(phase.to_string(), h.clone());
                    h
                }
            }
        };
        hist.observe(d);
    }

    /// Sets a named gauge to its current level. Gauges appear in
    /// snapshots alongside the counters (same map, same Prometheus
    /// lines) but carry a last-write-wins value instead of a sum.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.gauges
            .lock()
            .expect("metrics lock")
            .insert(name.to_string(), value);
    }

    /// Copies every instrument into a serializable snapshot, draining
    /// histogram exemplars — this is the "scrape" that exemplars are
    /// worst-since.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_impl(true)
    }

    /// Like [`snapshot`](Self::snapshot) but leaves exemplars in place.
    /// The `health` op reads through this so an SLO probe never steals
    /// the exemplars a real `metrics` scrape is waiting for.
    pub(crate) fn peek_snapshot(&self) -> MetricsSnapshot {
        self.snapshot_impl(false)
    }

    fn snapshot_impl(&self, drain_exemplars: bool) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        let c = |map: &mut BTreeMap<String, u64>, name: &str, counter: &Counter| {
            map.insert(name.to_string(), counter.get());
        };
        c(
            &mut counters,
            "server_connections_accepted",
            &self.connections_accepted,
        );
        c(
            &mut counters,
            "server_connections_rejected_busy",
            &self.connections_rejected_busy,
        );
        c(
            &mut counters,
            "server_connection_spawn_failures",
            &self.connection_spawn_failures,
        );
        c(
            &mut counters,
            "server_connections_closed",
            &self.connections_closed,
        );
        c(&mut counters, "server_read_timeouts", &self.read_timeouts);
        c(
            &mut counters,
            "server_oversized_requests",
            &self.oversized_requests,
        );
        c(
            &mut counters,
            "server_malformed_requests",
            &self.malformed_requests,
        );
        c(&mut counters, "server_requests", &self.requests);
        c(&mut counters, "server_request_errors", &self.request_errors);
        c(&mut counters, "engine_suggests", &self.engine_suggests);
        c(&mut counters, "engine_reports", &self.engine_reports);
        c(
            &mut counters,
            "engine_batch_suggests",
            &self.engine_batch_suggests,
        );
        c(
            &mut counters,
            "engine_batch_reports",
            &self.engine_batch_reports,
        );
        c(
            &mut counters,
            "reports_rejected_non_finite",
            &self.reports_rejected_non_finite,
        );
        c(&mut counters, "sessions_parked", &self.sessions_parked);
        c(&mut counters, "sessions_resumed", &self.sessions_resumed);
        c(&mut counters, "sessions_opened", &self.sessions_opened);
        c(
            &mut counters,
            "sessions_recovered",
            &self.sessions_recovered,
        );
        c(&mut counters, "sessions_closed", &self.sessions_closed);
        c(&mut counters, "sessions_evicted", &self.sessions_evicted);
        c(&mut counters, "journal_appends", &self.journal_appends);
        c(
            &mut counters,
            "journal_append_failures",
            &self.journal_append_failures,
        );
        c(
            &mut counters,
            "journal_replayed_evals",
            &self.journal_replayed_evals,
        );
        c(
            &mut counters,
            "journal_trace_batches",
            &self.journal_trace_batches,
        );
        c(&mut counters, "wal_appends", &self.wal_appends);
        c(&mut counters, "wal_fsyncs", &self.wal_fsyncs);
        c(&mut counters, "checkpoints_total", &self.checkpoints_total);
        c(
            &mut counters,
            "segments_compacted",
            &self.segments_compacted,
        );
        c(&mut counters, "kb_hits", &self.kb_hits);
        c(&mut counters, "kb_misses", &self.kb_misses);
        c(
            &mut counters,
            "kb_seeded_sessions",
            &self.kb_seeded_sessions,
        );
        c(
            &mut counters,
            "kb_append_failures",
            &self.kb_append_failures,
        );
        c(
            &mut counters,
            "search_health_diagnoses",
            &self.search_health_diagnoses,
        );
        c(
            &mut counters,
            "search_health_pathologies",
            &self.search_health_pathologies,
        );
        c(&mut counters, "tsdb_samples", &self.tsdb_samples);
        c(&mut counters, "tsdb_downsamples", &self.tsdb_downsamples);
        let mut gauge_names = BTreeSet::new();
        for (name, value) in self.gauges.lock().expect("metrics lock").iter() {
            counters.insert(name.clone(), *value);
            gauge_names.insert(name.clone());
        }
        let mut snap_hist = |name: &str, hist: &Histogram| {
            let snapshot = hist.snapshot();
            if drain_exemplars {
                hist.reset_exemplars();
            }
            histograms.insert(name.to_string(), snapshot);
        };
        snap_hist("server_dispatch_seconds", &self.dispatch_seconds);
        snap_hist("engine_suggest_seconds", &self.engine_suggest_seconds);
        snap_hist("engine_report_seconds", &self.engine_report_seconds);
        snap_hist("journal_append_seconds", &self.journal_append_seconds);
        snap_hist("wal_batch_records", &self.wal_batch_records);
        for (phase, hist) in self
            .search_phase_seconds
            .lock()
            .expect("metrics lock")
            .iter()
        {
            snap_hist(&format!("search_phase_seconds_{phase}"), hist);
        }
        MetricsSnapshot {
            counters,
            histograms,
            gauge_names,
            uptime_seconds: self.start.0.elapsed().as_secs_f64(),
            snapshot_seq: self.snapshot_seq.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// The registry's sampled history.
    pub fn timeseries(&self) -> &TimeSeriesStore {
        &self.timeseries
    }

    /// Takes a snapshot and records it into the time-series store,
    /// stamped with the caller's wall-clock time. Called by the
    /// server's sampler thread; also usable directly in tests and
    /// benches. This path does *not* drain histogram exemplars: a
    /// once-a-second sampler must not steal them from real scrapes.
    pub fn sample_timeseries(&self, unix_ms: u64) -> RecordOutcome {
        let snapshot = self.snapshot_impl(false);
        let outcome = self
            .timeseries
            .record(TimePoint::from_snapshot(&snapshot, unix_ms));
        self.tsdb_samples.inc();
        if outcome.downsampled {
            self.tsdb_downsamples.inc();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_observations_by_bound() {
        let h = Histogram::with_bounds(&[1e-3, 1e-2]);
        h.observe(Duration::from_micros(100)); // <= 1ms
        h.observe(Duration::from_millis(5)); // <= 10ms
        h.observe(Duration::from_secs(1)); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert!((s.sum_seconds - 1.0051).abs() < 1e-6);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let m = ServiceMetrics::new();
        m.requests.add(3);
        m.dispatch_seconds.observe(Duration::from_micros(20));
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("server_requests"), Some(3));
        assert_eq!(back.histogram("server_dispatch_seconds").unwrap().count, 1);
    }

    #[test]
    fn prometheus_rendering_parses_line_by_line() {
        let m = ServiceMetrics::new();
        m.requests.add(7);
        m.engine_suggest_seconds.observe(Duration::from_millis(2));
        m.engine_suggest_seconds.observe(Duration::from_secs(20));
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("autotune_server_requests 7"));
        assert!(text.contains("autotune_engine_suggest_seconds_bucket{le=\"+Inf\"} 2"));
        let mut lines = 0;
        for line in text.lines() {
            if let Some(comment) = line.strip_prefix("# ") {
                // HELP/TYPE comments name an autotune_-prefixed metric.
                let mut parts = comment.split_whitespace();
                let kind = parts.next().expect("comment kind");
                assert!(kind == "HELP" || kind == "TYPE", "bad comment {line:?}");
                let name = parts.next().expect("comment metric name");
                assert!(name.starts_with("autotune_"), "bad name in {line:?}");
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().expect("metric name");
            let value = parts.next().expect("metric value");
            assert!(parts.next().is_none(), "extra tokens in {line:?}");
            assert!(name.starts_with("autotune_"), "bad name in {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            lines += 1;
        }
        assert!(lines > 20);
    }

    #[test]
    fn prometheus_rendering_order_is_golden() {
        // The exposition order is part of the scrape contract: fixed
        // preamble, counters lexicographically, histograms
        // lexicographically, each metric preceded by its HELP and TYPE
        // comments. A gauge-typed entry renders as `gauge`.
        let mut snap = MetricsSnapshot {
            uptime_seconds: 1.5,
            snapshot_seq: 9,
            ..MetricsSnapshot::default()
        };
        snap.counters.insert("b_counter".into(), 2);
        snap.counters.insert("a_counter".into(), 1);
        snap.counters.insert("c_level".into(), 3);
        snap.gauge_names.insert("c_level".into());
        snap.histograms.insert(
            "z_seconds".into(),
            HistogramSnapshot {
                bounds: vec![0.5],
                counts: vec![1, 0],
                sum_seconds: 0.25,
                count: 1,
                exemplars: Vec::new(),
            },
        );
        let expected = "\
# HELP autotune_uptime_seconds Seconds since the metrics registry started.
# TYPE autotune_uptime_seconds gauge
autotune_uptime_seconds 1.5
# HELP autotune_snapshot_seq Strictly increasing snapshot sequence number.
# TYPE autotune_snapshot_seq counter
autotune_snapshot_seq 9
# HELP autotune_a_counter Monotone event counter.
# TYPE autotune_a_counter counter
autotune_a_counter 1
# HELP autotune_b_counter Monotone event counter.
# TYPE autotune_b_counter counter
autotune_b_counter 2
# HELP autotune_c_level Last-value level gauge.
# TYPE autotune_c_level gauge
autotune_c_level 3
# HELP autotune_z_seconds Cumulative histogram.
# TYPE autotune_z_seconds histogram
autotune_z_seconds_bucket{le=\"0.5\"} 1
autotune_z_seconds_bucket{le=\"+Inf\"} 1
autotune_z_seconds_sum 0.25
autotune_z_seconds_count 1
";
        assert_eq!(snap.render_prometheus(), expected);
        // Rendering is a pure function: same snapshot, same bytes.
        assert_eq!(snap.render_prometheus(), snap.render_prometheus());
    }

    #[test]
    fn phase_histograms_appear_in_snapshot_with_prefix() {
        let m = ServiceMetrics::new();
        m.observe_phase("surrogate_fit", Duration::from_millis(3));
        m.observe_phase("surrogate_fit", Duration::from_millis(7));
        m.observe_phase("acquisition", Duration::from_micros(40));
        let snap = m.snapshot();
        assert_eq!(
            snap.histogram("search_phase_seconds_surrogate_fit")
                .unwrap()
                .count,
            2
        );
        assert_eq!(
            snap.histogram("search_phase_seconds_acquisition")
                .unwrap()
                .count,
            1
        );
        let text = snap.render_prometheus();
        assert!(text.contains("autotune_search_phase_seconds_surrogate_fit_count 2"));
    }

    #[test]
    fn snapshot_seq_increases_and_uptime_advances() {
        let m = ServiceMetrics::new();
        let first = m.snapshot();
        let second = m.snapshot();
        assert_eq!(first.snapshot_seq, 1);
        assert_eq!(second.snapshot_seq, 2);
        assert!(second.uptime_seconds >= first.uptime_seconds);
        assert!(first.uptime_seconds >= 0.0);
        let text = second.render_prometheus();
        assert!(text.contains("autotune_snapshot_seq 2"));
        assert!(text.contains("autotune_uptime_seconds "));
    }

    #[test]
    fn snapshot_parses_pre_observatory_wire_format() {
        // A PR-2 era snapshot has neither uptime nor seq; both must
        // default to zero rather than fail the parse.
        let old = r#"{"counters":{"server_requests":3},"histograms":{}}"#;
        let snap: MetricsSnapshot = serde_json::from_str(old).unwrap();
        assert_eq!(snap.counter("server_requests"), Some(3));
        assert_eq!(snap.uptime_seconds, 0.0);
        assert_eq!(snap.snapshot_seq, 0);
    }

    #[test]
    fn sample_timeseries_records_points_and_counts() {
        let m = ServiceMetrics::new();
        m.requests.add(2);
        assert!(m.sample_timeseries(100).kept);
        m.requests.add(3);
        assert!(m.sample_timeseries(200).kept);
        let points = m.timeseries().points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].gauge("server_requests"), Some(2.0));
        assert_eq!(points[1].gauge("server_requests"), Some(5.0));
        assert!(points[0].snapshot_seq < points[1].snapshot_seq);
        assert!(points[0].unix_ms < points[1].unix_ms);
        // The sample counters themselves land in later snapshots.
        let snap = m.snapshot();
        assert_eq!(snap.counter("tsdb_samples"), Some(2));
        assert_eq!(snap.counter("tsdb_downsamples"), Some(0));
    }

    #[test]
    fn gauges_join_the_counter_map_with_last_write_wins() {
        let m = ServiceMetrics::new();
        m.set_gauge("scheduler_shard_depth_3", 7);
        m.set_gauge("scheduler_shard_depth_3", 4);
        m.set_gauge("scheduler_resident_engines", 2);
        let snap = m.snapshot();
        assert_eq!(snap.counter("scheduler_shard_depth_3"), Some(4));
        assert_eq!(snap.counter("scheduler_resident_engines"), Some(2));
        let text = snap.render_prometheus();
        assert!(text.contains("autotune_scheduler_shard_depth_3 4"));
        // Gauges ride the same pipeline into the time-series store.
        m.sample_timeseries(50);
        let points = m.timeseries().points();
        assert_eq!(points[0].gauge("scheduler_shard_depth_3"), Some(4.0));
    }

    #[test]
    fn exemplars_link_worst_bucket_observations_to_rids() {
        let m = ServiceMetrics::new();
        // Uncorrelated traffic leaves no exemplars behind.
        m.dispatch_seconds.observe(Duration::from_millis(2));
        {
            let _scope = crate::log::rid_scope("r-fast", true);
            m.dispatch_seconds.observe(Duration::from_millis(3));
        }
        {
            let _scope = crate::log::rid_scope("r-slow", true);
            m.dispatch_seconds.observe(Duration::from_millis(9));
        }
        {
            // Not worse than r-slow within the same bucket: ignored.
            let _scope = crate::log::rid_scope("r-mid", true);
            m.dispatch_seconds.observe(Duration::from_millis(5));
        }
        let snap = m.snapshot();
        let exemplars = &snap.histogram("server_dispatch_seconds").unwrap().exemplars;
        assert_eq!(exemplars.len(), 1, "{exemplars:?}");
        assert_eq!(exemplars[0].rid, "r-slow");
        assert!((exemplars[0].seconds - 0.009).abs() < 1e-6);
        // The scrape drained them: the next scrape starts fresh.
        let again = m.snapshot();
        assert!(again
            .histogram("server_dispatch_seconds")
            .unwrap()
            .exemplars
            .is_empty());
        // The sampler path does not steal exemplars from scrapes.
        {
            let _scope = crate::log::rid_scope("r-next", true);
            m.dispatch_seconds.observe(Duration::from_millis(4));
        }
        m.sample_timeseries(100);
        let snap = m.snapshot();
        let exemplars = &snap.histogram("server_dispatch_seconds").unwrap().exemplars;
        assert_eq!(exemplars.len(), 1);
        assert_eq!(exemplars[0].rid, "r-next");
    }

    #[test]
    fn exemplars_stay_off_the_wire_when_empty() {
        let m = ServiceMetrics::new();
        m.dispatch_seconds.observe(Duration::from_millis(2));
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        assert!(!json.contains("exemplars"));
        // Pre-exemplar snapshots parse with the field defaulted.
        let old = r#"{"bounds":[0.001],"counts":[1,0],"count":1,"sum_seconds":0.0005}"#;
        let h: HistogramSnapshot = serde_json::from_str(old).unwrap();
        assert!(h.exemplars.is_empty());
    }

    #[test]
    fn quantile_and_count_over_read_the_buckets_conservatively() {
        let h = Histogram::with_bounds(&[1e-3, 1e-2, 1e-1]);
        for _ in 0..98 {
            h.observe(Duration::from_micros(100)); // <= 1ms
        }
        h.observe(Duration::from_millis(5)); // <= 10ms
        h.observe(Duration::from_millis(50)); // <= 100ms
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1e-3);
        assert_eq!(s.quantile(0.99), 1e-2);
        assert_eq!(s.quantile(1.0), 1e-1);
        assert_eq!(s.count_over(1e-2), 1); // only the 50ms observation is certain
        assert_eq!(s.count_over(1e-3), 2);
        assert_eq!(s.count_over(0.0), 100);
        let empty = Histogram::latency().snapshot();
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(empty.count_over(1.0), 0);
        // An observation past every bound lands the quantile at +Inf.
        let h = Histogram::with_bounds(&[1e-3]);
        h.observe(Duration::from_secs(1));
        assert_eq!(h.snapshot().quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn histogram_buckets_cumulate_in_rendering() {
        let h = Histogram::with_bounds(&[1e-3, 1e-2]);
        h.observe(Duration::from_micros(10));
        h.observe(Duration::from_micros(10));
        h.observe(Duration::from_millis(5));
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert("t_seconds".into(), h.snapshot());
        let text = snap.render_prometheus();
        assert!(text.contains("autotune_t_seconds_bucket{le=\"0.001\"} 2"));
        assert!(text.contains("autotune_t_seconds_bucket{le=\"0.01\"} 3"));
        assert!(text.contains("autotune_t_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("autotune_t_seconds_count 3"));
    }
}
