//! Append-only JSONL journals for crash-recoverable sessions.
//!
//! Each session owns one journal file. The first line records the
//! session's name and [`SessionSpec`](crate::SessionSpec); every reported
//! evaluation appends one `eval` line *before* the value is fed to the
//! engine (write-ahead), and closing the session appends a `close` line.
//! Because sessions are deterministic given their spec, replaying the
//! `eval` lines into a fresh [`AskTellSession`](crate::AskTellSession)
//! restores the exact engine state — including every future suggestion.
//!
//! Crash tolerance: a process dying mid-append leaves at most one torn
//! final line, which [`load`] silently drops. Corruption anywhere else in
//! the file is reported as [`ServiceError::Journal`].
//!
//! Durability is a per-writer knob ([`Durability`]). The default,
//! [`Durability::Sync`], calls `sync_data` after every append, so a
//! record survives an operating-system crash or power loss the moment
//! the append returns — genuine write-ahead semantics.
//! [`Durability::Buffered`] stops at `flush()`, handing the bytes to
//! the OS page cache: that survives a *process* crash but not a kernel
//! panic, in exchange for skipping one disk round-trip per append.

use crate::error::ServiceError;
use crate::spec::SessionSpec;
use autotune_core::trace::TraceEvent;
use autotune_core::Evaluation;
use autotune_space::Configuration;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

// The durability knob now lives in `autotune_core::trace` so the
// core's JSONL trace sink and this journal share one vocabulary; the
// re-export keeps every existing `journal::Durability` path working.
pub use autotune_core::trace::Durability;

/// One line of a session journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum Record {
    /// First line: the session's identity and deterministic blueprint.
    Open {
        /// The session's registered name.
        name: String,
        /// The spec the session was opened with.
        spec: SessionSpec,
    },
    /// One reported measurement, in report order.
    Eval {
        /// The measured configuration.
        config: Configuration,
        /// The reported cost.
        value: f64,
        /// The *client-chosen* correlation id of the request that
        /// reported this value, when one was in scope at append time.
        /// Server-assigned ids are deliberately excluded so traffic
        /// that never sends a `rid` produces journals byte-identical
        /// to pre-correlation ones. Replay ignores this field.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        rid: Option<String>,
    },
    /// A batch of search-trace events drained from the session's
    /// engine (appended alongside `eval` lines when tracing is on;
    /// purely informational — replay regenerates traces
    /// deterministically, so recovery never depends on these).
    Trace {
        /// The drained events, in emission order.
        events: Vec<TraceEvent>,
    },
    /// Final line: the session was closed deliberately.
    Close {
        /// `true` when the budget was spent before closing.
        finished: bool,
    },
}

/// Appends records to a session's journal file, one JSON object per
/// line, pushed toward disk after every append according to the
/// writer's [`Durability`] mode.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    durability: Durability,
}

impl JournalWriter {
    /// Creates (truncating) a journal with [`Durability::Sync`] and
    /// writes its `open` line.
    pub fn create(path: &Path, name: &str, spec: &SessionSpec) -> Result<Self, ServiceError> {
        Self::create_with(path, name, spec, Durability::Sync)
    }

    /// Creates (truncating) a journal with an explicit durability mode
    /// and writes its `open` line.
    pub fn create_with(
        path: &Path,
        name: &str,
        spec: &SessionSpec,
        durability: Durability,
    ) -> Result<Self, ServiceError> {
        let file = BufWriter::new(File::create(path)?);
        let mut writer = JournalWriter {
            path: path.to_path_buf(),
            file,
            durability,
        };
        writer.append(&Record::Open {
            name: name.to_string(),
            spec: spec.clone(),
        })?;
        Ok(writer)
    }

    /// Reopens an existing journal for appending with
    /// [`Durability::Sync`] (recovery path). The caller is responsible
    /// for having validated the contents via [`load`] first.
    pub fn append_existing(path: &Path) -> Result<Self, ServiceError> {
        Self::append_existing_with(path, Durability::Sync)
    }

    /// Reopens an existing journal for appending with an explicit
    /// durability mode.
    pub fn append_existing_with(path: &Path, durability: Durability) -> Result<Self, ServiceError> {
        let file = BufWriter::new(OpenOptions::new().append(true).open(path)?);
        Ok(JournalWriter {
            path: path.to_path_buf(),
            file,
            durability,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The writer's durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Appends one record, flushes, and — under [`Durability::Sync`] —
    /// syncs the file data to disk before returning.
    pub fn append(&mut self, record: &Record) -> Result<(), ServiceError> {
        let line = serde_json::to_string(record)?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        if self.durability == Durability::Sync {
            self.file.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Appends one `eval` line (write-ahead of the engine report).
    ///
    /// Non-finite values are rejected before anything touches the file:
    /// `serde_json` serializes NaN and infinities as `null`, which a
    /// later [`load`] could not parse back into an `f64` — the journal
    /// would be bricked at exactly the line meant to make the session
    /// recoverable.
    pub fn append_eval(&mut self, config: &Configuration, value: f64) -> Result<(), ServiceError> {
        if !value.is_finite() {
            return Err(ServiceError::NonFiniteValue);
        }
        self.append(&Record::Eval {
            config: config.clone(),
            value,
            rid: crate::log::current_explicit_rid(),
        })
    }

    /// Appends the terminal `close` line.
    pub fn append_close(&mut self, finished: bool) -> Result<(), ServiceError> {
        self.append(&Record::Close { finished })
    }

    /// Appends a batch of drained search-trace events. No-op for an
    /// empty batch so callers can drain unconditionally.
    pub fn append_trace(&mut self, events: Vec<TraceEvent>) -> Result<(), ServiceError> {
        if events.is_empty() {
            return Ok(());
        }
        self.append(&Record::Trace { events })
    }
}

/// One session's persistence backend, as seen by the
/// [`SessionManager`](crate::SessionManager): either its own JSONL
/// journal file (the classic `--journal-dir` engine) or a per-session
/// handle into the shared group-commit WAL (`--wal-dir`,
/// [`crate::wal::Wal`]). The manager's write-ahead call sites are
/// identical across both — this enum is the seam that made the WAL a
/// drop-in engine swap rather than a manager rewrite.
#[derive(Debug)]
pub enum SessionLog {
    /// A per-session JSONL journal file, fsynced (or flushed) per
    /// append by this writer alone.
    File(JournalWriter),
    /// A handle into the shared WAL; appends ride group-commit batches
    /// with every other session.
    Wal(crate::wal::WalSessionLog),
}

impl SessionLog {
    /// Appends one eval record write-ahead of the engine, rejecting
    /// non-finite values and tagging the client-chosen correlation id
    /// in scope.
    pub fn append_eval(&mut self, config: &Configuration, value: f64) -> Result<(), ServiceError> {
        match self {
            SessionLog::File(writer) => writer.append_eval(config, value),
            SessionLog::Wal(log) => log.append_eval(config, value),
        }
    }

    /// Appends a drained trace batch (no-op when empty).
    pub fn append_trace(&mut self, events: Vec<TraceEvent>) -> Result<(), ServiceError> {
        match self {
            SessionLog::File(writer) => writer.append_trace(events),
            SessionLog::Wal(log) => log.append_trace(events),
        }
    }

    /// Appends the terminal close record; the session's log is final.
    pub fn append_close(&mut self, finished: bool) -> Result<(), ServiceError> {
        match self {
            SessionLog::File(writer) => writer.append_close(finished),
            SessionLog::Wal(log) => log.append_close(finished),
        }
    }
}

/// Everything recovered from a journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// The session's registered name.
    pub name: String,
    /// The spec to rebuild the session from.
    pub spec: SessionSpec,
    /// All fully-written evaluations, in report order.
    pub evals: Vec<Evaluation>,
    /// Search-trace events from all `trace` batches, in order. Recovery
    /// ignores these (replay regenerates the trace); they exist for
    /// post-hoc inspection of journals from crashed sessions.
    pub traces: Vec<TraceEvent>,
    /// `true` when a `close` line marks the session deliberately ended.
    pub closed: bool,
}

/// Parses a journal file.
///
/// A torn final line (crash mid-append) is dropped silently; any other
/// malformed line, a missing/duplicated `open` header, or records after
/// `close` are [`ServiceError::Journal`] errors.
pub fn load(path: &Path) -> Result<JournalContents, ServiceError> {
    let reader = BufReader::new(File::open(path)?);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let mut contents: Option<JournalContents> = None;
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: Record = match serde_json::from_str(line) {
            Ok(r) => r,
            // Only the final line may be torn by a crash.
            Err(_) if i == last => break,
            Err(e) => {
                return Err(ServiceError::Journal(format!(
                    "malformed record on line {}: {e}",
                    i + 1
                )))
            }
        };
        match (record, &mut contents) {
            (Record::Open { name, spec }, slot @ None) => {
                *slot = Some(JournalContents {
                    name,
                    spec,
                    evals: Vec::new(),
                    traces: Vec::new(),
                    closed: false,
                });
            }
            (Record::Open { .. }, Some(_)) => {
                return Err(ServiceError::Journal(format!(
                    "duplicate open header on line {}",
                    i + 1
                )));
            }
            (_, None) => {
                return Err(ServiceError::Journal(
                    "journal does not start with an open header".into(),
                ));
            }
            (_, Some(c)) if c.closed => {
                return Err(ServiceError::Journal(format!(
                    "record after close on line {}",
                    i + 1
                )));
            }
            (Record::Eval { config, value, .. }, Some(c)) => {
                c.evals.push(Evaluation { config, value });
            }
            (Record::Trace { events }, Some(c)) => {
                c.traces.extend(events);
            }
            (Record::Close { .. }, Some(c)) => {
                c.closed = true;
            }
        }
    }
    contents.ok_or_else(|| ServiceError::Journal("journal has no open header".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::Algorithm;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_journal(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "autotune-journal-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn spec() -> SessionSpec {
        SessionSpec::imagecl(Algorithm::RandomSearch, 5, 42)
    }

    #[test]
    fn round_trips_open_evals_close() {
        let path = temp_journal("roundtrip");
        let mut w = JournalWriter::create(&path, "s1", &spec()).unwrap();
        w.append_eval(&Configuration::from([1, 2, 3, 4, 5, 6]), 7.5)
            .unwrap();
        w.append_eval(&Configuration::from([2, 2, 2, 2, 2, 2]), 3.25)
            .unwrap();
        w.append_close(false).unwrap();
        drop(w);

        let c = load(&path).unwrap();
        assert_eq!(c.name, "s1");
        assert_eq!(c.spec, spec());
        assert_eq!(c.evals.len(), 2);
        assert_eq!(c.evals[1].value, 3.25);
        assert!(c.closed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = temp_journal("torn");
        let mut w = JournalWriter::create(&path, "s2", &spec()).unwrap();
        w.append_eval(&Configuration::from([1, 1, 1, 1, 1, 1]), 1.0)
            .unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"event\":\"eval\",\"config\"").unwrap(); // torn
        drop(f);

        let c = load(&path).unwrap();
        assert_eq!(c.evals.len(), 1);
        assert!(!c.closed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp_journal("corrupt");
        let w = JournalWriter::create(&path, "s3", &spec()).unwrap();
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json at all\n").unwrap();
        f.write_all(b"{\"event\":\"close\",\"finished\":false}\n")
            .unwrap();
        drop(f);
        assert!(matches!(load(&path), Err(ServiceError::Journal(_))));

        // Recreating the journal truncates and heals it.
        let mut w = JournalWriter::create(&path, "s3", &spec()).unwrap();
        w.append_close(true).unwrap();
        assert!(load(&path).unwrap().closed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_or_duplicate_header_is_an_error() {
        let path = temp_journal("header");
        std::fs::write(
            &path,
            "{\"event\":\"eval\",\"config\":[1,1,1,1,1,1],\"value\":1.0}\nx\n",
        )
        .unwrap();
        assert!(matches!(load(&path), Err(ServiceError::Journal(_))));

        let mut w = JournalWriter::create(&path, "s4", &spec()).unwrap();
        w.append(&Record::Open {
            name: "s4".into(),
            spec: spec(),
        })
        .unwrap();
        w.append_close(false).unwrap();
        drop(w);
        assert!(matches!(load(&path), Err(ServiceError::Journal(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_after_close_are_an_error() {
        let path = temp_journal("afterclose");
        let mut w = JournalWriter::create(&path, "s5", &spec()).unwrap();
        w.append_close(false).unwrap();
        // Final-line forgiveness only covers lines that fail to parse; a
        // well-formed record after close is structural corruption.
        w.append_eval(&Configuration::from([1, 1, 1, 1, 1, 1]), 1.0)
            .unwrap();
        w.append_close(false).unwrap();
        drop(w);
        assert!(matches!(load(&path), Err(ServiceError::Journal(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_existing_continues_the_file() {
        let path = temp_journal("reopen");
        let mut w = JournalWriter::create(&path, "s6", &spec()).unwrap();
        w.append_eval(&Configuration::from([1, 1, 1, 1, 1, 1]), 2.0)
            .unwrap();
        assert_eq!(w.path(), path.as_path());
        drop(w);

        let mut w2 = JournalWriter::append_existing(&path).unwrap();
        w2.append_eval(&Configuration::from([2, 1, 1, 1, 1, 1]), 1.0)
            .unwrap();
        drop(w2);

        let c = load(&path).unwrap();
        assert_eq!(c.evals.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn both_durability_modes_round_trip() {
        for durability in [Durability::Sync, Durability::Buffered] {
            let path = temp_journal("durability");
            let mut w = JournalWriter::create_with(&path, "s7", &spec(), durability).unwrap();
            assert_eq!(w.durability(), durability);
            w.append_eval(&Configuration::from([3, 1, 4, 1, 5, 2]), 2.5)
                .unwrap();
            drop(w);

            let mut w2 = JournalWriter::append_existing_with(&path, durability).unwrap();
            w2.append_eval(&Configuration::from([2, 7, 1, 8, 2, 8]), 1.5)
                .unwrap();
            w2.append_close(false).unwrap();
            drop(w2);

            let c = load(&path).unwrap();
            assert_eq!(c.evals.len(), 2, "{durability:?}");
            assert_eq!(c.evals[1].value, 1.5);
            assert!(c.closed);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn durability_defaults_to_sync_and_serdes_snake_case() {
        assert_eq!(Durability::default(), Durability::Sync);
        assert_eq!(
            serde_json::to_string(&Durability::Buffered).unwrap(),
            "\"buffered\""
        );
        assert_eq!(
            serde_json::from_str::<Durability>("\"sync\"").unwrap(),
            Durability::Sync
        );
    }

    #[test]
    fn trace_batches_round_trip_and_do_not_disturb_recovery() {
        use autotune_core::trace::TraceRecord;
        let path = temp_journal("trace");
        let mut w = JournalWriter::create(&path, "s8", &spec()).unwrap();
        w.append_eval(&Configuration::from([1, 2, 3, 4, 5, 6]), 2.0)
            .unwrap();
        w.append_trace(Vec::new()).unwrap(); // no-op
        w.append_trace(vec![
            TraceEvent {
                t_us: 10,
                record: TraceRecord::SpanBegin {
                    name: "objective".into(),
                },
            },
            TraceEvent {
                t_us: 55,
                record: TraceRecord::SpanEnd {
                    name: "objective".into(),
                },
            },
        ])
        .unwrap();
        w.append_close(false).unwrap();
        drop(w);

        let c = load(&path).unwrap();
        assert_eq!(c.evals.len(), 1);
        assert_eq!(c.traces.len(), 2);
        assert_eq!(c.traces[1].t_us, 55);
        assert!(c.closed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_finite_evals_never_reach_the_file() {
        let path = temp_journal("nonfinite");
        let mut w = JournalWriter::create(&path, "s9", &spec()).unwrap();
        let cfg = Configuration::from([1, 1, 1, 1, 1, 1]);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                w.append_eval(&cfg, bad),
                Err(ServiceError::NonFiniteValue)
            ));
        }
        w.append_eval(&cfg, 2.0).unwrap();
        drop(w);
        // The rejected appends left no trace; the journal stays loadable.
        let c = load(&path).unwrap();
        assert_eq!(c.evals.len(), 1);
        assert_eq!(c.evals[0].value, 2.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn record_serde_is_tagged() {
        let json = serde_json::to_string(&Record::Close { finished: true }).unwrap();
        assert!(json.contains("\"event\":\"close\""));
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Record::Close { finished: true });
    }

    #[test]
    fn eval_rids_journal_only_client_chosen_ids_and_stay_back_compatible() {
        use crate::log::rid_scope;
        let path = temp_journal("rid");
        let mut w = JournalWriter::create(&path, "s10", &spec()).unwrap();
        let cfg = Configuration::from([1, 2, 3, 4, 5, 6]);
        // No scope: the wire format is byte-identical to pre-correlation
        // journals.
        w.append_eval(&cfg, 1.0).unwrap();
        // A server-derived (implicit) rid stays out of the journal.
        {
            let _scope = rid_scope("r-deadbeef00000000".into(), false);
            w.append_eval(&cfg, 2.0).unwrap();
        }
        // A client-chosen (explicit) rid is recorded.
        {
            let _scope = rid_scope("deploy-42".into(), true);
            w.append_eval(&cfg, 3.0).unwrap();
        }
        drop(w);

        let lines = std::fs::read_to_string(&path).unwrap();
        let evals: Vec<&str> = lines
            .lines()
            .filter(|l| l.contains("\"event\":\"eval\""))
            .collect();
        assert_eq!(evals.len(), 3);
        assert!(!evals[0].contains("rid"));
        assert!(!evals[1].contains("rid"));
        assert!(evals[2].contains("\"rid\":\"deploy-42\""));

        // Replay ignores rids; a pre-correlation eval line still parses.
        let c = load(&path).unwrap();
        assert_eq!(c.evals.len(), 3);
        let legacy = r#"{"event":"eval","config":[1,1,1,1,1,1],"value":1.5}"#;
        assert!(matches!(
            serde_json::from_str::<Record>(legacy).unwrap(),
            Record::Eval { rid: None, .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
