//! Sharded registry of named, concurrently-driven tuning sessions.
//!
//! A [`SessionManager`] owns many [`AskTellSession`]s keyed by name. The
//! registry is split into [`SHARD_COUNT`] independently-locked shards
//! (keyed by an FNV-1a hash of the session name), so lookups on
//! different sessions never contend on one global map lock; each session
//! then serializes its own suggest/report traffic behind a per-session
//! mutex, so independent sessions proceed in parallel.
//!
//! Registered sessions do not each pin an engine thread: a *residency
//! governor* caps the number of live engines
//! ([`SessionManager::with_max_resident`]) and parks the least-recently
//! driven ones into thread-free [`ParkedSession`] checkpoints. A parked
//! session resumes transparently on its next `suggest`/`report` — a
//! large registered population costs memory, not threads.
//!
//! With a journal directory configured ([`SessionManager::with_journal_dir`])
//! every session gets a write-ahead JSONL journal: the reported value is
//! persisted *before* it reaches the engine, so a crash at any point can
//! be recovered with [`SessionManager::recover`] /
//! [`SessionManager::recover_all`] — determinism guarantees the recovered
//! session continues with exactly the suggestions the lost one would have
//! made.

use crate::engine::{AskTellSession, BatchSuggestion, ParkedSession, Suggestion};
use crate::error::ServiceError;
use crate::journal::{self, Durability, JournalContents, JournalWriter, SessionLog};
use crate::log::EventLog;
use crate::metrics::ServiceMetrics;
use crate::spec::SessionSpec;
use crate::stats::SessionStats;
use crate::wal::{Wal, WalConfig};
use autotune_core::{Evaluation, TuneResult};
use autotune_kb::{Fingerprint, KbStats, KbStore, PriorWeighting, StudyRecord};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of registry shards. A power of two so the hash folds with a
/// mask; 16 keeps per-shard contention negligible at the connection
/// counts the server admits while costing nothing at small populations.
pub const SHARD_COUNT: usize = 16;

/// Default cap on concurrently-live engine threads (see
/// [`SessionManager::with_max_resident`]).
pub const DEFAULT_MAX_RESIDENT: usize = 256;

/// FNV-1a over the session name, folded to a shard index. Cheap,
/// allocation-free, and well-spread on the short ASCII names the
/// registry admits.
fn shard_index(name: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash as usize) & (SHARD_COUNT - 1)
}

/// A session parked out of its engine thread, plus what observability
/// needs without waking it.
struct ParkedEntry {
    session: ParkedSession,
    /// When the session was parked; stands in for engine idle time.
    since: Instant,
    /// Counters frozen at park time, served by `stats` without a
    /// resume.
    stats: SessionStats,
}

/// Where a registered session currently lives.
enum SessionState {
    /// Engine thread running (or finished and holding its result).
    Live(AskTellSession),
    /// Checkpointed out of its thread by the residency governor.
    Parked(ParkedEntry),
    /// A resume failed and the session is unusable; terminal.
    Defunct,
}

/// One registered session plus its optional persistence backend.
struct Managed {
    state: SessionState,
    journal: Option<SessionLog>,
}

impl Managed {
    /// Ensures the session is live, resuming a parked engine in place.
    /// Returns whether a resume happened so callers can re-run the
    /// residency governor afterwards.
    fn wake(&mut self, metrics: &Arc<ServiceMetrics>) -> Result<bool, ServiceError> {
        match &self.state {
            SessionState::Live(_) => return Ok(false),
            SessionState::Defunct => return Err(ServiceError::EngineStopped),
            SessionState::Parked(_) => {}
        }
        let SessionState::Parked(parked) =
            std::mem::replace(&mut self.state, SessionState::Defunct)
        else {
            unreachable!("checked above");
        };
        // On failure the state stays Defunct: the deterministic replay
        // of a self-recorded history cannot diverge unless the process
        // is already broken, so there is nothing sensible to restore.
        let live = parked.session.resume(Some(Arc::clone(metrics)))?;
        self.state = SessionState::Live(live);
        metrics.sessions_resumed.inc();
        Ok(true)
    }

    fn live(&mut self) -> Result<&mut AskTellSession, ServiceError> {
        match &mut self.state {
            SessionState::Live(session) => Ok(session),
            _ => Err(ServiceError::EngineStopped),
        }
    }
}

/// Aggregate counters across the manager's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagerTotals {
    /// Sessions currently registered.
    pub open_sessions: usize,
    /// Sessions ever opened (including recovered ones).
    pub opened_total: u64,
    /// Suggestions served across all sessions.
    pub suggests: u64,
    /// Reports accepted across all sessions.
    pub reports: u64,
    /// Registered sessions currently parked (no engine thread).
    #[serde(default)]
    pub parked_sessions: usize,
    /// Registered sessions currently holding a live engine thread.
    #[serde(default)]
    pub resident_engines: usize,
}

/// What an instant-answer lookup came back with: the stored incumbent
/// plus the provenance needed to trust it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KbAnswer {
    /// The canonical problem fingerprint that matched.
    pub fingerprint: Fingerprint,
    /// The stored best (configuration, cost) pair.
    pub best: Evaluation,
    /// The session that produced the stored study.
    pub session: String,
    /// The search technique that produced it.
    pub algorithm: String,
    /// The budget the stored study converged with.
    pub budget: usize,
}

/// Holds and drives many named [`AskTellSession`]s.
pub struct SessionManager {
    shards: Box<[Mutex<HashMap<String, Arc<Mutex<Managed>>>>]>,
    journal_dir: Option<PathBuf>,
    /// The shared group-commit storage engine, when persistence runs in
    /// WAL mode. Mutually exclusive with `journal_dir`.
    wal: Option<Arc<Wal>>,
    durability: Durability,
    kb: Option<Mutex<KbStore>>,
    weighting: PriorWeighting,
    metrics: Arc<ServiceMetrics>,
    log: Arc<EventLog>,
    max_resident: usize,
    opened_total: AtomicU64,
    served_suggests: AtomicU64,
    served_reports: AtomicU64,
}

fn new_shards() -> Box<[Mutex<HashMap<String, Arc<Mutex<Managed>>>>]> {
    (0..SHARD_COUNT)
        .map(|_| Mutex::new(HashMap::new()))
        .collect()
}

impl SessionManager {
    /// A manager without persistence: sessions live and die with the
    /// process.
    pub fn in_memory() -> Self {
        SessionManager {
            shards: new_shards(),
            journal_dir: None,
            wal: None,
            durability: Durability::Sync,
            kb: None,
            weighting: PriorWeighting::default(),
            metrics: Arc::new(ServiceMetrics::new()),
            log: EventLog::null(),
            max_resident: DEFAULT_MAX_RESIDENT,
            opened_total: AtomicU64::new(0),
            served_suggests: AtomicU64::new(0),
            served_reports: AtomicU64::new(0),
        }
    }

    /// A manager journaling every session under `dir` (created if
    /// missing), one `<name>.jsonl` file per session, with the default
    /// [`Durability::Sync`] write-ahead guarantee.
    pub fn with_journal_dir(dir: &Path) -> Result<Self, ServiceError> {
        Self::with_journal_dir_durability(dir, Durability::Sync)
    }

    /// Like [`SessionManager::with_journal_dir`] but with an explicit
    /// journal [`Durability`] mode.
    pub fn with_journal_dir_durability(
        dir: &Path,
        durability: Durability,
    ) -> Result<Self, ServiceError> {
        std::fs::create_dir_all(dir)?;
        Ok(SessionManager {
            shards: new_shards(),
            journal_dir: Some(dir.to_path_buf()),
            wal: None,
            durability,
            kb: None,
            weighting: PriorWeighting::default(),
            metrics: Arc::new(ServiceMetrics::new()),
            log: EventLog::null(),
            max_resident: DEFAULT_MAX_RESIDENT,
            opened_total: AtomicU64::new(0),
            served_suggests: AtomicU64::new(0),
            served_reports: AtomicU64::new(0),
        })
    }

    /// A manager persisting every session through one shared
    /// group-commit write-ahead log under `dir` (created if missing) —
    /// the [`crate::wal`] storage engine — with the default
    /// [`WalConfig`] knobs.
    pub fn with_wal_dir(dir: &Path) -> Result<Self, ServiceError> {
        Self::with_wal(WalConfig::new(dir))
    }

    /// Like [`SessionManager::with_wal_dir`] but with explicit WAL
    /// knobs (durability, segment size, checkpoint interval, flush
    /// window). The WAL replays its segments at construction, so
    /// [`SessionManager::recover_all`] afterwards is pure in-memory
    /// work.
    pub fn with_wal(config: WalConfig) -> Result<Self, ServiceError> {
        let metrics = Arc::new(ServiceMetrics::new());
        let durability = config.durability;
        let wal = Arc::new(Wal::open(config, Some(Arc::clone(&metrics)))?);
        Ok(SessionManager {
            shards: new_shards(),
            journal_dir: None,
            wal: Some(wal),
            durability,
            kb: None,
            weighting: PriorWeighting::default(),
            metrics,
            log: EventLog::null(),
            max_resident: DEFAULT_MAX_RESIDENT,
            opened_total: AtomicU64::new(0),
            served_suggests: AtomicU64::new(0),
            served_reports: AtomicU64::new(0),
        })
    }

    /// Caps the number of concurrently-live engine threads. Above the
    /// cap the residency governor parks the least-recently-driven
    /// sessions (at clean chunk boundaries) into thread-free
    /// checkpoints; they resume transparently when next driven. Floors
    /// at 1.
    pub fn with_max_resident(mut self, max_resident: usize) -> Self {
        self.max_resident = max_resident.max(1);
        self
    }

    /// The residency governor's cap on live engine threads.
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Attaches a structured event log. Engine, journal, knowledge-base,
    /// and scheduler activity is recorded into it (with the correlation
    /// id of the request being served, when one is in scope). The
    /// default is [`EventLog::null`] — disabled, one atomic load per
    /// would-be record.
    pub fn with_event_log(mut self, log: Arc<EventLog>) -> Self {
        self.log = log;
        self
    }

    /// The manager's event log (the disabled null log unless
    /// [`SessionManager::with_event_log`] installed one).
    pub fn event_log(&self) -> &Arc<EventLog> {
        &self.log
    }

    /// Attaches a cross-session knowledge base. Sessions whose spec
    /// names a problem (and does not opt out) are warm-started from
    /// fingerprint-matched prior studies at open time, and their
    /// finished results are recorded back on close.
    pub fn with_kb(mut self, store: KbStore) -> Self {
        self.kb = Some(Mutex::new(store));
        self
    }

    /// Like [`SessionManager::with_kb`], with an explicit prior
    /// weighting instead of [`PriorWeighting::default`].
    pub fn with_kb_weighting(mut self, store: KbStore, weighting: PriorWeighting) -> Self {
        self.kb = Some(Mutex::new(store));
        self.weighting = weighting;
        self
    }

    /// `true` when a knowledge base is attached.
    pub fn kb_enabled(&self) -> bool {
        self.kb.is_some()
    }

    /// The journal directory, if per-session-file persistence is
    /// enabled.
    pub fn journal_dir(&self) -> Option<&Path> {
        self.journal_dir.as_deref()
    }

    /// The shared write-ahead log, if WAL persistence is enabled.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// `true` when sessions are persisted at all (per-session journals
    /// or the shared WAL) — the "is recovery worth attempting" check.
    pub fn has_persistence(&self) -> bool {
        self.journal_dir.is_some() || self.wal.is_some()
    }

    /// Pushes every buffered byte of the persistence layer to the
    /// platter: a WAL sync barrier in WAL mode, nothing in journal mode
    /// (per-session writers flush-or-sync inside every append). Part of
    /// the graceful-drain path, so a [`Durability::Buffered`] deployment
    /// never loses records to a *clean* shutdown.
    pub fn flush_persistence(&self) -> Result<(), ServiceError> {
        if let Some(wal) = &self.wal {
            wal.sync()?;
        }
        Ok(())
    }

    /// The journal durability mode sessions are opened with.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The manager's metrics registry. Servers share it, so counters
    /// survive a server restart as long as the manager lives.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    fn journal_path(&self, name: &str) -> Option<PathBuf> {
        self.journal_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.jsonl")))
    }

    /// Session names double as journal file stems, so keep them to a
    /// conservative filesystem-safe alphabet.
    fn validate_name(name: &str) -> Result<(), ServiceError> {
        let ok = !name.is_empty()
            && name.len() <= 64
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if ok {
            Ok(())
        } else {
            Err(ServiceError::InvalidName(name.to_string()))
        }
    }

    /// The shard responsible for `name`.
    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Arc<Mutex<Managed>>>> {
        &self.shards[shard_index(name)]
    }

    /// Inserts an already-built session. Unlike [`SessionManager::open`]
    /// this re-checks for duplicates at insert time only, which is safe
    /// for recovery: the journal was reopened in append mode, so a racing
    /// loser drops its writer without touching the file.
    fn register(
        &self,
        name: &str,
        session: AskTellSession,
        journal: Option<SessionLog>,
    ) -> Result<(), ServiceError> {
        let mut shard = self.shard(name).lock();
        if shard.contains_key(name) {
            return Err(ServiceError::SessionExists(name.to_string()));
        }
        shard.insert(
            name.to_string(),
            Arc::new(Mutex::new(Managed {
                state: SessionState::Live(session),
                journal,
            })),
        );
        self.opened_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<Arc<Mutex<Managed>>, ServiceError> {
        self.shard(name)
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownSession(name.to_string()))
    }

    /// Clones every registered `(name, session)` pair; holds each shard
    /// lock only long enough to copy its Arcs.
    fn snapshot_sessions(&self) -> Vec<(String, Arc<Mutex<Managed>>)> {
        let mut all = Vec::new();
        for shard in self.shards.iter() {
            all.extend(
                shard
                    .lock()
                    .iter()
                    .map(|(name, managed)| (name.clone(), Arc::clone(managed))),
            );
        }
        all
    }

    /// Parks the least-recently-driven live engines until at most
    /// `max_resident` remain, then refreshes the scheduler gauges.
    /// Sessions that are locked (mid-request), mid-chunk, or finished
    /// are left alone; they get another chance on the next sweep.
    fn enforce_residency(&self) {
        let mut live: Vec<(Duration, String, Arc<Mutex<Managed>>)> = Vec::new();
        let mut parked_count = 0usize;
        for (name, managed) in self.snapshot_sessions() {
            let Some(guard) = managed.try_lock() else {
                // Locked means a request is being served right now:
                // resident by definition.
                live.push((Duration::ZERO, name, Arc::clone(&managed)));
                continue;
            };
            match &guard.state {
                SessionState::Live(session) => {
                    let idle = session.idle();
                    drop(guard);
                    live.push((idle, name, managed));
                }
                SessionState::Parked(_) => parked_count += 1,
                SessionState::Defunct => {}
            }
        }
        let mut resident = live.len();
        if resident > self.max_resident {
            // Most idle first.
            live.sort_by(|a, b| b.0.cmp(&a.0));
            for (idle, name, managed) in live {
                if resident <= self.max_resident {
                    break;
                }
                let Some(mut guard) = managed.try_lock() else {
                    continue;
                };
                let parked = match &mut guard.state {
                    SessionState::Live(session) => {
                        let stats = session.stats();
                        session.park().map(|checkpoint| (checkpoint, stats))
                    }
                    _ => None,
                };
                if let Some((checkpoint, stats)) = parked {
                    guard.state = SessionState::Parked(ParkedEntry {
                        session: checkpoint,
                        since: Instant::now(),
                        stats,
                    });
                    self.metrics.sessions_parked.inc();
                    self.log.debug("manager", Some(&name), || {
                        format!("parked by the residency governor after {idle:.1?} idle")
                    });
                    resident -= 1;
                    parked_count += 1;
                }
            }
        }
        self.refresh_gauges(resident, parked_count);
    }

    /// Publishes per-shard queue depths and the resident-engine count
    /// into the shared metrics registry (and, through it, the
    /// time-series store and Prometheus endpoint).
    fn refresh_gauges(&self, resident: usize, parked: usize) {
        for (i, shard) in self.shards.iter().enumerate() {
            let depth = shard.lock().len() as u64;
            self.metrics
                .set_gauge(&format!("scheduler_shard_depth_{i}"), depth);
        }
        self.metrics
            .set_gauge("scheduler_resident_engines", resident as u64);
        self.metrics
            .set_gauge("scheduler_parked_sessions", parked as u64);
        self.refresh_wal_gauges();
    }

    /// Publishes the WAL's shape (sealed-segment backlog, active-segment
    /// fill, checkpoint age) as gauges. No-op without a WAL. Also called
    /// by the server ahead of metrics/health replies and time-series
    /// samples so the panel reads fresh levels, not last-sweep ones.
    pub fn refresh_wal_gauges(&self) {
        let Some(wal) = &self.wal else { return };
        let stats = wal.stats();
        self.metrics
            .set_gauge("wal_segments_sealed", stats.sealed_segments as u64);
        self.metrics
            .set_gauge("wal_active_segment_bytes", stats.active_segment_bytes);
        self.metrics.set_gauge(
            "wal_checkpoint_age_seconds",
            stats
                .checkpoint_age
                .map(|age| age.as_secs())
                .unwrap_or_default(),
        );
    }

    /// Installs a knowledge-base prior into a spec that asks for one.
    /// The *effective* spec (prior embedded) is what gets journaled, so
    /// crash recovery replays deterministically no matter how the store
    /// changes afterwards.
    fn resolve_warm_start(&self, mut spec: SessionSpec) -> SessionSpec {
        if spec.prior.is_some() {
            return spec; // a caller-supplied prior wins
        }
        let Some(kb) = &self.kb else { return spec };
        let Some((fingerprint, family)) = spec.fingerprints() else {
            return spec;
        };
        match kb.lock().prior_for(fingerprint, family, &self.weighting) {
            Some(prior) => {
                self.metrics.kb_hits.inc();
                self.metrics.kb_seeded_sessions.inc();
                self.log.debug("kb", None, || {
                    format!("warm-start prior installed for fingerprint {fingerprint:?}")
                });
                spec.prior = Some(prior);
            }
            None => {
                self.metrics.kb_misses.inc();
                self.log.debug("kb", None, || {
                    format!("no stored prior for fingerprint {fingerprint:?}")
                });
            }
        }
        spec
    }

    /// The instant-answer cache: when `spec` names a problem the store
    /// holds a *converged* study for, at equal-or-larger budget, returns
    /// the stored incumbent directly — no engine thread is spawned and
    /// no evaluation is spent. Honors the spec's
    /// [`WarmStart`](crate::spec::WarmStart) opt-out.
    pub fn kb_lookup(&self, spec: &SessionSpec) -> Option<KbAnswer> {
        let kb = self.kb.as_ref()?;
        let (fingerprint, _) = spec.fingerprints()?;
        let store = kb.lock();
        match store.instant_answer(fingerprint, spec.budget) {
            Some(record) => {
                self.metrics.kb_hits.inc();
                self.log.debug("kb", None, || {
                    format!(
                        "instant answer from session {:?} (budget {})",
                        record.session, record.budget
                    )
                });
                Some(KbAnswer {
                    fingerprint,
                    best: record.best.clone(),
                    session: record.session.clone(),
                    algorithm: record.algorithm.clone(),
                    budget: record.budget,
                })
            }
            None => {
                self.metrics.kb_misses.inc();
                self.log
                    .debug("kb", None, || "no instant answer stored".to_string());
                None
            }
        }
    }

    /// Aggregate knowledge-base statistics ([`KbStats::default`] when
    /// no store is attached).
    pub fn kb_stats(&self) -> KbStats {
        self.kb
            .as_ref()
            .map(|kb| kb.lock().stats())
            .unwrap_or_default()
    }

    /// Records a finished study into the knowledge base.
    fn record_study(&self, name: &str, spec: &SessionSpec, result: &TuneResult) {
        let Some(kb) = &self.kb else { return };
        let Some((fingerprint, family)) = spec.fingerprints() else {
            return;
        };
        let problem = spec.problem.clone().expect("fingerprints imply a problem");
        let record = StudyRecord {
            fingerprint,
            family,
            problem,
            session: name.to_string(),
            seed: spec.seed,
            recorded_at_ms: unix_now_ms(),
            algorithm: spec.algorithm.name().to_string(),
            budget: spec.budget,
            converged: true,
            best: result.best.clone(),
            evaluations: result.history.evaluations().to_vec(),
        };
        // The kb is an opportunistic cache: a failed append must not
        // turn a successful close into an error.
        match kb.lock().append(record) {
            Ok(()) => self.log.debug("kb", Some(name), || {
                format!("recorded converged study (budget {})", spec.budget)
            }),
            Err(e) => {
                self.metrics.kb_append_failures.inc();
                self.log
                    .error("kb", Some(name), || format!("study append failed: {e}"));
            }
        }
    }

    /// Opens a fresh session under `name`, journaling it if persistence
    /// is enabled.
    pub fn open(&self, name: &str, spec: SessionSpec) -> Result<(), ServiceError> {
        Self::validate_name(name)?;
        let spec = self.resolve_warm_start(spec);
        {
            // The shard lock is held across journal creation so a racing
            // duplicate open cannot truncate the winner's journal.
            let mut shard = self.shard(name).lock();
            if shard.contains_key(name) {
                return Err(ServiceError::SessionExists(name.to_string()));
            }
            let journal = if let Some(wal) = &self.wal {
                wal.open_session(name, &spec)?;
                Some(SessionLog::Wal(wal.session_log(name)))
            } else {
                match self.journal_path(name) {
                    Some(path) => Some(SessionLog::File(JournalWriter::create_with(
                        &path,
                        name,
                        &spec,
                        self.durability,
                    )?)),
                    None => None,
                }
            };
            let session = AskTellSession::open_with_metrics(spec, Some(Arc::clone(&self.metrics)))?;
            shard.insert(
                name.to_string(),
                Arc::new(Mutex::new(Managed {
                    state: SessionState::Live(session),
                    journal,
                })),
            );
            self.opened_total.fetch_add(1, Ordering::Relaxed);
            self.metrics.sessions_opened.inc();
        }
        self.log
            .info("manager", Some(name), || "opened session".to_string());
        self.enforce_residency();
        Ok(())
    }

    /// Rebuilds one session from its persisted record — its journal
    /// file, or its image in the shared WAL. Fails if the record marks
    /// the session closed, if no persistence is configured, or if
    /// replay diverges (foreign/tampered journal).
    pub fn recover(&self, name: &str) -> Result<(), ServiceError> {
        Self::validate_name(name)?;
        let (contents, log): (JournalContents, SessionLog) = if let Some(wal) = &self.wal {
            let contents = wal.recover_session(name)?;
            if contents.closed {
                return Err(ServiceError::Journal(format!(
                    "session {name:?} was closed; its journal is final"
                )));
            }
            (contents, SessionLog::Wal(wal.session_log(name)))
        } else {
            let path = self
                .journal_path(name)
                .ok_or_else(|| ServiceError::Journal("no journal directory configured".into()))?;
            let contents = journal::load(&path)?;
            if contents.closed {
                return Err(ServiceError::Journal(format!(
                    "session {name:?} was closed; its journal is final"
                )));
            }
            if contents.name != name {
                return Err(ServiceError::Journal(format!(
                    "journal {path:?} belongs to session {:?}, not {name:?}",
                    contents.name
                )));
            }
            let writer = JournalWriter::append_existing_with(&path, self.durability)?;
            (contents, SessionLog::File(writer))
        };
        let session = AskTellSession::replay_with_metrics(
            contents.spec,
            &contents.evals,
            Some(Arc::clone(&self.metrics)),
        )?;
        self.served_suggests
            .fetch_add(contents.evals.len() as u64, Ordering::Relaxed);
        self.served_reports
            .fetch_add(contents.evals.len() as u64, Ordering::Relaxed);
        self.metrics
            .journal_replayed_evals
            .add(contents.evals.len() as u64);
        self.register(name, session, Some(log))?;
        self.metrics.sessions_recovered.inc();
        self.log.info("manager", Some(name), || {
            format!(
                "recovered session from its journal ({} evals)",
                contents.evals.len()
            )
        });
        self.enforce_residency();
        Ok(())
    }

    /// Recovers every persisted session that is not closed, not
    /// corrupt, and not already open — scanning the journal directory
    /// for `.jsonl` stems, or asking the WAL for its replayed session
    /// names. Returns the recovered names (sorted) and the sessions
    /// skipped with the reason.
    pub fn recover_all(&self) -> Result<(Vec<String>, Vec<(String, ServiceError)>), ServiceError> {
        let mut stems: Vec<String> = if let Some(wal) = &self.wal {
            wal.session_names()
        } else {
            let dir = self
                .journal_dir
                .clone()
                .ok_or_else(|| ServiceError::Journal("no journal directory configured".into()))?;
            let mut stems = Vec::new();
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        stems.push(stem.to_string());
                    }
                }
            }
            stems
        };
        stems.sort();
        let mut recovered = Vec::new();
        let mut skipped = Vec::new();
        for name in stems {
            match self.recover(&name) {
                Ok(()) => recovered.push(name),
                Err(ServiceError::SessionExists(_)) => {}
                Err(e) => skipped.push((name, e)),
            }
        }
        Ok((recovered, skipped))
    }

    /// Asks the named session for its next suggestion, resuming it
    /// first if the residency governor had parked it.
    pub fn suggest(&self, name: &str) -> Result<Suggestion, ServiceError> {
        let managed = self.lookup(name)?;
        let mut guard = managed.lock();
        let resumed = guard.wake(&self.metrics)?;
        let started = Instant::now();
        let suggestion = guard.live()?.suggest()?;
        let elapsed = started.elapsed();
        self.metrics.engine_suggest_seconds.observe(elapsed);
        if matches!(suggestion, Suggestion::Evaluate(_)) {
            self.served_suggests.fetch_add(1, Ordering::Relaxed);
            self.metrics.engine_suggests.inc();
        }
        drop(guard);
        self.log.debug("engine", Some(name), || {
            format!("suggest served in {elapsed:.1?}")
        });
        if resumed {
            self.log.debug("manager", Some(name), || {
                "resumed parked session".to_string()
            });
            self.enforce_residency();
        }
        Ok(suggestion)
    }

    /// Asks the named session for up to `n` suggestions at once (see
    /// [`AskTellSession::suggest_batch`]); resumes a parked session
    /// first.
    pub fn suggest_batch(&self, name: &str, n: usize) -> Result<BatchSuggestion, ServiceError> {
        let managed = self.lookup(name)?;
        let mut guard = managed.lock();
        let resumed = guard.wake(&self.metrics)?;
        let started = Instant::now();
        let suggestion = guard.live()?.suggest_batch(n)?;
        let elapsed = started.elapsed();
        self.metrics.engine_suggest_seconds.observe(elapsed);
        let served = match &suggestion {
            BatchSuggestion::Evaluate(cfgs) => {
                self.served_suggests
                    .fetch_add(cfgs.len() as u64, Ordering::Relaxed);
                self.metrics.engine_suggests.add(cfgs.len() as u64);
                self.metrics.engine_batch_suggests.inc();
                cfgs.len()
            }
            BatchSuggestion::Finished(_) => 0,
        };
        drop(guard);
        self.log.debug("engine", Some(name), || {
            format!("suggest_batch served {served} of {n} in {elapsed:.1?}")
        });
        if resumed {
            self.log.debug("manager", Some(name), || {
                "resumed parked session".to_string()
            });
            self.enforce_residency();
        }
        Ok(suggestion)
    }

    /// Shared body of [`report`](SessionManager::report) and
    /// [`report_batch`](SessionManager::report_batch): write-ahead
    /// journals and applies `values` in order against an already-woken
    /// session.
    fn report_locked(
        &self,
        name: &str,
        guard: &mut Managed,
        values: &[f64],
    ) -> Result<(), ServiceError> {
        let managed = &mut *guard;
        let session = match &mut managed.state {
            SessionState::Live(session) => session,
            _ => return Err(ServiceError::EngineStopped),
        };
        // All-or-nothing up front, so a too-long batch journals nothing.
        if values.len() > session.pending_len() {
            return Err(ServiceError::NoPendingSuggest);
        }
        for &value in values {
            let pending = session
                .pending()
                .cloned()
                .ok_or(ServiceError::NoPendingSuggest)?;
            if let Some(journal) = &mut managed.journal {
                let append_started = Instant::now();
                if let Err(e) = journal.append_eval(&pending, value) {
                    self.metrics.journal_append_failures.inc();
                    self.log
                        .error("journal", Some(name), || format!("eval append failed: {e}"));
                    return Err(e);
                }
                self.metrics
                    .journal_append_seconds
                    .observe(append_started.elapsed());
                self.metrics.journal_appends.inc();
                self.log
                    .debug("journal", Some(name), || "eval appended".to_string());
            }
            session.report(value)?;
        }
        // Persist the trace events that have accumulated since the last
        // batch. Informational records: replay regenerates them, so a
        // crash between report and trace append loses nothing.
        let batch = session.drain_trace();
        if !batch.is_empty() {
            if let Some(journal) = &mut managed.journal {
                journal.append_trace(batch)?;
                self.metrics.journal_trace_batches.inc();
            }
        }
        Ok(())
    }

    /// Reports the measured cost of the named session's oldest pending
    /// suggestion. The value hits the journal before the engine
    /// (write-ahead; under [`Durability::Sync`] it is synced to disk
    /// before the engine sees it), so a crash between the two replays
    /// cleanly. Non-finite costs are rejected with
    /// [`ServiceError::NonFiniteValue`] before touching journal or
    /// engine: NaN would poison surrogate fits and brick the stored
    /// study on reload.
    pub fn report(&self, name: &str, value: f64) -> Result<(), ServiceError> {
        self.report_batch(name, &[value]).map(|_| ())
    }

    /// Reports several measured costs at once, answering the named
    /// session's oldest pending suggestions in order. Each value is
    /// still write-ahead journaled individually. Returns how many
    /// values were accepted (all of them — the call is all-or-nothing).
    pub fn report_batch(&self, name: &str, values: &[f64]) -> Result<usize, ServiceError> {
        if values.iter().any(|v| !v.is_finite()) {
            self.metrics.reports_rejected_non_finite.inc();
            return Err(ServiceError::NonFiniteValue);
        }
        let managed = self.lookup(name)?;
        let mut guard = managed.lock();
        let resumed = guard.wake(&self.metrics)?;
        let started = Instant::now();
        self.report_locked(name, &mut guard, values)?;
        let elapsed = started.elapsed();
        self.metrics.engine_report_seconds.observe(elapsed);
        self.metrics.engine_reports.add(values.len() as u64);
        if values.len() > 1 {
            self.metrics.engine_batch_reports.inc();
        }
        self.served_reports
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        drop(guard);
        self.log.debug("engine", Some(name), || {
            format!("{} report(s) accepted in {elapsed:.1?}", values.len())
        });
        if resumed {
            self.log.debug("manager", Some(name), || {
                "resumed parked session".to_string()
            });
            self.enforce_residency();
        }
        Ok(values.len())
    }

    /// Every trace event the named session's tuner has emitted so far
    /// (regenerated from the start on a recovered session, because
    /// replay re-runs the algorithm deterministically). Resumes a
    /// parked session: traces live in the engine.
    pub fn trace(&self, name: &str) -> Result<Vec<autotune_core::TraceEvent>, ServiceError> {
        let managed = self.lookup(name)?;
        let mut guard = managed.lock();
        let resumed = guard.wake(&self.metrics)?;
        let events = guard.live()?.trace_events();
        drop(guard);
        if resumed {
            self.enforce_residency();
        }
        Ok(events)
    }

    /// Observability snapshot for one session. Parked sessions answer
    /// from counters frozen at park time — reading stats never wakes an
    /// engine.
    pub fn stats(&self, name: &str) -> Result<SessionStats, ServiceError> {
        let managed = self.lookup(name)?;
        let guard = managed.lock();
        match &guard.state {
            SessionState::Live(session) => Ok(session.stats()),
            SessionState::Parked(parked) => Ok(parked.stats.clone()),
            SessionState::Defunct => Err(ServiceError::EngineStopped),
        }
    }

    /// Closes and deregisters a session, finalizing its journal. Returns
    /// the tuning result when the session had finished its budget. A
    /// parked session closes without waking: it cannot have finished
    /// (the governor only parks unfinished sessions), so there is no
    /// result to fetch.
    pub fn close(&self, name: &str) -> Result<Option<TuneResult>, ServiceError> {
        let managed = self
            .shard(name)
            .lock()
            .remove(name)
            .ok_or_else(|| ServiceError::UnknownSession(name.to_string()))?;
        let mut guard = managed.lock();
        let managed = &mut *guard;
        let mut result = None;
        if let SessionState::Live(session) = &mut managed.state {
            result = session.shutdown();
            // The engine thread is joined now, so this final drain
            // captures every event; it must land before the close record
            // (nothing may follow a close in the journal).
            let batch = session.drain_trace();
            if !batch.is_empty() {
                if let Some(journal) = &mut managed.journal {
                    journal.append_trace(batch)?;
                    self.metrics.journal_trace_batches.inc();
                }
            }
        }
        if let Some(journal) = &mut managed.journal {
            if let Err(e) = journal.append_close(result.is_some()) {
                self.metrics.journal_append_failures.inc();
                self.log.error("journal", Some(name), || {
                    format!("close append failed: {e}")
                });
                return Err(e);
            }
            self.metrics.journal_appends.inc();
            self.log
                .debug("journal", Some(name), || "close appended".to_string());
        }
        // A session that spent its full budget is a converged study:
        // feed it back into the knowledge base.
        if let Some(result) = result.as_deref() {
            if let SessionState::Live(session) = &managed.state {
                self.record_study(name, session.spec(), result);
            }
        }
        self.metrics.sessions_closed.inc();
        self.log.info("manager", Some(name), || {
            format!("closed session (finished: {})", result.is_some())
        });
        Ok(result.map(|boxed| *boxed))
    }

    /// Evicts every session that has not been driven (`suggest` or
    /// `report`) for at least `ttl`, returning the evicted names
    /// (sorted). Journals get no `close` record, so an evicted session
    /// remains recoverable — eviction is the server saying "stop paying
    /// for this session", not "forget this run". Sessions whose mutex
    /// is currently held are in active use and skipped. Parked sessions
    /// count their time since parking as idle.
    pub fn evict_idle(&self, ttl: Duration) -> Vec<String> {
        let mut evicted = Vec::new();
        for (name, managed) in self.snapshot_sessions() {
            let Some(mut guard) = managed.try_lock() else {
                continue; // locked = mid-request = not idle
            };
            let idle = match &guard.state {
                SessionState::Live(session) => session.idle(),
                SessionState::Parked(parked) => parked.since.elapsed(),
                SessionState::Defunct => Duration::MAX,
            };
            if idle < ttl {
                continue;
            }
            // Deregister only if the registry still holds *this*
            // session — a concurrent close+reopen under the same name
            // must not lose the fresh one.
            {
                let mut shard = self.shard(&name).lock();
                match shard.get(&name) {
                    Some(current) if Arc::ptr_eq(current, &managed) => {
                        shard.remove(&name);
                    }
                    _ => continue,
                }
            }
            if let SessionState::Live(session) = &mut guard.state {
                session.shutdown();
            }
            self.metrics.sessions_evicted.inc();
            self.log.info("manager", Some(&name), || {
                "evicted idle session (journal left recoverable)".to_string()
            });
            evicted.push(name);
        }
        evicted.sort();
        evicted
    }

    /// Names of all registered sessions, sorted.
    pub fn session_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .snapshot_sessions()
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        names.sort();
        names
    }

    /// Shuts every session down without writing `close` records, leaving
    /// the journals recoverable — the graceful-restart path.
    pub fn shutdown_all(&self) {
        let mut drained = Vec::new();
        for shard in self.shards.iter() {
            drained.extend(shard.lock().drain());
        }
        for (_, managed) in drained {
            if let SessionState::Live(session) = &mut managed.lock().state {
                session.shutdown();
            }
        }
    }

    /// Aggregate counters.
    pub fn totals(&self) -> ManagerTotals {
        let mut open_sessions = 0usize;
        let mut parked_sessions = 0usize;
        let mut resident_engines = 0usize;
        for (_, managed) in self.snapshot_sessions() {
            open_sessions += 1;
            match managed.try_lock().map(|guard| match &guard.state {
                SessionState::Live(_) => (1usize, 0usize),
                SessionState::Parked(_) => (0, 1),
                SessionState::Defunct => (0, 0),
            }) {
                // Locked means a request is in flight: live by definition.
                None => resident_engines += 1,
                Some((live, parked)) => {
                    resident_engines += live;
                    parked_sessions += parked;
                }
            }
        }
        ManagerTotals {
            open_sessions,
            opened_total: self.opened_total.load(Ordering::Relaxed),
            suggests: self.served_suggests.load(Ordering::Relaxed),
            reports: self.served_reports.load(Ordering::Relaxed),
            parked_sessions,
            resident_engines,
        }
    }
}

/// Wall-clock milliseconds since the Unix epoch, for study provenance.
fn unix_now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let totals = self.totals();
        f.debug_struct("SessionManager")
            .field("open_sessions", &totals.open_sessions)
            .field("journal_dir", &self.journal_dir)
            .finish()
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpaceSpec;
    use autotune_core::Algorithm;
    use autotune_space::{Configuration, Param, ParamSpace};
    use std::sync::atomic::AtomicUsize;

    fn toy_spec(budget: usize, seed: u64) -> SessionSpec {
        SessionSpec {
            algorithm: Algorithm::RandomSearch,
            budget,
            seed,
            batch: 1,
            space: SpaceSpec::Custom {
                space: ParamSpace::new(vec![Param::new("a", 1, 9), Param::new("b", 1, 9)]),
            },
            warm_start: Default::default(),
            problem: None,
            prior: None,
        }
    }

    fn objective(cfg: &Configuration) -> f64 {
        cfg.values().iter().map(|&v| (v as f64 - 4.0).abs()).sum()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "autotune-manager-test-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn drive_rounds(mgr: &SessionManager, name: &str, rounds: usize) {
        for _ in 0..rounds {
            match mgr.suggest(name).unwrap() {
                Suggestion::Evaluate(cfg) => mgr.report(name, objective(&cfg)).unwrap(),
                Suggestion::Finished(_) => panic!("budget not spent yet"),
            }
        }
    }

    #[test]
    fn open_drive_close_in_memory() {
        let mgr = SessionManager::in_memory();
        mgr.open("run", toy_spec(4, 1)).unwrap();
        assert_eq!(mgr.session_names(), vec!["run".to_string()]);
        drive_rounds(&mgr, "run", 4);
        match mgr.suggest("run").unwrap() {
            Suggestion::Finished(result) => assert_eq!(result.history.len(), 4),
            Suggestion::Evaluate(_) => panic!("budget spent"),
        }
        let stats = mgr.stats("run").unwrap();
        assert!(stats.finished);
        let result = mgr.close("run").unwrap();
        assert!(result.is_some());
        assert!(matches!(
            mgr.stats("run"),
            Err(ServiceError::UnknownSession(_))
        ));
        let totals = mgr.totals();
        assert_eq!(totals.open_sessions, 0);
        assert_eq!(totals.opened_total, 1);
        assert_eq!(totals.suggests, 4);
        assert_eq!(totals.reports, 4);
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let mgr = SessionManager::in_memory();
        mgr.open("a-1", toy_spec(3, 1)).unwrap();
        assert!(matches!(
            mgr.open("a-1", toy_spec(3, 2)),
            Err(ServiceError::SessionExists(_))
        ));
        let too_long = "x".repeat(65);
        for bad in ["", ".hidden", "has space", "sl/ash", too_long.as_str()] {
            assert!(
                matches!(
                    mgr.open(bad, toy_spec(3, 1)),
                    Err(ServiceError::InvalidName(_))
                ),
                "name {bad:?} should be rejected"
            );
        }
        assert!(matches!(
            mgr.suggest("nope"),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    #[test]
    fn journaled_crash_recovery_resumes_identically() {
        let dir = temp_dir("recovery");

        // Reference: a full uninterrupted run with the same spec/seed.
        let reference = SessionManager::in_memory();
        reference.open("run", toy_spec(12, 7)).unwrap();
        let mut reference_evals = Vec::new();
        loop {
            match reference.suggest("run").unwrap() {
                Suggestion::Evaluate(cfg) => {
                    let v = objective(&cfg);
                    reference_evals.push((cfg, v));
                    reference.report("run", v).unwrap();
                }
                Suggestion::Finished(_) => break,
            }
        }

        // "Crash" after 5 rounds: drop the manager without closing.
        {
            let mgr = SessionManager::with_journal_dir(&dir).unwrap();
            mgr.open("run", toy_spec(12, 7)).unwrap();
            drive_rounds(&mgr, "run", 5);
        }

        // Recover and finish; the tail must match the reference exactly.
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        let (recovered, skipped) = mgr.recover_all().unwrap();
        assert_eq!(recovered, vec!["run".to_string()]);
        assert!(skipped.is_empty());
        assert_eq!(mgr.stats("run").unwrap().replayed, 5);
        let mut tail = Vec::new();
        loop {
            match mgr.suggest("run").unwrap() {
                Suggestion::Evaluate(cfg) => {
                    let v = objective(&cfg);
                    tail.push((cfg, v));
                    mgr.report("run", v).unwrap();
                }
                Suggestion::Finished(_) => break,
            }
        }
        assert_eq!(&reference_evals[5..], &tail[..]);
        mgr.close("run").unwrap();

        // A closed journal refuses recovery.
        let late = SessionManager::with_journal_dir(&dir).unwrap();
        assert!(matches!(late.recover("run"), Err(ServiceError::Journal(_))));
        let (recovered, skipped) = late.recover_all().unwrap();
        assert!(recovered.is_empty());
        assert_eq!(skipped.len(), 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_without_journal_dir_fails() {
        let mgr = SessionManager::in_memory();
        assert!(matches!(mgr.recover("x"), Err(ServiceError::Journal(_))));
        assert!(matches!(mgr.recover_all(), Err(ServiceError::Journal(_))));
    }

    /// The WAL engine honors the exact recovery contract the
    /// per-session journals froze: identical resumed tails, closed
    /// sessions refusing recovery.
    #[test]
    fn wal_crash_recovery_resumes_identically() {
        let dir = temp_dir("wal-recovery");
        let config = || {
            let mut c = WalConfig::new(&dir);
            c.flush_window = Duration::ZERO;
            c.checkpoint_interval = 3; // exercise checkpoints mid-run
            c
        };

        // Reference: a full uninterrupted run with the same spec/seed.
        let reference = SessionManager::in_memory();
        reference.open("run", toy_spec(12, 7)).unwrap();
        let mut reference_evals = Vec::new();
        loop {
            match reference.suggest("run").unwrap() {
                Suggestion::Evaluate(cfg) => {
                    let v = objective(&cfg);
                    reference_evals.push((cfg, v));
                    reference.report("run", v).unwrap();
                }
                Suggestion::Finished(_) => break,
            }
        }

        // "Crash" after 5 rounds: drop the manager without closing.
        {
            let mgr = SessionManager::with_wal(config()).unwrap();
            mgr.open("run", toy_spec(12, 7)).unwrap();
            drive_rounds(&mgr, "run", 5);
        }

        // Recover and finish; the tail must match the reference exactly.
        let mgr = SessionManager::with_wal(config()).unwrap();
        let (recovered, skipped) = mgr.recover_all().unwrap();
        assert_eq!(recovered, vec!["run".to_string()]);
        assert!(skipped.is_empty());
        assert_eq!(mgr.stats("run").unwrap().replayed, 5);
        let mut tail = Vec::new();
        loop {
            match mgr.suggest("run").unwrap() {
                Suggestion::Evaluate(cfg) => {
                    let v = objective(&cfg);
                    tail.push((cfg, v));
                    mgr.report("run", v).unwrap();
                }
                Suggestion::Finished(_) => break,
            }
        }
        assert_eq!(&reference_evals[5..], &tail[..]);
        assert!(mgr.close("run").unwrap().is_some());
        let appends = mgr.metrics().wal_appends.get();
        assert!(appends > 0, "appends must flow through the group committer");

        // A closed session refuses recovery, exactly like a closed
        // journal file.
        let late = SessionManager::with_wal(config()).unwrap();
        assert!(matches!(late.recover("run"), Err(ServiceError::Journal(_))));
        let (recovered, skipped) = late.recover_all().unwrap();
        assert!(recovered.is_empty());
        assert_eq!(skipped.len(), 1);
        drop(late);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_mode_flush_and_gauges() {
        let dir = temp_dir("wal-gauges");
        let mut config = WalConfig::new(&dir);
        config.flush_window = Duration::ZERO;
        config.durability = Durability::Buffered;
        let mgr = SessionManager::with_wal(config).unwrap();
        assert!(mgr.has_persistence());
        assert!(mgr.journal_dir().is_none());
        mgr.open("run", toy_spec(6, 3)).unwrap();
        drive_rounds(&mgr, "run", 6);
        mgr.flush_persistence().unwrap();
        mgr.refresh_wal_gauges();
        let snapshot = mgr.metrics().snapshot();
        assert!(snapshot.counters.contains_key("wal_segments_sealed"));
        assert!(snapshot.counters.contains_key("wal_active_segment_bytes"));
        assert!(snapshot.counters["wal_appends"] > 0);
        assert!(
            snapshot.counters["wal_fsyncs"] > 0,
            "flush_persistence syncs"
        );
        drop(mgr);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_sessions_do_not_interfere() {
        let mgr = Arc::new(SessionManager::in_memory());
        for i in 0..4 {
            mgr.open(&format!("s{i}"), toy_spec(20, i as u64)).unwrap();
        }
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    let name = format!("s{i}");
                    loop {
                        match mgr.suggest(&name).unwrap() {
                            Suggestion::Evaluate(cfg) => {
                                mgr.report(&name, objective(&cfg)).unwrap()
                            }
                            Suggestion::Finished(result) => return result.history.len(),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 20);
        }
        let totals = mgr.totals();
        assert_eq!(totals.suggests, 80);
        assert_eq!(totals.reports, 80);
    }

    #[test]
    fn idle_sessions_are_evicted_but_remain_recoverable() {
        let dir = temp_dir("evict");
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        mgr.open("stale", toy_spec(10, 1)).unwrap();
        drive_rounds(&mgr, "stale", 2);
        // Nothing is older than an hour: nothing goes.
        assert!(mgr.evict_idle(Duration::from_secs(3600)).is_empty());
        std::thread::sleep(Duration::from_millis(30));
        // Everything is older than 10ms: the stale session goes.
        assert_eq!(
            mgr.evict_idle(Duration::from_millis(10)),
            vec!["stale".to_string()]
        );
        assert!(matches!(
            mgr.stats("stale"),
            Err(ServiceError::UnknownSession(_))
        ));
        assert_eq!(mgr.metrics().sessions_evicted.get(), 1);
        // No close record was written: recovery still works.
        mgr.recover("stale").unwrap();
        assert_eq!(mgr.stats("stale").unwrap().replayed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buffered_durability_round_trips_through_recovery() {
        let dir = temp_dir("buffered");
        {
            let mgr = SessionManager::with_journal_dir_durability(
                &dir,
                crate::journal::Durability::Buffered,
            )
            .unwrap();
            assert_eq!(mgr.durability(), crate::journal::Durability::Buffered);
            mgr.open("run", toy_spec(8, 2)).unwrap();
            drive_rounds(&mgr, "run", 3);
        }
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        mgr.recover("run").unwrap();
        assert_eq!(mgr.stats("run").unwrap().replayed, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manager_metrics_track_session_traffic() {
        let dir = temp_dir("metrics");
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        mgr.open("m", toy_spec(4, 3)).unwrap();
        drive_rounds(&mgr, "m", 4);
        mgr.close("m").unwrap();
        let snap = mgr.metrics().snapshot();
        assert_eq!(snap.counter("sessions_opened"), Some(1));
        assert_eq!(snap.counter("sessions_closed"), Some(1));
        assert_eq!(snap.counter("engine_suggests"), Some(4));
        assert_eq!(snap.counter("engine_reports"), Some(4));
        // 4 evals + 1 close record.
        assert_eq!(snap.counter("journal_appends"), Some(5));
        assert_eq!(snap.histogram("engine_suggest_seconds").unwrap().count, 4);
        assert_eq!(snap.histogram("journal_append_seconds").unwrap().count, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_covers_the_whole_run_after_recovery() {
        let dir = temp_dir("trace");
        {
            let mgr = SessionManager::with_journal_dir(&dir).unwrap();
            mgr.open("run", toy_spec(10, 4)).unwrap();
            drive_rounds(&mgr, "run", 4);
        } // crash
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        mgr.recover("run").unwrap();
        // Replay regenerated the first 4 trials deterministically; the
        // next suggest synchronizes with the engine, so all 4 are in.
        let _ = mgr.suggest("run").unwrap();
        let events = mgr.trace("run").unwrap();
        let trials = events
            .iter()
            .filter(|e| matches!(e.record, autotune_core::TraceRecord::Trial { .. }))
            .count();
        assert_eq!(trials, 4);
        assert!(matches!(
            mgr.trace("missing"),
            Err(ServiceError::UnknownSession(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn kb_file(tag: &str) -> PathBuf {
        temp_dir(tag).join("store.kb.jsonl")
    }

    #[test]
    fn managers_without_a_kb_answer_with_defaults() {
        let mgr = SessionManager::in_memory();
        assert!(!mgr.kb_enabled());
        assert_eq!(mgr.kb_stats(), KbStats::default());
        assert!(mgr
            .kb_lookup(&toy_spec(3, 1).with_problem("toy-kernel", "sim-arch"))
            .is_none());
    }

    #[test]
    fn finished_studies_land_in_the_kb_and_seed_repeats() {
        let path = kb_file("kb-roundtrip");
        let mgr = SessionManager::in_memory().with_kb(KbStore::open(&path).unwrap());
        assert!(mgr.kb_enabled());
        let spec = toy_spec(4, 1).with_problem("toy-kernel", "sim-arch");

        // Cold first run: a miss at open, then the finished study is
        // recorded at close.
        mgr.open("donor", spec.clone()).unwrap();
        assert_eq!(mgr.metrics().snapshot().counter("kb_misses"), Some(1));
        drive_rounds(&mgr, "donor", 4);
        let result = mgr.close("donor").unwrap().unwrap();
        assert_eq!(mgr.kb_stats().studies, 1);
        assert_eq!(mgr.kb_stats().converged_studies, 1);

        // Instant answer: the stored incumbent, provenance included, no
        // engine thread spawned.
        let answer = mgr.kb_lookup(&spec).unwrap();
        assert_eq!(answer.best, result.best);
        assert_eq!(answer.session, "donor");
        assert_eq!(answer.algorithm, "RS");
        assert_eq!(mgr.totals().open_sessions, 0);

        // A repeat session is warm-started from the store.
        mgr.open("repeat", spec.clone()).unwrap();
        let snap = mgr.metrics().snapshot();
        assert_eq!(snap.counter("kb_seeded_sessions"), Some(1));
        assert!(snap.counter("kb_hits").unwrap() >= 2);
        // Closed unfinished: nothing new is recorded.
        assert!(mgr.close("repeat").unwrap().is_none());
        assert_eq!(mgr.kb_stats().studies, 1);

        // The explicit opt-out never touches the store.
        assert!(mgr.kb_lookup(&spec.clone().cold()).is_none());

        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn kb_survives_manager_restarts() {
        let path = kb_file("kb-restart");
        let spec = toy_spec(3, 9).with_problem("toy-kernel", "sim-arch");
        {
            let mgr = SessionManager::in_memory().with_kb(KbStore::open(&path).unwrap());
            mgr.open("run", spec.clone()).unwrap();
            drive_rounds(&mgr, "run", 3);
            mgr.close("run").unwrap();
        }
        let mgr = SessionManager::in_memory().with_kb(KbStore::open(&path).unwrap());
        assert_eq!(mgr.kb_stats().studies, 1);
        assert!(mgr.kb_lookup(&spec).is_some());
        // The answer must cover the requested budget: a bigger repeat
        // query is a miss.
        let mut bigger = spec.clone();
        bigger.budget = 10;
        assert!(mgr.kb_lookup(&bigger).is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn shutdown_all_leaves_journals_recoverable() {
        let dir = temp_dir("graceful");
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        mgr.open("run", toy_spec(10, 3)).unwrap();
        drive_rounds(&mgr, "run", 3);
        mgr.shutdown_all();
        assert_eq!(mgr.totals().open_sessions, 0);

        let next = SessionManager::with_journal_dir(&dir).unwrap();
        next.recover("run").unwrap();
        assert_eq!(next.stats("run").unwrap().replayed, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registry_shards_by_name_hash_and_tracks_depth_gauges() {
        let mgr = SessionManager::in_memory();
        let names: Vec<String> = (0..40).map(|i| format!("shard-test-{i}")).collect();
        for (i, name) in names.iter().enumerate() {
            mgr.open(name, toy_spec(5, i as u64)).unwrap();
        }
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(mgr.session_names(), sorted);
        // 40 names must not all hash to one shard; the depth gauges
        // published at open time must sum to the population.
        let snap = mgr.metrics().snapshot();
        let depths: Vec<u64> = (0..SHARD_COUNT)
            .map(|i| {
                snap.counter(&format!("scheduler_shard_depth_{i}"))
                    .unwrap_or(0)
            })
            .collect();
        assert_eq!(depths.iter().sum::<u64>(), 40);
        assert!(
            depths.iter().filter(|&&d| d > 0).count() > 1,
            "all 40 sessions landed in one shard: {depths:?}"
        );
        // Every session is individually reachable through its shard.
        for name in &names {
            assert!(!mgr.stats(name).unwrap().finished);
        }
    }

    #[test]
    fn residency_governor_parks_idle_sessions_and_resumes_transparently() {
        let mgr = SessionManager::in_memory().with_max_resident(2);
        for i in 0..5 {
            mgr.open(&format!("r{i}"), toy_spec(10, i as u64)).unwrap();
            drive_rounds(&mgr, &format!("r{i}"), 2);
        }
        let totals = mgr.totals();
        assert_eq!(totals.open_sessions, 5);
        assert!(
            totals.resident_engines <= 2,
            "governor left {} engines live",
            totals.resident_engines
        );
        assert!(totals.parked_sessions >= 3);
        let snap = mgr.metrics().snapshot();
        assert!(snap.counter("sessions_parked").unwrap() >= 3);
        assert_eq!(
            snap.counter("scheduler_resident_engines"),
            Some(totals.resident_engines as u64)
        );

        // Parked sessions still serve stats (frozen at park time)...
        for i in 0..5 {
            let stats = mgr.stats(&format!("r{i}")).unwrap();
            assert_eq!(stats.reports, 2);
        }
        // ...and resume transparently when driven, finishing with the
        // exact history an unparked run would produce.
        let reference = SessionManager::in_memory();
        reference.open("ref", toy_spec(10, 0)).unwrap();
        let mut expected = Vec::new();
        loop {
            match reference.suggest("ref").unwrap() {
                Suggestion::Evaluate(cfg) => {
                    let v = objective(&cfg);
                    expected.push((cfg, v));
                    reference.report("ref", v).unwrap();
                }
                Suggestion::Finished(_) => break,
            }
        }
        let mut seen = Vec::new();
        loop {
            match mgr.suggest("r0").unwrap() {
                Suggestion::Evaluate(cfg) => {
                    let v = objective(&cfg);
                    seen.push((cfg, v));
                    mgr.report("r0", v).unwrap();
                }
                Suggestion::Finished(result) => {
                    assert_eq!(result.history.len(), 10);
                    break;
                }
            }
        }
        assert_eq!(&expected[2..], &seen[..]);
        assert!(
            mgr.metrics()
                .snapshot()
                .counter("sessions_resumed")
                .unwrap()
                >= 1
        );
        let stats = mgr.stats("r0").unwrap();
        assert_eq!(stats.reports, 10);
        // Parking is invisible: nothing shows up as replayed.
        assert_eq!(stats.replayed, 0);
    }

    #[test]
    fn batched_ops_journal_per_value_and_recover() {
        let dir = temp_dir("batch");
        let mut spec = toy_spec(12, 7);
        spec.batch = 4;

        // Reference: same batched spec driven to completion in memory.
        let reference = SessionManager::in_memory();
        reference.open("run", spec.clone()).unwrap();
        let mut reference_evals = Vec::new();
        loop {
            match reference.suggest_batch("run", 4).unwrap() {
                BatchSuggestion::Evaluate(cfgs) => {
                    let values: Vec<f64> = cfgs.iter().map(objective).collect();
                    reference_evals.extend(cfgs.into_iter().zip(values.iter().copied()));
                    reference.report_batch("run", &values).unwrap();
                }
                BatchSuggestion::Finished(_) => break,
            }
        }
        assert_eq!(reference_evals.len(), 12);

        // Crash after two batch rounds (8 evals), then recover.
        {
            let mgr = SessionManager::with_journal_dir(&dir).unwrap();
            mgr.open("run", spec.clone()).unwrap();
            for _ in 0..2 {
                match mgr.suggest_batch("run", 4).unwrap() {
                    BatchSuggestion::Evaluate(cfgs) => {
                        assert_eq!(cfgs.len(), 4);
                        let values: Vec<f64> = cfgs.iter().map(objective).collect();
                        assert_eq!(mgr.report_batch("run", &values).unwrap(), 4);
                    }
                    BatchSuggestion::Finished(_) => panic!("budget not spent"),
                }
            }
            let snap = mgr.metrics().snapshot();
            assert_eq!(snap.counter("engine_batch_suggests"), Some(2));
            assert_eq!(snap.counter("engine_batch_reports"), Some(2));
            // Write-ahead is per value, not per batch.
            assert_eq!(snap.counter("journal_appends"), Some(8));
        }
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        mgr.recover("run").unwrap();
        assert_eq!(mgr.stats("run").unwrap().replayed, 8);
        let mut tail = Vec::new();
        loop {
            match mgr.suggest_batch("run", 4).unwrap() {
                BatchSuggestion::Evaluate(cfgs) => {
                    let values: Vec<f64> = cfgs.iter().map(objective).collect();
                    tail.extend(cfgs.into_iter().zip(values.iter().copied()));
                    mgr.report_batch("run", &values).unwrap();
                }
                BatchSuggestion::Finished(result) => {
                    assert_eq!(result.history.len(), 12);
                    break;
                }
            }
        }
        assert_eq!(&reference_evals[8..], &tail[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_finite_reports_are_rejected_before_the_journal() {
        let dir = temp_dir("nonfinite");
        let mgr = SessionManager::with_journal_dir(&dir).unwrap();
        mgr.open("run", toy_spec(5, 1)).unwrap();
        let cfg = match mgr.suggest("run").unwrap() {
            Suggestion::Evaluate(cfg) => cfg,
            Suggestion::Finished(_) => panic!("budget not spent"),
        };
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                mgr.report("run", bad),
                Err(ServiceError::NonFiniteValue)
            ));
        }
        assert!(matches!(
            mgr.report_batch("run", &[1.0, f64::NAN]),
            Err(ServiceError::NonFiniteValue)
        ));
        let snap = mgr.metrics().snapshot();
        assert_eq!(snap.counter("reports_rejected_non_finite"), Some(4));
        // Nothing reached the journal or the engine; the session is
        // still waiting on the same suggestion and accepts a sane value.
        assert_eq!(snap.counter("journal_appends"), Some(0));
        assert_eq!(mgr.stats("run").unwrap().reports, 0);
        mgr.report("run", objective(&cfg)).unwrap();
        assert_eq!(mgr.stats("run").unwrap().reports, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn event_log_captures_component_activity_and_scoped_rids() {
        use crate::log::{rid_scope, EventLog, LogLevel};
        let dir = temp_dir("eventlog");
        let log = Arc::new(EventLog::enabled(LogLevel::Debug));
        let mgr = SessionManager::with_journal_dir(&dir)
            .unwrap()
            .with_event_log(Arc::clone(&log));
        assert!(Arc::ptr_eq(mgr.event_log(), &log));
        mgr.open("run", toy_spec(4, 1)).unwrap();
        {
            let _scope = rid_scope("req-1", true);
            match mgr.suggest("run").unwrap() {
                Suggestion::Evaluate(cfg) => mgr.report("run", objective(&cfg)).unwrap(),
                Suggestion::Finished(_) => panic!("budget not spent"),
            }
        }
        mgr.close("run").unwrap();

        let records = log.tail(100);
        let by = |component: &str| -> Vec<_> {
            records
                .iter()
                .filter(|r| r.component == component)
                .collect()
        };
        // The open ran outside the rid scope; the drive ran inside it.
        assert!(by("manager")
            .iter()
            .any(|r| r.message.contains("opened session") && r.rid.is_none()));
        assert!(by("engine")
            .iter()
            .any(|r| r.message.contains("suggest") && r.rid.as_deref() == Some("req-1")));
        assert!(by("engine")
            .iter()
            .any(|r| r.message.contains("accepted") && r.rid.as_deref() == Some("req-1")));
        assert!(by("journal")
            .iter()
            .any(|r| r.message.contains("eval appended") && r.rid.as_deref() == Some("req-1")));
        assert!(by("journal")
            .iter()
            .any(|r| r.message.contains("close appended") && r.rid.is_none()));
        // Every record carries the session name.
        assert!(records.iter().all(|r| r.session.as_deref() == Some("run")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evictor_racing_close_and_reopen_never_loses_the_fresh_session() {
        // Regression stress for the Arc::ptr_eq guard in evict_idle: an
        // evictor sweeping with ttl=0 races a loop that closes and
        // immediately reopens the same name. The evictor must never
        // deregister a session it did not inspect.
        let mgr = Arc::new(SessionManager::in_memory());
        mgr.open("contested", toy_spec(1000, 1)).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let evictor = {
            let mgr = Arc::clone(&mgr);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut evictions = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    evictions += mgr.evict_idle(Duration::ZERO).len();
                }
                evictions
            })
        };

        let mut reopens = 0usize;
        for seed in 0..50u64 {
            // Drive if present; eviction mid-loop surfaces as
            // UnknownSession, which the driver tolerates by reopening.
            match mgr.suggest("contested") {
                Ok(Suggestion::Evaluate(cfg)) => {
                    let _ = mgr.report("contested", objective(&cfg));
                }
                Ok(Suggestion::Finished(_)) | Err(_) => {}
            }
            let _ = mgr.close("contested");
            // The reopen must always win over a stale evictor guard.
            if mgr.open("contested", toy_spec(1000, seed)).is_ok() {
                reopens += 1;
            }
            assert!(
                mgr.session_names().len() <= 1,
                "duplicate sessions under one name"
            );
        }
        stop.store(true, Ordering::Relaxed);
        let _ = evictor.join().unwrap();
        assert!(reopens > 0, "reopen never succeeded");
    }
}
